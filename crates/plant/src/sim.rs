//! The Euler-integrated tank simulation with fault injection.

use serde::{Deserialize, Serialize};

use crate::fault::{Fault, FaultSet};

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Integration step (seconds).
    pub dt: f64,
    /// Simulated duration (seconds).
    pub duration: f64,
    /// Tank capacity; level ≥ capacity is an overflow.
    pub capacity: f64,
    /// Initial level.
    pub initial_level: f64,
    /// Inflow rate with the input valve open (volume/second).
    pub inflow_rate: f64,
    /// Outflow rate with the output valve open (must exceed `inflow_rate`
    /// for the drain to compensate the feed).
    pub outflow_rate: f64,
    /// Controller opens the output valve above this level.
    pub high_setpoint: f64,
    /// Controller closes the output valve below this level.
    pub low_setpoint: f64,
    /// Controller raises the overflow alert at/above this level.
    pub alert_level: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dt: 0.5,
            duration: 600.0,
            capacity: 10.0,
            initial_level: 5.0,
            inflow_rate: 0.05,
            outflow_rate: 0.08,
            high_setpoint: 6.0,
            low_setpoint: 4.0,
            alert_level: 9.5,
        }
    }
}

/// Valve position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Valve {
    /// Passing flow.
    Open,
    /// Blocking flow.
    Closed,
}

/// One recorded simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Simulation time.
    pub time: f64,
    /// Water level.
    pub level: f64,
    /// Input valve position.
    pub input_valve: Valve,
    /// Output valve position.
    pub output_valve: Valve,
    /// Did the controller emit an alert this step?
    pub alert_sent: bool,
    /// Did the HMI deliver the alert to the operator this step?
    pub alert_delivered: bool,
}

/// A completed simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Configuration used.
    pub config: SimConfig,
    /// The injected fault scenario.
    pub faults: FaultSet,
    /// Recorded steps (one per `dt`).
    pub steps: Vec<Step>,
}

impl SimResult {
    /// Did the tank ever overflow (level ≥ capacity)?
    #[must_use]
    pub fn overflowed(&self) -> bool {
        self.steps.iter().any(|s| s.level >= self.config.capacity)
    }

    /// First overflow time, if any.
    #[must_use]
    pub fn overflow_time(&self) -> Option<f64> {
        self.steps
            .iter()
            .find(|s| s.level >= self.config.capacity)
            .map(|s| s.time)
    }

    /// Was an alert delivered to the operator at any point?
    #[must_use]
    pub fn alert_delivered(&self) -> bool {
        self.steps.iter().any(|s| s.alert_delivered)
    }

    /// R1: the water tank must not overflow.
    #[must_use]
    pub fn violates_r1(&self) -> bool {
        self.overflowed()
    }

    /// R2: an alert must reach the operator in case of overflow.
    /// Vacuously satisfied if no overflow occurs.
    #[must_use]
    pub fn violates_r2(&self) -> bool {
        self.overflowed() && !self.alert_delivered()
    }

    /// The level signal as a sample vector.
    #[must_use]
    pub fn levels(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.level).collect()
    }
}

/// The water-tank system simulator.
#[derive(Debug, Clone)]
pub struct WaterTank {
    config: SimConfig,
}

impl WaterTank {
    /// Create a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is non-physical (non-positive `dt`,
    /// rates, or capacity, or setpoints outside the tank).
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        assert!(config.dt > 0.0, "dt must be positive");
        assert!(config.duration > 0.0, "duration must be positive");
        assert!(config.capacity > 0.0, "capacity must be positive");
        assert!(
            config.inflow_rate > 0.0 && config.outflow_rate > 0.0,
            "rates must be positive"
        );
        assert!(
            config.low_setpoint < config.high_setpoint
                && config.high_setpoint < config.alert_level
                && config.alert_level <= config.capacity,
            "setpoints must satisfy low < high < alert <= capacity"
        );
        WaterTank { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run the simulation under a fault scenario.
    #[must_use]
    pub fn run(&self, faults: &FaultSet) -> SimResult {
        let c = &self.config;
        let n = (c.duration / c.dt).ceil() as usize;
        let mut steps = Vec::with_capacity(n + 1);
        let mut level = c.initial_level;
        let mut output_cmd = Valve::Closed;

        for k in 0..=n {
            let time = k as f64 * c.dt;

            // Sensor: the paper's F1–F4 set keeps the sensor healthy.
            let measured = level;

            // Controller: regulate via the output valve (hysteresis band).
            if measured >= c.high_setpoint {
                output_cmd = Valve::Open;
            } else if measured <= c.low_setpoint {
                output_cmd = Valve::Closed;
            }
            let alert_sent = measured >= c.alert_level;

            // Actuators, with stuck-at faults overriding commands.
            // The production feed is nominally open; F1 (stuck-at-open)
            // pins it to the same position — which is exactly why F1 alone
            // is harmless. The binding keeps the fault's effect explicit.
            let _ = faults.effective(Fault::F1);
            let input_valve = Valve::Open;
            let output_valve = if faults.effective(Fault::F2) {
                Valve::Closed // stuck closed
            } else {
                output_cmd
            };

            // HMI: delivers the alert unless silenced.
            let alert_delivered = alert_sent && !faults.effective(Fault::F3);

            steps.push(Step {
                time,
                level,
                input_valve,
                output_valve,
                alert_sent,
                alert_delivered,
            });

            // Euler step; the level saturates at the physical bounds
            // ([0, capacity] — overflow spills over the rim).
            let inflow = match input_valve {
                Valve::Open => c.inflow_rate,
                Valve::Closed => 0.0,
            };
            let outflow = match output_valve {
                Valve::Open => c.outflow_rate,
                Valve::Closed => 0.0,
            };
            level = (level + (inflow - outflow) * c.dt).clamp(0.0, c.capacity);
        }
        SimResult {
            config: c.clone(),
            faults: *faults,
            steps,
        }
    }

    /// Table-II ground truth for a scenario: `(violates_r1, violates_r2)`.
    #[must_use]
    pub fn ground_truth(&self, faults: &FaultSet) -> (bool, bool) {
        let r = self.run(faults);
        (r.violates_r1(), r.violates_r2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tank() -> WaterTank {
        WaterTank::new(SimConfig::default())
    }

    #[test]
    fn nominal_run_stays_in_band() {
        let r = tank().run(&FaultSet::empty());
        assert!(!r.violates_r1());
        assert!(!r.violates_r2());
        // The controller keeps the level inside [low - slack, high + slack].
        let c = r.config.clone();
        for s in &r.steps[10..] {
            assert!(
                s.level < c.alert_level,
                "level {} escaped the control band at t={}",
                s.level,
                s.time
            );
        }
    }

    #[test]
    fn table_ii_ground_truth() {
        let t = tank();
        // S1: nominal.
        assert_eq!(t.ground_truth(&FaultSet::empty()), (false, false));
        // S2: compromised workstation — both requirements violated.
        assert_eq!(t.ground_truth(&FaultSet::from(Fault::F4)), (true, true));
        // S3: F1 alone is harmless.
        assert_eq!(t.ground_truth(&FaultSet::from(Fault::F1)), (false, false));
        // S4: F2 alone overflows but the alert gets through.
        assert_eq!(t.ground_truth(&FaultSet::from(Fault::F2)), (true, false));
        // S5: F2+F3 — overflow and lost alert.
        assert_eq!(
            t.ground_truth(&FaultSet::of(&[Fault::F2, Fault::F3])),
            (true, true)
        );
        // S6: F1+F3 — no overflow, R2 vacuous.
        assert_eq!(
            t.ground_truth(&FaultSet::of(&[Fault::F1, Fault::F3])),
            (false, false)
        );
        // S7: F1+F2+F3 — both violated.
        assert_eq!(
            t.ground_truth(&FaultSet::of(&[Fault::F1, Fault::F2, Fault::F3])),
            (true, true)
        );
    }

    #[test]
    fn overflow_time_is_reported() {
        let r = tank().run(&FaultSet::from(Fault::F2));
        let t = r.overflow_time().expect("F2 overflows");
        assert!(t > 0.0 && t < r.config.duration);
    }

    #[test]
    fn alert_precedes_overflow_when_hmi_works() {
        let r = tank().run(&FaultSet::from(Fault::F2));
        let first_alert = r.steps.iter().find(|s| s.alert_delivered).map(|s| s.time);
        let overflow = r.overflow_time();
        assert!(first_alert.is_some());
        assert!(first_alert.unwrap() <= overflow.unwrap());
    }

    #[test]
    fn f3_alone_is_silent_but_safe() {
        let r = tank().run(&FaultSet::from(Fault::F3));
        assert!(!r.violates_r1());
        assert!(!r.violates_r2(), "no overflow, nothing to alert");
        assert!(!r.alert_delivered());
    }

    #[test]
    fn level_is_clamped_to_physical_bounds() {
        let r = tank().run(&FaultSet::from(Fault::F4));
        for s in &r.steps {
            assert!((0.0..=r.config.capacity).contains(&s.level));
        }
    }

    #[test]
    #[should_panic(expected = "setpoints")]
    fn bad_setpoints_panic() {
        let cfg = SimConfig {
            low_setpoint: 8.0,
            high_setpoint: 6.0,
            ..SimConfig::default()
        };
        let _ = WaterTank::new(cfg);
    }

    #[test]
    fn step_count_matches_duration() {
        let cfg = SimConfig {
            dt: 1.0,
            duration: 10.0,
            ..SimConfig::default()
        };
        let r = WaterTank::new(cfg).run(&FaultSet::empty());
        assert_eq!(r.steps.len(), 11);
        assert!((r.steps.last().unwrap().time - 10.0).abs() < 1e-9);
    }
}
