//! Qualitative abstraction of simulation runs.
//!
//! Bridges the continuous plant to the discrete reasoning layers: the level
//! signal becomes a [`QualTrace`] over the standard level domain, and a full
//! run becomes a [`Trace`] of time-stamped atoms suitable for LTLf
//! requirement checking (`level(tank, <lvl>)`, `alert(hmi)`, …).

use cpsrisk_asp::{Atom, Term};
use cpsrisk_qr::{QualDomain, QualTrace};
use cpsrisk_temporal::Trace;

use crate::sim::{SimResult, Valve};

/// The standard qualitative level domain of the case study:
/// `empty | low | normal | high | overflow`, landmarked at the controller
/// setpoints and the alert level.
///
/// # Panics
///
/// Never panics for a configuration accepted by
/// [`WaterTank::new`](crate::WaterTank::new) (setpoints are ordered).
#[must_use]
pub fn level_domain(result: &SimResult) -> QualDomain {
    let c = &result.config;
    QualDomain::from_landmarks(
        "level",
        &["empty", "low", "normal", "high", "overflow"],
        &[
            c.low_setpoint / 2.0,
            c.low_setpoint,
            c.high_setpoint,
            c.alert_level,
        ],
    )
    .expect("setpoints are strictly ordered")
}

/// Abstract the level signal of a run into a qualitative trace.
///
/// # Errors
///
/// Propagates abstraction errors (non-finite samples cannot occur in
/// simulator output, but the signature is honest).
pub fn abstract_levels(result: &SimResult) -> Result<QualTrace, cpsrisk_qr::QrError> {
    QualTrace::abstract_signal(&level_domain(result), &result.levels())
}

/// How many raw simulation steps to fold into one qualitative time step.
/// Keeps unrolled horizons small while preserving ordering of events.
#[must_use]
pub fn default_stride(result: &SimResult) -> usize {
    (result.steps.len() / 16).max(1)
}

/// Convert a run into a finite trace of ground atoms (down-sampled by
/// `stride`): per step `level(tank, <level>)`, `alert_sent`,
/// `alert(hmi)` when delivered, and valve state atoms.
#[must_use]
pub fn to_temporal_trace(result: &SimResult, stride: usize) -> Trace {
    let stride = stride.max(1);
    let dom = level_domain(result);
    let mut trace = Trace::new();
    for chunk in result.steps.chunks(stride) {
        let mut atoms: Vec<Atom> = Vec::new();
        // Use the worst (highest) level in the chunk so overflow episodes
        // shorter than the stride are never lost (over-approximation).
        let level = chunk
            .iter()
            .map(|s| s.level)
            .fold(f64::NEG_INFINITY, f64::max);
        let q = dom.abstract_value(level).expect("sim levels are finite");
        atoms.push(Atom::new(
            "level",
            vec![Term::sym("tank"), Term::sym(q.level_name())],
        ));
        if chunk.iter().any(|s| s.alert_sent) {
            atoms.push(Atom::prop("alert_sent"));
        }
        if chunk.iter().any(|s| s.alert_delivered) {
            atoms.push(Atom::new("alert", vec![Term::sym("hmi")]));
        }
        if chunk.iter().any(|s| s.output_valve == Valve::Open) {
            atoms.push(Atom::new("valve_open", vec![Term::sym("output_valve")]));
        }
        if chunk.iter().any(|s| s.input_valve == Valve::Open) {
            atoms.push(Atom::new("valve_open", vec![Term::sym("input_valve")]));
        }
        trace.push_step(atoms);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultSet};
    use crate::sim::{SimConfig, WaterTank};
    use cpsrisk_temporal::parse_ltl;

    fn run(faults: &FaultSet) -> SimResult {
        WaterTank::new(SimConfig::default()).run(faults)
    }

    #[test]
    fn nominal_trace_never_reaches_overflow() {
        let r = run(&FaultSet::empty());
        let q = abstract_levels(&r).unwrap();
        assert!(!q.ever_reaches("overflow"));
        assert!(q.ever_reaches("normal"));
    }

    #[test]
    fn f2_trace_reaches_overflow_in_order() {
        let r = run(&FaultSet::from(Fault::F2));
        let q = abstract_levels(&r).unwrap();
        let path = q.level_path();
        assert_eq!(path.last(), Some(&"overflow"));
        // Monotone rise: no level repeats after leaving it.
        let mut seen = std::collections::HashSet::new();
        for l in &path {
            assert!(
                seen.insert(*l),
                "level {l} revisited in a monotone scenario"
            );
        }
    }

    #[test]
    fn temporal_trace_supports_requirement_checking() {
        // R1 as LTLf over the abstracted trace.
        let r1 = parse_ltl("G !level(tank, overflow)").unwrap();
        let r2 = parse_ltl("G( level(tank, overflow) -> F alert(hmi) )").unwrap();

        let nominal = to_temporal_trace(&run(&FaultSet::empty()), 8);
        assert!(r1.eval(&nominal, 0));
        assert!(r2.eval(&nominal, 0));

        let f2 = to_temporal_trace(&run(&FaultSet::from(Fault::F2)), 8);
        assert!(!r1.eval(&f2, 0));
        assert!(r2.eval(&f2, 0), "alert delivered before/at overflow");

        let f2f3 = to_temporal_trace(&run(&FaultSet::of(&[Fault::F2, Fault::F3])), 8);
        assert!(!r1.eval(&f2f3, 0));
        assert!(!r2.eval(&f2f3, 0), "HMI silenced: alert never delivered");
    }

    #[test]
    fn stride_downsamples_without_losing_overflow() {
        let r = run(&FaultSet::from(Fault::F4));
        let fine = to_temporal_trace(&r, 1);
        let coarse = to_temporal_trace(&r, default_stride(&r));
        assert!(coarse.len() < fine.len());
        let has_overflow =
            |t: &Trace| (0..t.len()).any(|i| t.holds_str(i, "level(tank, overflow)"));
        assert!(has_overflow(&fine));
        assert!(
            has_overflow(&coarse),
            "worst-level folding preserves overflow"
        );
    }

    #[test]
    fn domain_landmarks_track_config() {
        let r = run(&FaultSet::empty());
        let d = level_domain(&r);
        assert_eq!(d.levels().len(), 5);
        assert_eq!(d.landmarks().len(), 4);
        assert_eq!(d.abstract_value(9.6).unwrap().level_name(), "overflow");
        assert_eq!(d.abstract_value(5.0).unwrap().level_name(), "normal");
    }
}
