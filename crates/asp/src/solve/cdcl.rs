//! The CDCL engine: two-watched-literal propagation over completion
//! nogoods, 1UIP conflict analysis with computed backjump levels, EVSIDS
//! activity branching with phase saving, Luby restarts, and LBD-based
//! learned-database reduction.
//!
//! # Encoding
//!
//! Variables are the ground atoms (`0..n_atoms`) plus one *body variable*
//! per distinct rule body (`n_atoms..n_vars`), clasp-style. A **nogood** is
//! a set of `(var, value)` literals that no solution may satisfy
//! simultaneously; a literal is *satisfied* when the variable holds its
//! value and *falsified* when it holds the complement. Unit propagation is
//! therefore the dual of SAT clauses: a watch fires when its literal
//! becomes **satisfied**, and a nogood with every literal satisfied except
//! one unassigned forces that literal's complement.
//!
//! Literals are packed into a `u32` code `var << 1 | (value == False)`, so
//! `watches[code]` indexes the nogoods watching exactly that (var, value)
//! pair.
//!
//! The completion nogoods emitted by [`Cdcl::build`] are:
//! - per body β with literals `B`: `{(β,F)} ∪ B` (body true when all
//!   literals hold) and binaries `{(β,T),(l̄)}` per literal (body false
//!   when any literal fails),
//! - per normal rule `h :- β`: `{(h,F),(β,T)}` (forward inference),
//! - per defined non-choice atom `a` with bodies `β₁..βₖ`:
//!   `{(a,T),(β₁,F),..,(βₖ,F)}` (support: `a` needs a true body),
//! - integrity constraints become body nogoods with no head.
//!
//! Cardinality bounds and (for non-tight programs) the unfounded-set
//! backstop run as dedicated propagators at each watch fixpoint, producing
//! materialized *antecedent* nogoods so conflict analysis can resolve
//! through their inferences like any other reason.

use std::collections::{HashMap, HashSet};

use super::{fingerprint, Lit, Model, SolveOptions, Solver, Val};
use crate::error::AspError;
use crate::program::{AtomId, GroundHead, GroundProgram};
use crate::proof::{ProofLog, ProofStep};

/// Complement of a truth value (`Unknown` is not a valid input).
fn negate(v: Val) -> Val {
    match v {
        Val::True => Val::False,
        Val::False => Val::True,
        Val::Unknown => unreachable!("negating Unknown"),
    }
}

/// Pack a (variable, value) literal into its code.
fn code(var: u32, q: Val) -> u32 {
    (var << 1) | u32::from(q == Val::False)
}

/// The variable of a packed literal code.
fn code_var(c: u32) -> u32 {
    c >> 1
}

/// The value of a packed literal code.
fn code_val(c: u32) -> Val {
    if c & 1 == 0 {
        Val::True
    } else {
        Val::False
    }
}

/// Why a variable holds its current value (meaningless while unassigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Reason {
    /// A branching decision (also the reset default for unassigned vars).
    Decision,
    /// Static fact: program unit, WFM seed, or retained learned unit —
    /// holds under the bare assumptions, so 1UIP analysis drops it.
    Static,
    /// Pinned by a caller assumption (level 0, assumption-dependent).
    Assumption,
    /// Forced by the indexed nogood — resolution uses its literals.
    Nogood(u32),
    /// Forced by a materialized antecedent in the per-call arena
    /// (cardinality and unfounded-set inferences).
    Ante(u32),
}

/// One literal of an exported learned nogood. The `bool` is the stored
/// truth value (`true` = `Val::True`).
#[derive(Debug, Clone, Copy)]
enum LearnedLit {
    /// An atom variable, by (stable) atom id.
    Atom(u32, bool),
    /// A body variable, by index into [`LearnedState::bodies`].
    Body(u32, bool),
}

/// A portable snapshot of a solver's learned-nogood database, produced by
/// [`Solver::export_learned`] and replayed into a solver over an extended
/// ground program by [`Solver::import_learned`] — the mechanism that lets
/// search effort carry across incremental horizon extensions.
#[derive(Debug, Clone, Default)]
pub struct LearnedState {
    /// Deduplicated body keys referenced by `Body` literals.
    bodies: Vec<(Vec<u32>, Vec<u32>)>,
    /// Watched nogoods with their learn-time LBD.
    nogoods: Vec<(Vec<LearnedLit>, u32)>,
    /// Unit nogoods (replayed as level-0 forcings).
    units: Vec<LearnedLit>,
}

impl LearnedState {
    /// Number of nogoods in the snapshot (watched plus units).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nogoods.len() + self.units.len()
    }

    /// True when the snapshot holds no nogoods.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nogoods.is_empty() && self.units.is_empty()
    }
}

/// One stored nogood. `lits[0]` and `lits[1]` are the watched positions.
#[derive(Debug)]
pub(super) struct Nogood {
    lits: Vec<u32>,
    /// Literal-block distance at learn time (static nogoods: 0).
    lbd: u32,
    /// Bumped when the nogood participates in conflict analysis.
    activity: f64,
}

/// The CDCL engine state. An empty shell on the reference engine.
#[derive(Debug)]
pub(super) struct Cdcl {
    /// Number of atom variables (`val[..n_atoms]` is the atom assignment).
    pub(super) n_atoms: usize,
    /// Atoms plus body variables.
    n_vars: usize,
    /// Current assignment, indexed by variable.
    pub(super) val: Vec<Val>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Reason of each assigned variable.
    reason: Vec<Reason>,
    /// Whether the variable's (level-0) assignment depends on the current
    /// call's assumptions. Only meaningful at level 0: 1UIP analysis keeps
    /// dependent level-0 literals in learned nogoods and drops the rest.
    dep: Vec<bool>,
    /// Assignment order.
    trail: Vec<u32>,
    /// Next trail position to propagate watches from.
    qhead: usize,
    /// Trail length at each decision level.
    lim: Vec<usize>,
    /// Per decision level: this level re-branches a flipped decision
    /// (model-enumeration mode — restarts are disabled once any flip
    /// exists, exhaustiveness relies on the flip trail).
    flipped: Vec<bool>,
    /// All watched nogoods: statics first, learned from `first_learned`.
    ngs: Vec<Nogood>,
    /// Index of the first learned nogood in `ngs`.
    first_learned: usize,
    /// Learned unit nogoods (single literal codes) — too short to watch,
    /// replayed as level-0 forcings at each `prepare`.
    learned_units: Vec<u32>,
    /// Fingerprint dedup over learned nogoods and units.
    learned_fps: HashSet<u64>,
    /// Static unit assignments `(var, value)` from the translation.
    units: Vec<(u32, Val)>,
    /// The translation derived an empty nogood: no model, ever.
    root_unsat: bool,
    /// `watches[code]`: nogood indices watching that literal.
    watches: Vec<Vec<u32>>,
    /// Per atom: cardinality constraints mentioning it.
    card_occ: Vec<Vec<u32>>,
    /// Per card: queued for rescan.
    card_dirty: Vec<bool>,
    /// Queue of dirty cards.
    card_queue: Vec<u32>,
    /// Per-call arena of materialized antecedent nogoods (codes).
    antes: Vec<Vec<u32>>,
    /// EVSIDS activity per variable.
    activity: Vec<f64>,
    /// Current activity increment (grows by 1/0.95 per conflict).
    var_inc: f64,
    /// Per atom: appears as a choice head (preferred branching tie-break).
    is_choice: Vec<bool>,
    /// Saved phase per variable (initially `True`, matching the engine's
    /// try-true-first enumeration order).
    pub(super) saved: Vec<Val>,
    /// Scratch marks for conflict analysis.
    seen: Vec<bool>,
    /// Conflicts since the last restart.
    conflicts_since_restart: u64,
    /// Index into the Luby sequence for the next restart.
    restart_seq: u64,
    /// Completed learned-DB reductions (raises the next threshold).
    reduce_count: u64,
    /// Body variable keys, by body index (`var = n_atoms + index`): the
    /// sorted deduplicated `(pos, neg)` atom-id lists. Retained so learned
    /// nogoods can be exported/imported across program extensions — body
    /// *indices* are build-order dependent, body *keys* are the stable
    /// identity.
    bodies: Vec<(Vec<u32>, Vec<u32>)>,
}

impl Cdcl {
    /// The empty shell used by reference solvers.
    pub(super) fn empty() -> Self {
        Cdcl {
            n_atoms: 0,
            n_vars: 0,
            val: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            dep: Vec::new(),
            trail: Vec::new(),
            qhead: 0,
            lim: Vec::new(),
            flipped: Vec::new(),
            ngs: Vec::new(),
            first_learned: 0,
            learned_units: Vec::new(),
            learned_fps: HashSet::new(),
            units: Vec::new(),
            root_unsat: false,
            watches: Vec::new(),
            card_occ: Vec::new(),
            card_dirty: Vec::new(),
            card_queue: Vec::new(),
            antes: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            is_choice: Vec::new(),
            saved: Vec::new(),
            seen: Vec::new(),
            conflicts_since_restart: 0,
            restart_seq: 1,
            reduce_count: 0,
            bodies: Vec::new(),
        }
    }

    /// Translate the ground program into completion nogoods.
    pub(super) fn build(g: &GroundProgram) -> Self {
        let n_atoms = g.atom_count();
        let mut cd = Cdcl::empty();
        cd.n_atoms = n_atoms;
        cd.root_unsat = false;

        // Distinct bodies get one body variable each, keyed by the sorted
        // deduplicated literal sets.
        let mut body_ids: HashMap<(Vec<u32>, Vec<u32>), u32> = HashMap::new();
        let mut bodies: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
        let mut defined = vec![false; n_atoms];
        let mut unconditional = vec![false; n_atoms];
        let mut supports: Vec<Vec<u32>> = vec![Vec::new(); n_atoms];
        let mut head_forward: HashSet<(u32, u32)> = HashSet::new();
        let mut statics: Vec<Vec<u32>> = Vec::new();

        for r in &g.rules {
            let mut pos: Vec<u32> = r.pos.iter().map(|a| a.0).collect();
            let mut neg: Vec<u32> = r.neg.iter().map(|a| a.0).collect();
            pos.sort_unstable();
            pos.dedup();
            neg.sort_unstable();
            neg.dedup();
            match r.head {
                GroundHead::None => {
                    // Integrity constraint: the body literals form a nogood
                    // directly; no body variable needed.
                    let lits: Vec<u32> = pos
                        .iter()
                        .map(|&p| code(p, Val::True))
                        .chain(neg.iter().map(|&n| code(n, Val::False)))
                        .collect();
                    match lits.len() {
                        0 => cd.root_unsat = true,
                        1 => {
                            let c = lits[0];
                            cd.units.push((code_var(c), negate(code_val(c))));
                        }
                        _ => statics.push(lits),
                    }
                }
                GroundHead::Atom(h) | GroundHead::Choice(h) => {
                    let normal = matches!(r.head, GroundHead::Atom(_));
                    defined[h.index()] = true;
                    if pos.is_empty() && neg.is_empty() {
                        unconditional[h.index()] = true;
                        if normal {
                            cd.units.push((h.0, Val::True));
                        }
                        continue;
                    }
                    let key = (pos.clone(), neg.clone());
                    let beta = *body_ids.entry(key).or_insert_with(|| {
                        bodies.push((pos.clone(), neg.clone()));
                        (n_atoms + bodies.len() - 1) as u32
                    });
                    if !supports[h.index()].contains(&beta) {
                        supports[h.index()].push(beta);
                    }
                    if normal {
                        head_forward.insert((h.0, beta));
                    }
                }
            }
        }

        let n_vars = n_atoms + bodies.len();
        cd.n_vars = n_vars;

        // Body equivalence nogoods.
        for (bi, (pos, neg)) in bodies.iter().enumerate() {
            let beta = (n_atoms + bi) as u32;
            // Body true when every literal holds: {(β,F)} ∪ B.
            let mut omega: Vec<u32> = Vec::with_capacity(1 + pos.len() + neg.len());
            omega.push(code(beta, Val::False));
            omega.extend(pos.iter().map(|&p| code(p, Val::True)));
            omega.extend(neg.iter().map(|&n| code(n, Val::False)));
            statics.push(omega);
            // Body false when any literal fails: {(β,T), l̄} per literal.
            for &p in pos {
                statics.push(vec![code(beta, Val::True), code(p, Val::False)]);
            }
            for &n in neg {
                statics.push(vec![code(beta, Val::True), code(n, Val::True)]);
            }
        }
        // Forward inference for normal heads: {(h,F),(β,T)}.
        for &(h, beta) in &head_forward {
            statics.push(vec![code(h, Val::False), code(beta, Val::True)]);
        }
        // Support nogoods: a defined non-unconditional atom needs a body.
        for a in 0..n_atoms as u32 {
            if !defined[a as usize] {
                cd.units.push((a, Val::False));
            } else if !unconditional[a as usize] && !supports[a as usize].is_empty() {
                let mut lits = vec![code(a, Val::True)];
                lits.extend(
                    supports[a as usize]
                        .iter()
                        .map(|&beta| code(beta, Val::False)),
                );
                statics.push(lits);
            }
        }

        cd.val = vec![Val::Unknown; n_vars];
        cd.level = vec![0; n_vars];
        cd.reason = vec![Reason::Decision; n_vars];
        cd.dep = vec![false; n_vars];
        cd.activity = vec![0.0; n_vars];
        cd.saved = vec![Val::True; n_vars];
        cd.seen = vec![false; n_vars];
        cd.watches = vec![Vec::new(); n_vars * 2];
        cd.is_choice = vec![false; n_atoms];
        for r in &g.rules {
            if let GroundHead::Choice(h) = r.head {
                cd.is_choice[h.index()] = true;
            }
        }

        for lits in statics {
            debug_assert!(lits.len() >= 2);
            let ni = cd.ngs.len() as u32;
            cd.watches[lits[0] as usize].push(ni);
            cd.watches[lits[1] as usize].push(ni);
            cd.ngs.push(Nogood {
                lits,
                lbd: 0,
                activity: 0.0,
            });
        }
        cd.first_learned = cd.ngs.len();

        // Cardinality occurrence lists over every atom a card can react to.
        cd.card_occ = vec![Vec::new(); n_atoms];
        cd.card_dirty = vec![false; g.cards.len()];
        for (ci, c) in g.cards.iter().enumerate() {
            let mut mentioned: HashSet<u32> = HashSet::new();
            for &p in c.pos.iter().chain(c.neg.iter()) {
                mentioned.insert(p.0);
            }
            for e in &c.elements {
                mentioned.insert(e.atom.0);
                for &gp in e.guard_pos.iter().chain(e.guard_neg.iter()) {
                    mentioned.insert(gp.0);
                }
            }
            for a in mentioned {
                cd.card_occ[a as usize].push(ci as u32);
            }
        }

        cd.bodies = bodies;
        cd
    }

    /// Learned nogoods currently retained (watched plus units).
    pub(super) fn learned_count(&self) -> usize {
        (self.ngs.len() - self.first_learned) + self.learned_units.len()
    }

    /// Drop every learned nogood and rebuild the static watch lists.
    pub(super) fn clear_learned(&mut self) {
        self.ngs.truncate(self.first_learned);
        self.learned_units.clear();
        self.learned_fps.clear();
        for w in &mut self.watches {
            w.clear();
        }
        for (ni, ng) in self.ngs.iter().enumerate() {
            self.watches[ng.lits[0] as usize].push(ni as u32);
            self.watches[ng.lits[1] as usize].push(ni as u32);
        }
    }

    /// Per-call reset: clear the assignment and the propagation state;
    /// learned nogoods, activities and saved phases persist.
    fn reset(&mut self, n_cards: usize) {
        self.val.fill(Val::Unknown);
        self.level.fill(0);
        self.reason.fill(Reason::Decision);
        self.dep.fill(false);
        self.trail.clear();
        self.qhead = 0;
        self.lim.clear();
        self.flipped.clear();
        self.antes.clear();
        self.card_dirty.clear();
        self.card_dirty.resize(n_cards, true);
        self.card_queue.clear();
        self.card_queue.extend(0..n_cards as u32);
        self.conflicts_since_restart = 0;
        self.restart_seq = 1;
    }
}

/// The `i`-th element of the Luby restart sequence (1-indexed):
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
pub(super) fn luby(mut i: u64) -> u64 {
    loop {
        // Largest k with 2^k - 1 <= i.
        let mut k = 1u32;
        while (1u64 << (k + 1)) - 1 <= i {
            k += 1;
        }
        if i == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        // Strip the completed prefix of length 2^k - 1 and recurse.
        i -= (1u64 << k) - 1;
    }
}

/// Action decided for one watched nogood during propagation.
enum WatchAction {
    /// Some literal is falsified: the nogood can never fire here.
    Inert,
    /// The watch moved to a new literal code.
    Moved(u32),
    /// Every other literal satisfied, this one unassigned: force its
    /// complement.
    Force(u32),
    /// Every literal satisfied.
    Conflict,
}

impl Solver<'_> {
    /// CDCL per-call setup: reset, pin assumptions at level 0, replay WFM
    /// seeds, static units and learned units. False means the search space
    /// is empty before the first decision.
    pub(super) fn prepare_cdcl(&mut self, assumptions: &[Lit]) -> bool {
        if self.cdcl.root_unsat {
            // Still record the assumptions for bookkeeping symmetry.
            for l in assumptions {
                let v = if l.positive { Val::True } else { Val::False };
                self.assumptions.push((l.atom.0, v));
            }
            return false;
        }
        self.cdcl.reset(self.g.cards.len());
        for l in assumptions {
            let v = if l.positive { Val::True } else { Val::False };
            self.assumptions.push((l.atom.0, v));
            match self.cdcl.val[l.atom.index()] {
                Val::Unknown => self.cd_assign(l.atom.0, v, Reason::Assumption),
                cur if cur == v => {}
                _ => return false, // self-contradictory assumptions
            }
        }
        // WFM backbone, program units, retained learned units — all sound
        // level-0 consequences; a clash with an assumption is a genuine
        // root conflict worth learning.
        let seeds: Vec<(u32, Val)> = self
            .wfm_seeds
            .iter()
            .copied()
            .chain(self.cdcl.units.iter().copied())
            .collect();
        for (a, v) in seeds {
            if !self.seed0(a, v) {
                return self.root_conflict();
            }
        }
        let units: Vec<u32> = self.cdcl.learned_units.clone();
        for c in units {
            if !self.seed0(code_var(c), negate(code_val(c))) {
                return self.root_conflict();
            }
        }
        true
    }

    /// Assign a sound level-0 consequence, detecting clashes.
    fn seed0(&mut self, var: u32, v: Val) -> bool {
        match self.cdcl.val[var as usize] {
            Val::Unknown => {
                self.cd_assign(var, v, Reason::Static);
                true
            }
            cur => cur == v,
        }
    }

    /// A conflict at decision level 0 during `prepare`: the assumptions are
    /// jointly refuted. Learn the assumption-set nogood so later calls
    /// refute the combination by propagation.
    fn root_conflict(&mut self) -> bool {
        self.conflict_count += 1;
        self.lifetime_conflicts += 1;
        if !self.assumptions.is_empty() {
            let lits: Vec<u32> = self.assumptions.iter().map(|&(a, v)| code(a, v)).collect();
            self.learn_stored(lits, 1);
        }
        false
    }

    /// Store a learned nogood (deduplicated): units go to the replay list,
    /// longer nogoods into the watched database.
    fn learn_stored(&mut self, lits: Vec<u32>, lbd: u32) {
        let pairs: Vec<(u32, Val)> = lits.iter().map(|&c| (code_var(c), code_val(c))).collect();
        if !self.cdcl.learned_fps.insert(fingerprint(&pairs)) {
            return;
        }
        if lits.len() == 1 {
            if self.proof.is_some() {
                self.plog(ProofStep::Learned(lits.clone()));
            }
            self.cdcl.learned_units.push(lits[0]);
            return;
        }
        self.add_learned_watched(lits, lbd, true);
    }

    /// Append a learned nogood to the watched store. When `choose` is set
    /// the watches are selected by quality (unassigned > falsified >
    /// satisfied); otherwise positions 0 and 1 are watched as given (the
    /// asserting-nogood path sets them up itself).
    fn add_learned_watched(&mut self, mut lits: Vec<u32>, lbd: u32, choose: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        if choose {
            self.choose_watches(&mut lits);
        }
        if self.proof.is_some() {
            self.plog(ProofStep::Learned(lits.clone()));
        }
        let ni = self.cdcl.ngs.len() as u32;
        self.cdcl.watches[lits[0] as usize].push(ni);
        self.cdcl.watches[lits[1] as usize].push(ni);
        self.cdcl.ngs.push(Nogood {
            lits,
            lbd,
            activity: 0.0,
        });
        ni
    }

    /// Export the learned-nogood database in a program-independent form,
    /// for transfer onto a solver over an *extension* of this ground
    /// program (same atom ids, a superset of the rules).
    ///
    /// Returns an empty state unless the program is tight: on non-tight
    /// programs the learned database may contain prefix nogoods from
    /// stability failures and unfounded-set antecedent resolvents, which
    /// are not consequences of the completion alone and do not survive a
    /// program change.
    ///
    /// Body variables are translated to their stable identity — the sorted
    /// deduplicated `(pos, neg)` atom-id key — since body *indices* depend
    /// on build order.
    #[must_use]
    pub fn export_learned(&self) -> LearnedState {
        let mut state = LearnedState::default();
        if !self.tight() {
            return state;
        }
        let n_atoms = self.cdcl.n_atoms as u32;
        let mut body_idx: HashMap<u32, u32> = HashMap::new();
        let mut convert = |state: &mut LearnedState, c: u32| -> LearnedLit {
            let var = code_var(c);
            let positive = code_val(c) == Val::True;
            if var < n_atoms {
                LearnedLit::Atom(var, positive)
            } else {
                let idx = *body_idx.entry(var).or_insert_with(|| {
                    state
                        .bodies
                        .push(self.cdcl.bodies[(var - n_atoms) as usize].clone());
                    (state.bodies.len() - 1) as u32
                });
                LearnedLit::Body(idx, positive)
            }
        };
        for ng in &self.cdcl.ngs[self.cdcl.first_learned..] {
            let lits: Vec<LearnedLit> = ng.lits.iter().map(|&c| convert(&mut state, c)).collect();
            state.nogoods.push((lits, ng.lbd));
        }
        for &c in &self.cdcl.learned_units {
            let l = convert(&mut state, c);
            state.units.push(l);
        }
        state
    }

    /// Import a learned-nogood database exported from a solver over an
    /// earlier version of this program. Nogoods survive when every literal
    /// still refers to live structure: atom literals must be in range and
    /// not mention a `revoked` atom, body literals must resolve (by key)
    /// to a body of the current program whose atoms are likewise live.
    /// Everything else is dropped; duplicates are absorbed by the learned
    /// fingerprint set. Returns the number of nogoods retained.
    ///
    /// Refuses (returns 0) unless the current program is tight — the
    /// soundness argument for transfer rests on learned nogoods being
    /// resolvents of completion nogoods, which only holds there. Also
    /// refuses while a proof log is active: imported nogoods come from a
    /// *different* solver's derivation and are not RUP-justifiable here.
    pub fn import_learned(&mut self, state: &LearnedState, revoked: &[AtomId]) -> usize {
        if !self.tight() || state.is_empty() || self.proof.is_some() {
            return 0;
        }
        let n_atoms = self.cdcl.n_atoms as u32;
        let revoked: HashSet<u32> = revoked.iter().map(|a| a.0).collect();
        let key_to_var: HashMap<&(Vec<u32>, Vec<u32>), u32> = self
            .cdcl
            .bodies
            .iter()
            .enumerate()
            .map(|(i, key)| (key, n_atoms + i as u32))
            .collect();
        let resolved: Vec<Option<u32>> = state
            .bodies
            .iter()
            .map(|key| {
                if key
                    .0
                    .iter()
                    .chain(key.1.iter())
                    .any(|a| revoked.contains(a))
                {
                    return None;
                }
                key_to_var.get(key).copied()
            })
            .collect();
        let live_code = |l: &LearnedLit| -> Option<u32> {
            match *l {
                LearnedLit::Atom(a, positive) => {
                    if a >= n_atoms || revoked.contains(&a) {
                        return None;
                    }
                    Some(code(a, if positive { Val::True } else { Val::False }))
                }
                LearnedLit::Body(i, positive) => {
                    let var = resolved.get(i as usize).copied().flatten()?;
                    Some(code(var, if positive { Val::True } else { Val::False }))
                }
            }
        };
        // Debug-mode validity screen: the filtering above must already
        // guarantee these invariants for every translated candidate, so a
        // violation here is a translation bug, not bad input.
        #[cfg(debug_assertions)]
        let screen = |codes: &[u32], n_vars: usize| {
            for &c in codes {
                let var = code_var(c);
                assert!(
                    (var as usize) < n_vars,
                    "imported literal outside the session's variable range"
                );
                assert!(
                    var >= n_atoms || !revoked.contains(&var),
                    "imported literal mentions a revoked atom"
                );
            }
        };
        #[cfg(debug_assertions)]
        let fp_of = |codes: &[u32]| {
            let pairs: Vec<(u32, Val)> =
                codes.iter().map(|&c| (code_var(c), code_val(c))).collect();
            fingerprint(&pairs)
        };
        let mut kept = 0usize;
        for (lits, lbd) in &state.nogoods {
            let Some(codes) = lits.iter().map(&live_code).collect::<Option<Vec<u32>>>() else {
                continue;
            };
            if codes.len() < 2 {
                continue;
            }
            #[cfg(debug_assertions)]
            screen(&codes, self.cdcl.n_vars);
            #[cfg(debug_assertions)]
            let dup = self.cdcl.learned_fps.contains(&fp_of(&codes));
            let before = self.cdcl.learned_count();
            self.learn_stored(codes, *lbd);
            let grown = self.cdcl.learned_count() > before;
            #[cfg(debug_assertions)]
            assert!(!(dup && grown), "duplicate fingerprint re-imported");
            kept += usize::from(grown);
        }
        for l in &state.units {
            let Some(c) = live_code(l) else { continue };
            #[cfg(debug_assertions)]
            screen(&[c], self.cdcl.n_vars);
            #[cfg(debug_assertions)]
            let dup = self.cdcl.learned_fps.contains(&fp_of(&[c]));
            let before = self.cdcl.learned_count();
            self.learn_stored(vec![c], 1);
            let grown = self.cdcl.learned_count() > before;
            #[cfg(debug_assertions)]
            assert!(!(dup && grown), "duplicate fingerprint re-imported");
            kept += usize::from(grown);
        }
        kept
    }

    /// Move the two best watch candidates into positions 0 and 1:
    /// unassigned literals first, then falsified, then satisfied — watching
    /// satisfied literals would fire immediately and could miss later
    /// state changes after backjumping.
    fn choose_watches(&mut self, lits: &mut [u32]) {
        let rank = |solver: &Self, c: u32| -> u8 {
            let v = solver.cdcl.val[code_var(c) as usize];
            if v == Val::Unknown {
                0
            } else if v == negate(code_val(c)) {
                1
            } else {
                2
            }
        };
        for slot in 0..2usize.min(lits.len()) {
            let mut best = slot;
            for i in slot + 1..lits.len() {
                if rank(self, lits[i]) < rank(self, lits[best]) {
                    best = i;
                }
            }
            lits.swap(slot, best);
        }
    }

    /// Assign a variable, recording level, reason and assumption
    /// dependency, and mark affected cardinality constraints dirty.
    fn cd_assign(&mut self, var: u32, v: Val, reason: Reason) {
        debug_assert_eq!(self.cdcl.val[var as usize], Val::Unknown);
        let dep = if self.cdcl.lim.is_empty() {
            match reason {
                Reason::Assumption => true,
                Reason::Nogood(ni) => {
                    let cd = &self.cdcl;
                    cd.ngs[ni as usize]
                        .lits
                        .iter()
                        .any(|&c| code_var(c) != var && cd.dep[code_var(c) as usize])
                }
                Reason::Ante(ai) => {
                    let cd = &self.cdcl;
                    cd.antes[ai as usize]
                        .iter()
                        .any(|&c| code_var(c) != var && cd.dep[code_var(c) as usize])
                }
                Reason::Decision | Reason::Static => false,
            }
        } else {
            false
        };
        let cd = &mut self.cdcl;
        cd.val[var as usize] = v;
        cd.level[var as usize] = cd.lim.len() as u32;
        cd.reason[var as usize] = reason;
        cd.dep[var as usize] = dep;
        cd.trail.push(var);
        self.propagation_count += 1;
        if let Reason::Nogood(ni) = reason {
            if ni as usize >= self.cdcl.first_learned {
                self.nogood_force_count += 1;
            }
        }
        if (var as usize) < self.cdcl.n_atoms {
            let cards: Vec<u32> = self.cdcl.card_occ[var as usize].clone();
            for ci in cards {
                if !self.cdcl.card_dirty[ci as usize] {
                    self.cdcl.card_dirty[ci as usize] = true;
                    self.cdcl.card_queue.push(ci);
                }
            }
        }
    }

    /// Propagate to fixpoint: watched nogoods, then dirty cardinality
    /// constraints, then (non-tight only) the unfounded backstop. Returns
    /// the conflicting nogood's literal codes, or `None` at fixpoint.
    fn cdcl_propagate(&mut self) -> Option<Vec<u32>> {
        loop {
            while self.cdcl.qhead < self.cdcl.trail.len() {
                let var = self.cdcl.trail[self.cdcl.qhead];
                self.cdcl.qhead += 1;
                let c = code(var, self.cdcl.val[var as usize]);
                if let Some(confl) = self.propagate_watches(c) {
                    return Some(confl);
                }
            }
            if let Some(ci) = self.cdcl.card_queue.pop() {
                self.cdcl.card_dirty[ci as usize] = false;
                if let Some(confl) = self.propagate_card(ci as usize) {
                    return Some(confl);
                }
                continue;
            }
            if self.use_tight() {
                return None;
            }
            let before = self.cdcl.trail.len();
            if let Some(confl) = self.unfounded_backstop() {
                return Some(confl);
            }
            if self.cdcl.trail.len() == before {
                return None;
            }
        }
    }

    /// Visit every nogood watching the just-satisfied literal `c`.
    fn propagate_watches(&mut self, c: u32) -> Option<Vec<u32>> {
        let mut ws = std::mem::take(&mut self.cdcl.watches[c as usize]);
        let mut i = 0usize;
        while i < ws.len() {
            let ni = ws[i];
            let action = {
                let cd = &mut self.cdcl;
                let ng = &mut cd.ngs[ni as usize];
                if ng.lits[0] == c {
                    ng.lits.swap(0, 1);
                }
                debug_assert_eq!(ng.lits[1], c);
                let w0 = ng.lits[0];
                let w0v = cd.val[code_var(w0) as usize];
                if w0v == negate(code_val(w0)) {
                    WatchAction::Inert
                } else {
                    // Look for a non-satisfied replacement watch.
                    let mut moved = None;
                    for k in 2..ng.lits.len() {
                        let lk = ng.lits[k];
                        if cd.val[code_var(lk) as usize] != code_val(lk) {
                            moved = Some(k);
                            break;
                        }
                    }
                    match moved {
                        Some(k) => {
                            ng.lits.swap(1, k);
                            WatchAction::Moved(ng.lits[1])
                        }
                        None if w0v == Val::Unknown => WatchAction::Force(w0),
                        None => WatchAction::Conflict,
                    }
                }
            };
            match action {
                WatchAction::Inert => i += 1,
                WatchAction::Moved(newc) => {
                    ws.swap_remove(i);
                    self.cdcl.watches[newc as usize].push(ni);
                }
                WatchAction::Force(w0) => {
                    self.cd_assign(code_var(w0), negate(code_val(w0)), Reason::Nogood(ni));
                    i += 1;
                }
                WatchAction::Conflict => {
                    let confl = self.cdcl.ngs[ni as usize].lits.clone();
                    self.cdcl.watches[c as usize] = ws;
                    return Some(confl);
                }
            }
        }
        self.cdcl.watches[c as usize] = ws;
        None
    }

    /// Rescan one cardinality constraint, forcing or failing with
    /// materialized antecedent nogoods so 1UIP can resolve through them.
    #[allow(clippy::too_many_lines)]
    fn propagate_card(&mut self, ci: usize) -> Option<Vec<u32>> {
        let c = self.g.cards[ci].clone();
        let v = |s: &Self, a: AtomId| s.cdcl.val[a.index()];
        let mut body_false = false;
        let mut body_unknowns = 0usize;
        let mut body_unknown: Option<u32> = None; // satisfied-form code
        let mut body_sat_lits: Vec<u32> = Vec::new();
        for &p in &c.pos {
            match v(self, p) {
                Val::False => body_false = true,
                Val::Unknown => {
                    body_unknowns += 1;
                    body_unknown = Some(code(p.0, Val::True));
                }
                Val::True => body_sat_lits.push(code(p.0, Val::True)),
            }
        }
        for &n in &c.neg {
            match v(self, n) {
                Val::True => body_false = true,
                Val::Unknown => {
                    body_unknowns += 1;
                    body_unknown = Some(code(n.0, Val::False));
                }
                Val::False => body_sat_lits.push(code(n.0, Val::False)),
            }
        }
        if body_false {
            return None;
        }
        let mut held = 0u32;
        let mut held_witness: Vec<u32> = Vec::new();
        let mut out_witness: Vec<u32> = Vec::new();
        let mut open: Vec<&crate::program::CardElement> = Vec::new();
        for e in &c.elements {
            let guard_false_lit = e
                .guard_pos
                .iter()
                .find(|&&p| v(self, p) == Val::False)
                .map(|&p| code(p.0, Val::False))
                .or_else(|| {
                    e.guard_neg
                        .iter()
                        .find(|&&n| v(self, n) == Val::True)
                        .map(|&n| code(n.0, Val::True))
                });
            let guard_true = e.guard_pos.iter().all(|&p| v(self, p) == Val::True)
                && e.guard_neg.iter().all(|&n| v(self, n) == Val::False);
            match v(self, e.atom) {
                Val::True if guard_true => {
                    held += 1;
                    held_witness.push(code(e.atom.0, Val::True));
                    held_witness.extend(e.guard_pos.iter().map(|&p| code(p.0, Val::True)));
                    held_witness.extend(e.guard_neg.iter().map(|&n| code(n.0, Val::False)));
                }
                Val::False => out_witness.push(code(e.atom.0, Val::False)),
                _ => {
                    if let Some(l) = guard_false_lit {
                        out_witness.push(l);
                    } else {
                        open.push(e);
                    }
                }
            }
        }
        let max_possible = held + open.len() as u32;
        let violated_surely = held > c.upper || max_possible < c.lower;
        if body_unknowns == 0 {
            if violated_surely {
                // Conflict: body satisfied and the bound provably violated.
                let mut ng = body_sat_lits;
                if held > c.upper {
                    ng.extend(held_witness);
                } else {
                    ng.extend(out_witness);
                    // For a lower-bound violation every open element stayed
                    // open; no extra literals needed — the out-witness lits
                    // plus the body justify max_possible < lower.
                }
                ng.sort_unstable();
                ng.dedup();
                if self.proof.is_some() {
                    self.plog(ProofStep::Card {
                        card: ci as u32,
                        lits: ng.clone(),
                    });
                }
                return Some(ng);
            }
            if held == c.upper {
                // No further element may become held: falsify guard-true
                // open atoms. The forced element's guard literals join the
                // antecedent — "atom true" alone does not make the element
                // held, and without them the nogood would overreach.
                let forced: Vec<(AtomId, Vec<u32>)> = open
                    .iter()
                    .filter(|e| {
                        e.guard_pos.iter().all(|&p| v(self, p) == Val::True)
                            && e.guard_neg.iter().all(|&n| v(self, n) == Val::False)
                    })
                    .map(|e| {
                        let mut guard: Vec<u32> =
                            e.guard_pos.iter().map(|&p| code(p.0, Val::True)).collect();
                        guard.extend(e.guard_neg.iter().map(|&n| code(n.0, Val::False)));
                        (e.atom, guard)
                    })
                    .collect();
                for (a, guard) in forced {
                    if self.cdcl.val[a.index()] == Val::Unknown {
                        let mut ante = body_sat_lits.clone();
                        ante.extend(held_witness.iter().copied());
                        ante.extend(guard);
                        ante.push(code(a.0, Val::True));
                        ante.sort_unstable();
                        ante.dedup();
                        if self.proof.is_some() {
                            self.plog(ProofStep::Card {
                                card: ci as u32,
                                lits: ante.clone(),
                            });
                        }
                        let ai = self.cdcl.antes.len() as u32;
                        self.cdcl.antes.push(ante);
                        self.cd_assign(a.0, Val::False, Reason::Ante(ai));
                    }
                }
            } else if max_possible == c.lower {
                // Every open element must be held.
                let forced: Vec<AtomId> = open
                    .iter()
                    .filter(|e| {
                        e.guard_pos.iter().all(|&p| v(self, p) == Val::True)
                            && e.guard_neg.iter().all(|&n| v(self, n) == Val::False)
                    })
                    .map(|e| e.atom)
                    .collect();
                for a in forced {
                    if self.cdcl.val[a.index()] == Val::Unknown {
                        let mut ante = body_sat_lits.clone();
                        ante.extend(out_witness.iter().copied());
                        ante.push(code(a.0, Val::False));
                        ante.sort_unstable();
                        ante.dedup();
                        if self.proof.is_some() {
                            self.plog(ProofStep::Card {
                                card: ci as u32,
                                lits: ante.clone(),
                            });
                        }
                        let ai = self.cdcl.antes.len() as u32;
                        self.cdcl.antes.push(ante);
                        self.cd_assign(a.0, Val::True, Reason::Ante(ai));
                    }
                }
            }
        } else if body_unknowns == 1 && violated_surely {
            // Bound already violated: the body must be falsified.
            let unk = body_unknown.expect("one unknown");
            let uv = self.cdcl.val[code_var(unk) as usize];
            if uv == Val::Unknown {
                let mut ante = body_sat_lits;
                if held > c.upper {
                    ante.extend(held_witness);
                } else {
                    ante.extend(out_witness);
                }
                ante.push(unk);
                ante.sort_unstable();
                ante.dedup();
                if self.proof.is_some() {
                    self.plog(ProofStep::Card {
                        card: ci as u32,
                        lits: ante.clone(),
                    });
                }
                let ai = self.cdcl.antes.len() as u32;
                self.cdcl.antes.push(ante);
                self.cd_assign(code_var(unk), negate(code_val(unk)), Reason::Ante(ai));
            }
        }
        None
    }

    /// The assumption and decision literals of the current state as codes —
    /// the sound (if coarse) antecedent for unfounded-set inferences.
    fn prefix_codes(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.assumptions.iter().map(|&(a, v)| code(a, v)).collect();
        for l in 0..self.cdcl.lim.len() {
            let dvar = self.cdcl.trail[self.cdcl.lim[l]];
            out.push(code(dvar, self.cdcl.val[dvar as usize]));
        }
        out
    }

    /// Unfounded-set backstop for non-tight programs: falsify every atom
    /// outside the can-be-true closure, with the current prefix as the
    /// antecedent (every closure verdict is a sound consequence of it).
    fn unfounded_backstop(&mut self) -> Option<Vec<u32>> {
        let n = self.cdcl.n_atoms;
        let mut in_closure = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for r in &self.g.rules {
                let h = match r.head {
                    GroundHead::Atom(h) | GroundHead::Choice(h) => h,
                    GroundHead::None => continue,
                };
                if in_closure[h.index()] || self.cdcl.val[h.index()] == Val::False {
                    continue;
                }
                let body_possible = r
                    .pos
                    .iter()
                    .all(|&p| self.cdcl.val[p.index()] != Val::False && in_closure[p.index()])
                    && r.neg.iter().all(|&q| self.cdcl.val[q.index()] != Val::True);
                if body_possible {
                    in_closure[h.index()] = true;
                    changed = true;
                }
            }
        }
        let mut prefix: Option<Vec<u32>> = None;
        for i in (0..n).filter(|&i| !in_closure[i]) {
            match self.cdcl.val[i] {
                Val::True => {
                    let mut ng = prefix.unwrap_or_else(|| self.prefix_codes());
                    ng.push(code(i as u32, Val::True));
                    if self.proof.is_some() {
                        self.plog(ProofStep::Unfounded(ng.clone()));
                    }
                    return Some(ng);
                }
                Val::Unknown => {
                    let p = prefix.get_or_insert_with(|| self.prefix_codes()).clone();
                    let mut ante = p;
                    // As a nogood the antecedent carries the *satisfied*
                    // form of the inference target — `(i, True)` is what no
                    // stable model under this prefix can hold (conflict
                    // analysis only filters by variable, so the polarity
                    // must be the semantically sound one).
                    ante.push(code(i as u32, Val::True));
                    if self.proof.is_some() {
                        self.plog(ProofStep::Unfounded(ante.clone()));
                    }
                    let ai = self.cdcl.antes.len() as u32;
                    self.cdcl.antes.push(ante);
                    self.cd_assign(i as u32, Val::False, Reason::Ante(ai));
                }
                Val::False => {}
            }
        }
        None
    }

    /// Open a new decision level.
    fn new_level(&mut self, flip: bool) {
        self.cdcl.lim.push(self.cdcl.trail.len());
        self.cdcl.flipped.push(flip);
    }

    /// Undo every assignment above decision level `to`, saving phases.
    fn backjump(&mut self, to: usize) {
        let cd = &mut self.cdcl;
        let keep = if to == 0 && cd.lim.is_empty() {
            cd.trail.len()
        } else {
            cd.lim[to]
        };
        while cd.trail.len() > keep {
            let v = cd.trail.pop().expect("trail len checked") as usize;
            cd.saved[v] = cd.val[v];
            cd.val[v] = Val::Unknown;
            cd.reason[v] = Reason::Decision;
            cd.dep[v] = false;
        }
        cd.lim.truncate(to);
        cd.flipped.truncate(to);
        // A literal may have been asserted and not yet propagated; never
        // skip it by advancing qhead past the shortened trail.
        cd.qhead = cd.qhead.min(cd.trail.len());
    }

    /// Flip the deepest unflipped decision (chronological enumeration
    /// movement). Returns false when every decision is exhausted.
    fn flip_deepest(&mut self) -> bool {
        loop {
            let levels = self.cdcl.lim.len();
            if levels == 0 {
                return false;
            }
            let dvar = self.cdcl.trail[self.cdcl.lim[levels - 1]];
            let was = self.cdcl.val[dvar as usize];
            let was_flipped = self.cdcl.flipped[levels - 1];
            self.backjump(levels - 1);
            if !was_flipped {
                self.new_level(true);
                self.cd_assign(dvar, negate(was), Reason::Decision);
                return true;
            }
        }
    }

    /// EVSIDS branching: the unassigned atom with the highest activity,
    /// choice atoms then lowest index breaking ties. `None` when every atom
    /// is assigned (body variables follow by propagation, but sweep them
    /// too so the assignment is total).
    fn pick_branch(&mut self) -> Option<u32> {
        let cd = &self.cdcl;
        let mut best: Option<u32> = None;
        for a in 0..cd.n_atoms as u32 {
            if cd.val[a as usize] != Val::Unknown {
                continue;
            }
            match best {
                None => best = Some(a),
                Some(b) => {
                    let better = cd.activity[a as usize] > cd.activity[b as usize]
                        || (cd.activity[a as usize] == cd.activity[b as usize]
                            && cd.is_choice[a as usize]
                            && !cd.is_choice[b as usize]);
                    if better {
                        best = Some(a);
                    }
                }
            }
        }
        if best.is_some() {
            return best;
        }
        // All atoms assigned; assign any straggler body variable (possible
        // when its rule bodies were never touched by propagation).
        (cd.n_atoms..cd.n_vars)
            .map(|v| v as u32)
            .find(|&v| cd.val[v as usize] == Val::Unknown)
    }

    /// 1UIP conflict analysis. Returns the learned nogood's literal codes
    /// (UIP first), the backjump level, and the LBD.
    fn analyze(&mut self, confl: &[u32]) -> (Vec<u32>, usize, u32) {
        let d = self.cdcl.lim.len() as u32;
        debug_assert!(d > 0, "analyze called at level 0");
        let mut learned: Vec<u32> = Vec::new();
        let mut to_clear: Vec<u32> = Vec::new();
        let mut counter = 0usize;

        let classify = |solver: &mut Self,
                        c: u32,
                        learned: &mut Vec<u32>,
                        to_clear: &mut Vec<u32>,
                        counter: &mut usize| {
            let var = code_var(c);
            if solver.cdcl.seen[var as usize] {
                return;
            }
            let lvl = solver.cdcl.level[var as usize];
            if lvl == 0 {
                // Level-0 literals are globally sound unless they depend on
                // the current call's assumptions, in which case the
                // assumption literal itself must stay in the nogood.
                if solver.cdcl.dep[var as usize] {
                    solver.cdcl.seen[var as usize] = true;
                    to_clear.push(var);
                    learned.push(c);
                }
                return;
            }
            solver.cdcl.seen[var as usize] = true;
            to_clear.push(var);
            if lvl == d {
                *counter += 1;
            } else {
                learned.push(c);
            }
        };

        for &c in confl {
            classify(self, c, &mut learned, &mut to_clear, &mut counter);
        }

        // Walk the trail backwards, resolving current-level literals
        // through their reasons until one remains: the 1UIP.
        let mut idx = self.cdcl.trail.len();
        let uip = loop {
            debug_assert!(counter >= 1, "conflict must involve current level");
            idx -= 1;
            let x = self.cdcl.trail[idx];
            if !self.cdcl.seen[x as usize] {
                continue;
            }
            if counter == 1 {
                break x;
            }
            self.cdcl.seen[x as usize] = false;
            counter -= 1;
            let reason = self.cdcl.reason[x as usize];
            let ante: Vec<u32> = match reason {
                Reason::Nogood(ni) => {
                    self.cdcl.ngs[ni as usize].activity += 1.0;
                    self.cdcl.ngs[ni as usize].lits.clone()
                }
                Reason::Ante(ai) => self.cdcl.antes[ai as usize].clone(),
                Reason::Decision | Reason::Static | Reason::Assumption => {
                    unreachable!("current-level non-UIP literal must have an antecedent")
                }
            };
            for &c in &ante {
                if code_var(c) != x {
                    classify(self, c, &mut learned, &mut to_clear, &mut counter);
                }
            }
        };

        // EVSIDS bumps: every variable that participated in the analysis.
        // Suppressed while enumerating — movement is chronological there,
        // so the branching heuristic is frozen anyway, and the per-conflict
        // decay (plus its periodic full-array rescale) is pure churn.
        if !self.in_flip_mode() {
            for &v in &to_clear {
                self.cdcl.activity[v as usize] += self.cdcl.var_inc;
            }
            self.cdcl.var_inc /= 0.95;
            if self.cdcl.var_inc > 1e100 {
                for a in &mut self.cdcl.activity {
                    *a *= 1e-100;
                }
                self.cdcl.var_inc *= 1e-100;
            }
        }
        for v in to_clear {
            self.cdcl.seen[v as usize] = false;
        }

        let uip_code = code(uip, self.cdcl.val[uip as usize]);
        let bl = learned
            .iter()
            .map(|&c| self.cdcl.level[code_var(c) as usize] as usize)
            .max()
            .unwrap_or(0);
        let mut lbd_levels: Vec<u32> = learned
            .iter()
            .map(|&c| self.cdcl.level[code_var(c) as usize])
            .collect();
        lbd_levels.push(d);
        lbd_levels.sort_unstable();
        lbd_levels.dedup();
        let lbd = lbd_levels.len() as u32;

        let mut lits = Vec::with_capacity(1 + learned.len());
        lits.push(uip_code);
        lits.extend(learned);
        (lits, bl, lbd)
    }

    /// Whether any decision level is a flip (enumeration mode: restarts off,
    /// movement is chronological).
    fn in_flip_mode(&self) -> bool {
        self.cdcl.flipped.iter().any(|&f| f)
    }

    /// Handle a conflict: learn, backjump (or flip in enumeration mode),
    /// maybe restart. `Ok(false)` means the search space is exhausted.
    fn handle_conflict(&mut self, confl: &[u32], opts: &SolveOptions) -> Result<bool, AspError> {
        self.conflict_count += 1;
        self.lifetime_conflicts += 1;
        self.check_budget(opts)?;
        if self.cdcl.lim.is_empty() {
            // Conflict with no decisions: refuted under the assumptions
            // alone (or outright). Learn the assumption nogood so later
            // calls refute it by propagation.
            if !self.assumptions.is_empty() {
                let lits: Vec<u32> = self.assumptions.iter().map(|&(a, v)| code(a, v)).collect();
                self.learn_stored(lits, 1);
            }
            return Ok(false);
        }
        if self.in_flip_mode() {
            // Enumeration mode: learn the 1UIP nogood for pruning but move
            // chronologically — exhaustiveness relies on the flip trail.
            // Restarts (and with them learned-DB reduction) stay off, and
            // `analyze` skips activity bumps/decay: dropping pruning
            // nogoods or reshuffling the heuristic mid-enumeration costs
            // more than either is worth when movement is chronological.
            let (lits, _bl, lbd) = self.analyze(confl);
            let alive = self.flip_deepest();
            self.learn_stored(lits, lbd);
            return Ok(alive);
        }
        let (lits, bl, lbd) = self.analyze(confl);
        self.backjump(bl);
        if lits.len() == 1 {
            let c = lits[0];
            let pairs = [(code_var(c), code_val(c))];
            if self.cdcl.learned_fps.insert(fingerprint(&pairs)) {
                if self.proof.is_some() {
                    self.plog(ProofStep::Learned(vec![c]));
                }
                self.cdcl.learned_units.push(c);
            }
            if self.cdcl.val[code_var(c) as usize] == Val::Unknown {
                self.cd_assign(code_var(c), negate(code_val(c)), Reason::Static);
            }
        } else {
            // Watch the UIP (position 0) and a deepest-level learned
            // literal (position 1): the standard asserting setup — every
            // other literal stays satisfied until the backjump level is
            // undone.
            let mut lits = lits;
            let mut deepest = 1usize;
            for i in 2..lits.len() {
                if self.cdcl.level[code_var(lits[i]) as usize]
                    > self.cdcl.level[code_var(lits[deepest]) as usize]
                {
                    deepest = i;
                }
            }
            lits.swap(1, deepest);
            let uip = lits[0];
            // Always stored (even when a fingerprint collision says a copy
            // may exist): the assertion needs a resolvable reason, and a
            // rare duplicate in the database is sound.
            let pairs: Vec<(u32, Val)> = lits.iter().map(|&c| (code_var(c), code_val(c))).collect();
            self.cdcl.learned_fps.insert(fingerprint(&pairs));
            let ni = self.add_learned_watched(lits, lbd, false);
            if self.cdcl.val[code_var(uip) as usize] == Val::Unknown {
                self.cd_assign(code_var(uip), negate(code_val(uip)), Reason::Nogood(ni));
            }
        }
        self.cdcl.conflicts_since_restart += 1;
        if self.cdcl.conflicts_since_restart >= luby(self.cdcl.restart_seq) * self.restart_interval
        {
            self.cdcl.conflicts_since_restart = 0;
            self.cdcl.restart_seq += 1;
            self.restart_count += 1;
            self.backjump(0);
            self.maybe_reduce_db();
        }
        Ok(true)
    }

    /// LBD-based learned-database reduction, run at level 0 after restarts:
    /// keep locked nogoods (a trail reason), low-LBD nogoods, and the more
    /// active half of the rest. Replaces the former flat 4096-entry cap.
    fn maybe_reduce_db(&mut self) {
        debug_assert!(self.cdcl.lim.is_empty());
        let learned = self.cdcl.ngs.len() - self.cdcl.first_learned;
        let threshold = 4000 + 2000 * self.cdcl.reduce_count as usize;
        if learned <= threshold {
            return;
        }
        let first = self.cdcl.first_learned;
        let mut locked = vec![false; self.cdcl.ngs.len()];
        for &v in &self.cdcl.trail {
            if let Reason::Nogood(ni) = self.cdcl.reason[v as usize] {
                locked[ni as usize] = true;
            }
        }
        // Rank the unlocked, high-LBD candidates; drop the worse half.
        let mut candidates: Vec<u32> = (first..self.cdcl.ngs.len())
            .map(|i| i as u32)
            .filter(|&i| !locked[i as usize] && self.cdcl.ngs[i as usize].lbd > 3)
            .collect();
        candidates.sort_by(|&a, &b| {
            let (na, nb) = (&self.cdcl.ngs[a as usize], &self.cdcl.ngs[b as usize]);
            na.lbd.cmp(&nb.lbd).then(
                nb.activity
                    .partial_cmp(&na.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let drop_from = candidates.len() / 2;
        let dropped: HashSet<u32> = candidates[drop_from..].iter().copied().collect();
        if dropped.is_empty() {
            return;
        }
        if self.proof.is_some() {
            let dels: Vec<Vec<u32>> = dropped
                .iter()
                .map(|&i| self.cdcl.ngs[i as usize].lits.clone())
                .collect();
            for d in dels {
                self.plog(ProofStep::Delete(d));
            }
        }
        // Compact the store, remapping reasons and rebuilding every watch
        // list (statics keep their indices: they all precede `first`).
        let mut remap: Vec<u32> = vec![u32::MAX; self.cdcl.ngs.len()];
        let mut kept: Vec<Nogood> = Vec::with_capacity(self.cdcl.ngs.len() - dropped.len());
        for (i, ng) in self.cdcl.ngs.drain(..).enumerate() {
            if dropped.contains(&(i as u32)) {
                continue;
            }
            remap[i] = kept.len() as u32;
            kept.push(ng);
        }
        self.cdcl.ngs = kept;
        for r in &mut self.cdcl.reason {
            if let Reason::Nogood(ni) = r {
                let new = remap[*ni as usize];
                debug_assert_ne!(new, u32::MAX, "locked nogood dropped");
                *ni = new;
            }
        }
        for w in &mut self.cdcl.watches {
            w.clear();
        }
        for ni in 0..self.cdcl.ngs.len() {
            let mut lits = std::mem::take(&mut self.cdcl.ngs[ni].lits);
            if ni >= self.cdcl.first_learned {
                self.choose_watches(&mut lits);
            }
            self.cdcl.watches[lits[0] as usize].push(ni as u32);
            self.cdcl.watches[lits[1] as usize].push(ni as u32);
            self.cdcl.ngs[ni].lits = lits;
        }
        self.cdcl.reduce_count += 1;
    }

    /// A complete assignment failed the independent stability check: the
    /// current prefix admits no stable model. Treat it as a conflict over
    /// the prefix literals.
    fn prefix_nogood(&self) -> Vec<u32> {
        self.prefix_codes()
    }

    /// The CDCL search loop: propagate, branch by EVSIDS with phase saving,
    /// analyze conflicts to 1UIP with Luby restarts; switch to
    /// chronological flips once enumeration needs to move past a model.
    pub(super) fn search_cdcl(
        &mut self,
        opts: &SolveOptions,
        on_model: &mut dyn FnMut(Model) -> bool,
        prune: &mut dyn FnMut(&Self) -> bool,
    ) -> Result<bool, AspError> {
        loop {
            if let Some(confl) = self.cdcl_propagate() {
                if !self.handle_conflict(&confl, opts)? {
                    return Ok(true);
                }
                continue;
            }
            if prune(self) {
                // Incumbent-dependent: never learned, chronological move.
                self.bound_prune_count += 1;
                if !self.flip_deepest() {
                    return Ok(true);
                }
                continue;
            }
            match self.pick_branch() {
                Some(v) => {
                    self.decision_count += 1;
                    self.check_budget(opts)?;
                    let phase = self.cdcl.saved[v as usize];
                    let phase = if phase == Val::Unknown {
                        Val::True
                    } else {
                        phase
                    };
                    self.new_level(false);
                    self.cd_assign(v, phase, Reason::Decision);
                }
                None => {
                    if let Some(model) = self.check_candidate() {
                        if self.certify_call && self.proof.is_some() {
                            let atoms: Vec<u32> = (0..self.cdcl.n_atoms as u32)
                                .filter(|&a| self.cdcl.val[a as usize] == Val::True)
                                .collect();
                            self.plog(ProofStep::Model {
                                cost: model.cost.clone(),
                                atoms,
                            });
                        }
                        if !on_model(model) {
                            return Ok(false);
                        }
                        if !self.flip_deepest() {
                            return Ok(true);
                        }
                    } else {
                        // Sound prefix refutation (assignment is a fixpoint
                        // of sound propagation yet not stable).
                        let confl = self.prefix_nogood();
                        if self.proof.is_some() {
                            self.plog(ProofStep::Stability(confl.clone()));
                        }
                        if !self.handle_conflict(&confl, opts)? {
                            return Ok(true);
                        }
                    }
                }
            }
        }
    }

    /// Start the proof log: drop the (no longer justifiable) learned
    /// database and record the translation — body declarations, completion
    /// axioms, static units and the well-founded backbone — that every
    /// later derivation step builds on.
    fn init_proof(&mut self) {
        // Pre-existing learned nogoods were derived before logging began;
        // the checker could never justify them, so search restarts cold.
        self.clear_learned();
        let cd = &self.cdcl;
        let mut log = ProofLog {
            n_atoms: cd.n_atoms as u32,
            bodies: cd.bodies.clone(),
            steps: Vec::new(),
            truncated: false,
        };
        if cd.root_unsat {
            log.push(ProofStep::Axiom(Vec::new()));
        }
        for ng in &cd.ngs {
            log.push(ProofStep::Axiom(ng.lits.clone()));
        }
        for &(var, v) in &cd.units {
            log.push(ProofStep::Axiom(vec![code(var, negate(v))]));
        }
        for &(a, v) in &self.wfm_seeds {
            log.push(ProofStep::Wfm(code(a, negate(v))));
        }
        self.proof = Some(log);
        self.call_seq = 0;
    }

    /// Begin a certified solve call: lazily initialize the log and tag the
    /// call's assumptions so its terminal (model / unsat) steps are scoped
    /// to them. A no-op on the reference engine, which never certifies.
    pub(super) fn begin_certified_call(&mut self, assumptions: &[Lit]) {
        self.certify_call = false;
        if self.reference {
            return;
        }
        if self.proof.is_none() {
            self.init_proof();
        }
        let lits: Vec<u32> = assumptions
            .iter()
            .map(|l| code(l.atom.0, if l.positive { Val::True } else { Val::False }))
            .collect();
        let seq = self.call_seq;
        self.call_seq += 1;
        self.plog(ProofStep::Call {
            seq,
            assumptions: lits,
        });
        self.certify_call = true;
    }

    /// Mirror a full learned-database clear into the proof log as `Delete`
    /// steps. No-op without an active log.
    pub(super) fn log_learned_clear(&mut self) {
        if self.proof.is_none() {
            return;
        }
        let dels: Vec<Vec<u32>> = self.cdcl.ngs[self.cdcl.first_learned..]
            .iter()
            .map(|ng| ng.lits.clone())
            .chain(self.cdcl.learned_units.iter().map(|&c| vec![c]))
            .collect();
        for d in dels {
            self.plog(ProofStep::Delete(d));
        }
    }

    /// Test-only invariant: every stored nogood is watched exactly at its
    /// first two literal positions.
    #[cfg(test)]
    pub(super) fn debug_check_watches(&self) -> bool {
        let cd = &self.cdcl;
        let mut total = 0usize;
        for (ni, ng) in cd.ngs.iter().enumerate() {
            let ni = ni as u32;
            if !cd.watches[ng.lits[0] as usize].contains(&ni)
                || !cd.watches[ng.lits[1] as usize].contains(&ni)
            {
                return false;
            }
        }
        for w in &cd.watches {
            total += w.len();
        }
        total == 2 * cd.ngs.len()
    }
}
