use super::*;
use crate::ground::Grounder;
use crate::parse;

fn solve_all(src: &str) -> Vec<Model> {
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let mut s = Solver::new(&g);
    let r = s.enumerate(&SolveOptions::default()).unwrap();
    assert!(r.exhausted);
    r.models
}

fn model_strings(models: &[Model]) -> Vec<String> {
    let mut out: Vec<String> = models
        .iter()
        .map(|m| {
            m.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    out.sort();
    out
}

#[test]
fn definite_program_has_unique_model() {
    let models = solve_all("p. q :- p. r :- q, p.");
    assert_eq!(models.len(), 1);
    assert!(models[0].contains_str("r"));
}

#[test]
fn inconsistent_program_has_no_models() {
    let models = solve_all("p. :- p.");
    assert!(models.is_empty());
}

#[test]
fn even_loop_yields_two_models() {
    // Classic: a :- not b. b :- not a.
    let models = solve_all("a :- not b. b :- not a.");
    assert_eq!(model_strings(&models), vec!["a", "b"]);
}

#[test]
fn odd_loop_is_inconsistent() {
    let models = solve_all("a :- not a.");
    assert!(models.is_empty());
}

#[test]
fn positive_loop_is_unfounded() {
    let models = solve_all("a :- b. b :- a.");
    assert_eq!(models.len(), 1);
    assert!(models[0].atoms.is_empty());
}

#[test]
fn choice_rule_enumerates_subsets() {
    let models = solve_all("{ a; b }.");
    assert_eq!(models.len(), 4);
}

#[test]
fn tight_certificate_tracks_ground_positive_loops() {
    let tight_src = "{ fault(a) }. affected(X) :- fault(X). :- affected(a).";
    let g = Grounder::new().ground(&parse(tight_src).unwrap()).unwrap();
    assert!(Solver::new(&g).tight());
    // Choices keep the loop derivable through the semi-naive grounder.
    let loopy = "{ x }. a :- x. a :- b. b :- a.";
    let g = Grounder::new().ground(&parse(loopy).unwrap()).unwrap();
    assert!(!Solver::new(&g).tight());
    // The reference engine never claims the certificate.
    let g = Grounder::new().ground(&parse(tight_src).unwrap()).unwrap();
    assert!(!Solver::new_reference(&g).tight());
}

#[test]
fn tight_fast_path_matches_closure_on_tight_programs() {
    // Choice + chain + constraint + even negation loop: tight, with
    // nondeterminism the completion nogoods must track across backjumps.
    let src = "{ c(1); c(2); c(3) }. r(X) :- c(X). s :- r(1), r(2). \
               :- r(3), not s. a :- not b. b :- not a.";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let mut fast = Solver::new(&g);
    assert!(fast.tight());
    let rf = fast.enumerate(&SolveOptions::default()).unwrap();
    let mut slow = Solver::new(&g);
    slow.set_tight_mode(false);
    let rs = slow.enumerate(&SolveOptions::default()).unwrap();
    assert!(rf.exhausted && rs.exhausted);
    assert_eq!(model_strings(&rf.models), model_strings(&rs.models));
    assert_eq!(rf.models.len(), 10);
}

#[test]
fn tight_mode_falsifies_atoms_without_any_rule() {
    // b has no defining rule: the zero-support unit must falsify it
    // before the constraint can be judged.
    let models = solve_all("{ a }. :- not b.");
    assert!(models.is_empty());
}

#[test]
fn non_tight_programs_keep_the_unfounded_closure() {
    // Forcing tight mode on has no effect without the certificate.
    let g = Grounder::new()
        .ground(&parse("{ x }. a :- x. a :- b. b :- a. :- not a.").unwrap())
        .unwrap();
    let mut s = Solver::new(&g);
    s.set_tight_mode(true);
    assert!(!s.tight());
    let r = s.enumerate(&SolveOptions::default()).unwrap();
    assert_eq!(model_strings(&r.models), vec!["a b x"]);
}

#[test]
fn bounded_choice_respects_bounds() {
    let models = solve_all("item(x). item(y). item(z). 1 { pick(I) : item(I) } 2.");
    // C(3,1) + C(3,2) = 6 models.
    assert_eq!(models.len(), 6);
    for m in &models {
        let picks = m.atoms_of("pick").len();
        assert!((1..=2).contains(&picks));
    }
}

#[test]
fn constraints_prune_models() {
    let models = solve_all("{ a; b }. :- a, b. :- not a, not b.");
    assert_eq!(models.len(), 2);
}

#[test]
fn listing_one_fault_activation_semantics() {
    // Without the mitigation active the fault is potential; with it, not.
    let src = "component(ew). fault(f4). mitigation(f4, m2). \
               { active_mitigation(ew, m2) }. \
               potential_fault(C, F) :- component(C), fault(F), \
                   mitigation(F, M), not active_mitigation(C, M).";
    let models = solve_all(src);
    assert_eq!(models.len(), 2);
    let with_mitigation = models
        .iter()
        .find(|m| m.contains_str("active_mitigation(ew,m2)"))
        .unwrap();
    assert!(!with_mitigation.contains_str("potential_fault(ew,f4)"));
    let without = models
        .iter()
        .find(|m| !m.contains_str("active_mitigation(ew,m2)"))
        .unwrap();
    assert!(without.contains_str("potential_fault(ew,f4)"));
}

#[test]
fn optimization_finds_minimum() {
    let src = "item(a). item(b). item(c). \
               cost(a, 7). cost(b, 3). cost(c, 5). \
               1 { pick(I) : item(I) } 1. \
               #minimize { C,I : pick(I), cost(I, C) }.";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let mut s = Solver::new(&g);
    let best = s.optimize(&SolveOptions::default()).unwrap().unwrap();
    assert!(best.contains_str("pick(b)"));
    assert_eq!(best.cost, vec![(0, 3)]);
}

#[test]
fn optimization_with_priorities_is_lexicographic() {
    // High priority: minimize number of picks; low: total cost.
    let src = "item(a). item(b). cost(a, 1). cost(b, 1). \
               1 { pick(I) : item(I) } 2. \
               #minimize { 1@2,I : pick(I) }. \
               #minimize { C@1,I : pick(I), cost(I, C) }.";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let mut s = Solver::new(&g);
    let best = s.optimize(&SolveOptions::default()).unwrap().unwrap();
    assert_eq!(best.atoms_of("pick").len(), 1);
    assert_eq!(best.cost[0], (2, 1));
}

#[test]
fn brave_and_cautious_consequences() {
    let src = "a :- not b. b :- not a. c.";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let brave: Vec<String> = Solver::new(&g)
        .brave(&SolveOptions::default())
        .unwrap()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(brave, vec!["a", "b", "c"]);
    let cautious: Vec<String> = Solver::new(&g)
        .cautious(&SolveOptions::default())
        .unwrap()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(cautious, vec!["c"]);
}

#[test]
fn total_wfm_solves_without_decisions() {
    // Stratified program: the WFM decides every atom, so the seeds
    // leave nothing to branch on.
    let src = "p. q :- p. r :- q, not s.";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let mut s = Solver::new(&g);
    assert!(s.wfm().expect("non-reference computes the WFM").total());
    let res = s.enumerate(&SolveOptions::default()).unwrap();
    assert_eq!(res.models.len(), 1);
    assert_eq!(res.decisions, 0, "the backbone is the model");
}

#[test]
fn assumptions_against_the_backbone_yield_no_models() {
    let src = "p. q :- not r.";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let p = g.lookup(&Atom::prop("p")).unwrap();
    let mut s = Solver::new(&g);
    let res = s
        .solve_with_assumptions(&[Lit::neg(p)], &SolveOptions::default())
        .unwrap();
    assert!(res.models.is_empty() && res.exhausted);
    // The same assumption still enumerates fine when compatible.
    let res = s
        .solve_with_assumptions(&[Lit::pos(p)], &SolveOptions::default())
        .unwrap();
    assert_eq!(res.models.len(), 1);
}

#[test]
fn max_models_stops_early() {
    let g = Grounder::new()
        .ground(&parse("{ a; b; c }.").unwrap())
        .unwrap();
    let mut s = Solver::new(&g);
    let r = s
        .enumerate(&SolveOptions {
            max_models: 3,
            ..SolveOptions::default()
        })
        .unwrap();
    assert_eq!(r.models.len(), 3);
    assert!(!r.exhausted);
}

#[test]
fn decision_budget_is_enforced() {
    let g = Grounder::new()
        .ground(&parse("{ a; b; c; d; e; f }.").unwrap())
        .unwrap();
    let mut s = Solver::new(&g);
    let err = s
        .enumerate(&SolveOptions {
            max_decisions: 2,
            ..SolveOptions::default()
        })
        .unwrap_err();
    assert!(matches!(err, AspError::SolveBudget { limit: 2, .. }));
}

#[test]
fn budget_abort_reports_partial_statistics() {
    let g = Grounder::new()
        .ground(&parse("{ a; b; c; d; e; f }.").unwrap())
        .unwrap();
    let mut s = Solver::new(&g);
    let err = s
        .enumerate(&SolveOptions {
            max_decisions: 2,
            ..SolveOptions::default()
        })
        .unwrap_err();
    match err {
        AspError::SolveBudget {
            limit,
            decisions,
            conflicts,
        } => {
            assert_eq!(limit, 2);
            assert!(decisions + conflicts > limit, "abort past the budget");
        }
        other => panic!("expected SolveBudget, got {other:?}"),
    }
}

#[test]
fn model_cost_reported_even_without_optimize() {
    let src = "{ a }. #minimize { 5 : a }.";
    let models = solve_all(src);
    let costs: Vec<i64> = models.iter().map(|m| m.cost[0].1).collect();
    assert!(costs.contains(&0) && costs.contains(&5));
}

#[test]
fn minimize_set_semantics_counts_tuples_once() {
    // Two conditions with the same (weight, tuple) key count once.
    let src = "a. b. #minimize { 1,k : a; 1,k : b }.";
    let models = solve_all(src);
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].cost[0].1, 1);
}

#[test]
fn stratified_negation_solves_without_branching() {
    let src = "p(1..3). q(X) :- p(X), not skip(X). skip(2).";
    let models = solve_all(src);
    assert_eq!(models.len(), 1);
    assert!(models[0].contains_str("q(1)"));
    assert!(!models[0].contains_str("q(2)"));
    assert!(models[0].contains_str("q(3)"));
}

#[test]
fn display_respects_show_projection() {
    let src = "p(1). q(2). #show q/1.";
    let models = solve_all(src);
    assert_eq!(models[0].to_string(), "q(2)");
}

#[test]
fn graph_coloring_sanity() {
    // 3-coloring of a triangle: 6 models.
    let src = "node(1..3). color(r). color(g). color(b). \
               edge(1,2). edge(2,3). edge(1,3). \
               1 { assign(N, C) : color(C) } 1 :- node(N). \
               :- edge(X, Y), assign(X, C), assign(Y, C).";
    let models = solve_all(src);
    assert_eq!(models.len(), 6);
}

#[test]
fn luby_sequence_matches_the_reference_values() {
    let got: Vec<u64> = (1..=15).map(super::cdcl::luby).collect();
    assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
}

#[test]
fn watches_stay_consistent_after_backjumping() {
    // UNSAT 2-coloring of an odd cycle: guaranteed conflicts, backjumps
    // and (with interval 1) restarts before exhaustion.
    let src = "node(1..5). color(r). color(g). \
               edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(5,1). \
               1 { assign(N, C) : color(C) } 1 :- node(N). \
               :- edge(X, Y), assign(X, C), assign(Y, C).";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let mut s = Solver::new(&g);
    s.set_restart_interval(1);
    let r = s.enumerate(&SolveOptions::default()).unwrap();
    assert!(r.models.is_empty() && r.exhausted);
    assert!(r.conflicts > 0, "odd cycle must conflict");
    assert!(
        s.debug_check_watches(),
        "every nogood watched exactly at lits[0]/lits[1]"
    );
    // And the same store still answers a satisfiable variant: 3 colors.
    let src3 = src.replace("color(r). color(g).", "color(r). color(g). color(b).");
    let g3 = Grounder::new().ground(&parse(&src3).unwrap()).unwrap();
    let mut s3 = Solver::new(&g3);
    s3.set_restart_interval(1);
    let r3 = s3.enumerate(&SolveOptions::default()).unwrap();
    assert_eq!(r3.models.len(), 30, "2-colorings of C5 with 3 colors");
    assert!(s3.debug_check_watches());
}

#[test]
fn restarts_fire_under_a_tight_interval() {
    // UNSAT pigeonhole-style core: conflicts pile up before the (absent)
    // first model, so a 1-conflict Luby interval must restart.
    let src = "node(1..7). color(r). color(g). \
               edge(X, Y) :- node(X), node(Y), X < Y. \
               1 { assign(N, C) : color(C) } 1 :- node(N). \
               :- edge(X, Y), assign(X, C), assign(Y, C).";
    let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
    let mut s = Solver::new(&g);
    s.set_restart_interval(1);
    let r = s.enumerate(&SolveOptions::default()).unwrap();
    assert!(r.models.is_empty() && r.exhausted, "K7 is not 2-colorable");
    assert!(r.conflicts > 1);
    assert!(
        r.restarts > 0,
        "interval 1 must restart: {} conflicts",
        r.conflicts
    );
    assert_eq!(r.restarts, s.restarts());
}

#[test]
fn phase_saving_records_the_last_unassigned_value() {
    // Full enumeration of { a; b } flips every decision at least once, so
    // the saved phases end on the values of the last unassignments — and
    // the next call's first model must follow exactly those phases.
    let g = Grounder::new()
        .ground(&parse("{ a; b }.").unwrap())
        .unwrap();
    let a = g.lookup(&Atom::prop("a")).unwrap();
    let b = g.lookup(&Atom::prop("b")).unwrap();
    let mut s = Solver::new(&g);
    let r = s.enumerate(&SolveOptions::default()).unwrap();
    assert_eq!(r.models.len(), 4);
    let saved_a = s.cdcl.saved[a.index()];
    let saved_b = s.cdcl.saved[b.index()];
    assert_ne!(saved_a, Val::Unknown);
    assert_ne!(saved_b, Val::Unknown);
    assert_ne!(
        (saved_a, saved_b),
        (Val::True, Val::True),
        "enumeration must have flipped away from the initial all-True phase"
    );
    let r = s
        .enumerate(&SolveOptions {
            max_models: 1,
            ..SolveOptions::default()
        })
        .unwrap();
    let m = &r.models[0];
    assert_eq!(m.contains_str("a"), saved_a == Val::True, "phase steers a");
    assert_eq!(m.contains_str("b"), saved_b == Val::True, "phase steers b");
}

#[cfg(test)]
mod assumption_tests {
    use crate::ast::Atom;
    use crate::ground::Grounder;
    use crate::parse;
    use crate::solve::{Lit, SolveOptions, SolveResult, Solver};

    fn ground_assumable(src: &str, preds: &[(&str, usize)]) -> crate::program::GroundProgram {
        let mut g = Grounder::new();
        for (p, n) in preds {
            g = g.assumable(p, *n);
        }
        g.ground(&parse(src).unwrap()).unwrap()
    }

    fn lit(g: &crate::program::GroundProgram, name: &str, positive: bool) -> Lit {
        Lit {
            atom: g.lookup(&Atom::prop(name)).expect("atom interned"),
            positive,
        }
    }

    #[test]
    fn assumable_facts_become_choice_atoms() {
        let g = ground_assumable("p. q :- p.", &[("p", 0)]);
        assert_eq!(g.assumable.len(), 1);
        let mut s = Solver::new(&g);
        // Unassumed, p is free: two models.
        assert_eq!(
            s.enumerate(&SolveOptions::default()).unwrap().models.len(),
            2
        );
        // Pinned true: q follows.
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", true)], &SolveOptions::default())
            .unwrap();
        assert_eq!(r.models.len(), 1);
        assert!(r.models[0].contains_str("q"));
        assert!(r.exhausted);
        // Pinned false on the same reused solver: q gone.
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", false)], &SolveOptions::default())
            .unwrap();
        assert_eq!(r.models.len(), 1);
        assert!(!r.models[0].contains_str("q"));
    }

    #[test]
    fn non_fact_rules_of_assumable_predicates_stay_normal() {
        let g = ground_assumable("{ a }. p :- a.", &[("p", 0)]);
        assert!(g.assumable.is_empty(), "only facts become assumable");
    }

    #[test]
    fn contradictory_assumptions_are_unsat() {
        let g = ground_assumable("p.", &[("p", 0)]);
        let mut s = Solver::new(&g);
        let r = s
            .solve_with_assumptions(
                &[lit(&g, "p", true), lit(&g, "p", false)],
                &SolveOptions::default(),
            )
            .unwrap();
        assert!(r.models.is_empty());
        assert!(r.exhausted);
    }

    #[test]
    fn program_refuted_assumption_is_unsat_and_learns() {
        // p pinned true while a constraint forbids it.
        let g = ground_assumable("p. :- p.", &[("p", 0)]);
        let mut s = Solver::new(&g);
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", true)], &SolveOptions::default())
            .unwrap();
        assert!(r.models.is_empty() && r.exhausted);
        assert!(r.conflicts > 0);
        assert_eq!(s.learned_nogoods(), 1, "the level-0 refutation is learned");
        // The learned nogood must not leak into other assumption sets.
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", false)], &SolveOptions::default())
            .unwrap();
        assert_eq!(r.models.len(), 1);
    }

    #[test]
    fn reused_solver_equals_fresh_solver_across_assumption_sets() {
        let src = "{ a; b }. p. q :- p, a. :- q, b.";
        let g = ground_assumable(src, &[("p", 0)]);
        let mut reused = Solver::new(&g);
        for positive in [true, false, true, false] {
            let assumptions = [lit(&g, "p", positive)];
            let got = reused
                .solve_with_assumptions(&assumptions, &SolveOptions::default())
                .unwrap();
            let fresh = Solver::new(&g)
                .solve_with_assumptions(&assumptions, &SolveOptions::default())
                .unwrap();
            let render = |r: &SolveResult| {
                let mut v: Vec<String> = r
                    .models
                    .iter()
                    .map(|m| {
                        m.atoms
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" ")
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(render(&got), render(&fresh), "p = {positive}");
            assert_eq!(got.exhausted, fresh.exhausted);
        }
    }

    #[test]
    fn optimize_with_assumptions_respects_the_pin() {
        let src = "item(a). item(b). cost(a, 7). cost(b, 3). \
                   1 { pick(I) : item(I) } 1. \
                   allow_b. :- pick(b), not allow_b. \
                   #minimize { C,I : pick(I), cost(I, C) }.";
        let g = ground_assumable(src, &[("allow_b", 0)]);
        let mut s = Solver::new(&g);
        let with_b = s
            .optimize_with_assumptions(
                &[Lit::pos(g.lookup(&Atom::prop("allow_b")).unwrap())],
                &SolveOptions::default(),
            )
            .unwrap()
            .unwrap();
        assert!(with_b.contains_str("pick(b)"));
        assert_eq!(with_b.cost, vec![(0, 3)]);
        let without_b = s
            .optimize_with_assumptions(
                &[Lit::neg(g.lookup(&Atom::prop("allow_b")).unwrap())],
                &SolveOptions::default(),
            )
            .unwrap()
            .unwrap();
        assert!(without_b.contains_str("pick(a)"));
        assert_eq!(without_b.cost, vec![(0, 7)]);
    }

    #[test]
    fn clear_learned_drops_the_store() {
        let g = ground_assumable("p. :- p.", &[("p", 0)]);
        let mut s = Solver::new(&g);
        s.solve_with_assumptions(&[lit(&g, "p", true)], &SolveOptions::default())
            .unwrap();
        assert!(s.learned_nogoods() > 0);
        s.clear_learned();
        assert_eq!(s.learned_nogoods(), 0);
    }
}

#[cfg(test)]
mod bb_tests {
    use crate::ground::Grounder;
    use crate::parse;
    use crate::solve::{SolveOptions, Solver};

    #[test]
    fn branch_and_bound_prunes_the_selection_grid() {
        // Pick exactly 2 of 16 items minimizing weight: optimum 1+2 = 3.
        let src = "item(1..16). weight(I, I) :- item(I). \
                   2 { pick(I) : item(I) } 2. \
                   #minimize { W,I : pick(I), weight(I, W) }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();

        let mut opt_solver = Solver::new(&g);
        let best = opt_solver
            .optimize(&SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(best.cost, vec![(0, 3)]);
        let optimize_decisions = opt_solver.decision_count;

        let mut enum_solver = Solver::new(&g);
        let all = enum_solver.enumerate(&SolveOptions::default()).unwrap();
        assert_eq!(all.models.len(), 120, "C(16,2)");
        assert!(
            optimize_decisions < enum_solver.decision_count,
            "pruning must beat full enumeration: {} vs {}",
            optimize_decisions,
            enum_solver.decision_count
        );
    }

    #[test]
    fn pruning_is_sound_with_negative_weights() {
        let src = "{ a; b; c }. \
                   #minimize { -5 : a; 3 : b; -1 : c }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut solver = Solver::new(&g);
        let best = solver.optimize(&SolveOptions::default()).unwrap().unwrap();
        // Optimal: a and c true, b false => -6.
        assert_eq!(best.cost, vec![(0, -6)]);
        assert!(best.contains_str("a") && best.contains_str("c") && !best.contains_str("b"));
    }

    #[test]
    fn multi_priority_pruning_is_sound() {
        let src = "{ a; b }. \
                   #minimize { 1@2 : a }. \
                   #minimize { 1@1 : b; 2@1 : a }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut solver = Solver::new(&g);
        let best = solver.optimize(&SolveOptions::default()).unwrap().unwrap();
        assert_eq!(best.cost, vec![(2, 0), (1, 0)]);
        assert!(best.atoms.is_empty());
    }
}
