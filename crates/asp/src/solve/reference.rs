//! The retained naive reference engine: full-scan Fitting passes,
//! unfounded-set closure by repeated scans, chronological `tried_both`
//! backtracking. Semantically identical to the CDCL engine; kept as the
//! differential-testing oracle and the benchmark baseline, so it is
//! deliberately simple rather than fast.

use super::{fingerprint, Lit, Model, SolveOptions, Solver, Val};
use crate::error::AspError;
use crate::program::{AtomId, GroundHead};

impl Solver<'_> {
    /// Reference per-call setup: reset the assignment, pin the assumptions
    /// at level 0. False means the assumptions contradict each other.
    pub(super) fn prepare_reference(&mut self, assumptions: &[Lit]) -> bool {
        self.val.fill(Val::Unknown);
        self.trail.clear();
        self.decisions.clear();
        self.trail_lim.clear();
        let mut ok = true;
        for l in assumptions {
            let v = if l.positive { Val::True } else { Val::False };
            self.assumptions.push((l.atom.0, v));
            ok = ok && self.set_ref(l.atom, v);
        }
        ok
    }

    /// Core chronological DFS (the pre-CDCL search loop).
    pub(super) fn search_reference(
        &mut self,
        opts: &SolveOptions,
        on_model: &mut dyn FnMut(Model) -> bool,
        prune: &mut dyn FnMut(&Self) -> bool,
    ) -> Result<bool, AspError> {
        let mut ok = self.propagate_or_learn();
        loop {
            if ok && prune(self) {
                // Bound prunes depend on the current incumbent, so no
                // nogood is learned here — it would be unsound to retain.
                self.bound_prune_count += 1;
                ok = false;
            }
            if !ok {
                if !self.backtrack() {
                    return Ok(true);
                }
                ok = self.propagate_or_learn();
                continue;
            }
            match self.pick_unknown() {
                Some(a) => {
                    self.decision_count += 1;
                    self.check_budget(opts)?;
                    self.decisions.push((a, false));
                    self.trail_lim.push(self.trail.len());
                    self.assign_ref(a, Val::True);
                    ok = self.propagate_or_learn();
                }
                None => {
                    if let Some(model) = self.check_candidate() {
                        if !on_model(model) {
                            return Ok(false);
                        }
                    } else {
                        // Every assignment on the trail is either an
                        // assumption, a decision, or a sound inference from
                        // them, so this non-model leaf refutes the whole
                        // {assumptions ∪ decisions} combination.
                        self.learn_conflict();
                    }
                    ok = false; // keep searching
                }
            }
        }
    }

    /// Propagate to fixpoint; on conflict, record a learned nogood over the
    /// current assumption and decision literals before reporting failure.
    fn propagate_or_learn(&mut self) -> bool {
        if self.propagate_reference() {
            return true;
        }
        self.learn_conflict();
        false
    }

    /// Learn the conflict nogood {assumption literals ∪ decision literals}.
    ///
    /// Sound across assumption calls: every propagation step only infers
    /// literals that hold in *every* stable model extending the current
    /// prefix, so a conflict — or a complete assignment failing the
    /// independent stability check — proves no stable model satisfies the
    /// prefix. Embedding the assumption literals keeps the clause valid
    /// when later calls assume differently. Never called for
    /// branch-and-bound prunes (those depend on the incumbent) or after
    /// reported models (re-enumeration must stay possible).
    fn learn_conflict(&mut self) {
        self.conflict_count += 1;
        self.lifetime_conflicts += 1;
        let mut ng: Vec<(u32, Val)> =
            Vec::with_capacity(self.assumptions.len() + self.decisions.len());
        ng.extend(self.assumptions.iter().copied());
        for &(a, _) in &self.decisions {
            ng.push((a, self.val[a as usize]));
        }
        // An empty nogood means the program itself is inconsistent; nothing
        // worth storing (the search concludes that on its own).
        if ng.is_empty() || !self.nogood_fps.insert(fingerprint(&ng)) {
            return;
        }
        self.nogoods.push(ng);
    }

    /// Unit propagation over the learned nogoods: a fully satisfied nogood
    /// is a conflict; a nogood with exactly one unknown literal and every
    /// other literal satisfied forces that literal's complement.
    fn nogood_pass(&mut self) -> bool {
        if self.nogoods.is_empty() {
            return true;
        }
        // Temporarily move the store out so forcing can borrow `self`
        // mutably; nothing in `set_ref`/`assign_ref` touches the store.
        let nogoods = std::mem::take(&mut self.nogoods);
        let ok = self.nogood_pass_inner(&nogoods);
        self.nogoods = nogoods;
        ok
    }

    fn nogood_pass_inner(&mut self, nogoods: &[Vec<(u32, Val)>]) -> bool {
        'outer: for ng in nogoods {
            let mut unknown: Option<(u32, Val)> = None;
            for &(a, v) in ng {
                match self.val[a as usize] {
                    Val::Unknown => {
                        if unknown.is_some() {
                            continue 'outer; // two unknowns: nothing to do
                        }
                        unknown = Some((a, v));
                    }
                    cur if cur == v => {}
                    _ => continue 'outer, // a literal is falsified: inert
                }
            }
            match unknown {
                None => return false, // every literal satisfied: conflict
                Some((a, v)) => {
                    let complement = if v == Val::True {
                        Val::False
                    } else {
                        Val::True
                    };
                    self.nogood_force_count += 1;
                    if !self.set_ref(AtomId(a), complement) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Chronological backtracking; returns false when the search is done.
    fn backtrack(&mut self) -> bool {
        loop {
            let Some((atom, tried_both)) = self.decisions.pop() else {
                return false;
            };
            let lim = self.trail_lim.pop().expect("trail_lim parallels decisions");
            while self.trail.len() > lim {
                let a = self.trail.pop().expect("trail len checked");
                self.val[a as usize] = Val::Unknown;
            }
            if !tried_both {
                self.decisions.push((atom, true));
                self.trail_lim.push(self.trail.len());
                self.assign_ref(atom, Val::False);
                return true;
            }
        }
    }

    fn assign_ref(&mut self, atom: u32, v: Val) {
        debug_assert_eq!(self.val[atom as usize], Val::Unknown);
        self.val[atom as usize] = v;
        self.trail.push(atom);
        self.propagation_count += 1;
    }

    /// Set with conflict detection. Returns false on conflict.
    fn set_ref(&mut self, atom: AtomId, v: Val) -> bool {
        match self.val[atom.index()] {
            Val::Unknown => {
                self.assign_ref(atom.0, v);
                true
            }
            cur => cur == v,
        }
    }

    /// Branch preferentially on choice atoms (the decision variables of the
    /// encodings), then on any unknown atom.
    fn pick_unknown(&self) -> Option<u32> {
        for &a in &self.choice_atoms {
            if self.val[a as usize] == Val::Unknown {
                return Some(a);
            }
        }
        self.val
            .iter()
            .position(|v| *v == Val::Unknown)
            .map(|i| i as u32)
    }

    /// Reference propagation loop: full-scan passes to fixpoint.
    fn propagate_reference(&mut self) -> bool {
        loop {
            let before = self.trail.len();
            if !self.fitting_pass_reference() {
                return false;
            }
            if !self.card_pass_reference() {
                return false;
            }
            if self.trail.len() != before {
                continue; // re-run cheap passes before the closure
            }
            if !self.nogood_pass() {
                return false;
            }
            if self.trail.len() != before {
                continue;
            }
            if !self.unfounded_pass_reference() {
                return false;
            }
            if self.trail.len() == before {
                return true;
            }
        }
    }

    /// One pass of Fitting-style forward/backward rule propagation over
    /// every rule (the retained naive reference pass).
    fn fitting_pass_reference(&mut self) -> bool {
        for ri in 0..self.g.rules.len() {
            let (head, pos, neg) = {
                let r = &self.g.rules[ri];
                (r.head, r.pos.clone(), r.neg.clone())
            };
            let mut false_lits = 0usize;
            let mut unknown: Option<(AtomId, bool)> = None; // (atom, is_pos)
            let mut unknowns = 0usize;
            for &p in &pos {
                match self.val[p.index()] {
                    Val::False => false_lits += 1,
                    Val::Unknown => {
                        unknowns += 1;
                        unknown = Some((p, true));
                    }
                    Val::True => {}
                }
            }
            for &n in &neg {
                match self.val[n.index()] {
                    Val::True => false_lits += 1,
                    Val::Unknown => {
                        unknowns += 1;
                        unknown = Some((n, false));
                    }
                    Val::False => {}
                }
            }
            if false_lits > 0 {
                continue; // body dead: nothing to infer here
            }
            let body_sat = unknowns == 0;
            match head {
                GroundHead::Atom(h) => {
                    if body_sat {
                        if !self.set_ref(h, Val::True) {
                            return false;
                        }
                    } else if unknowns == 1 && self.val[h.index()] == Val::False {
                        let (a, is_pos) = unknown.expect("one unknown");
                        if !self.set_ref(a, if is_pos { Val::False } else { Val::True }) {
                            return false;
                        }
                    }
                }
                GroundHead::None => {
                    if body_sat {
                        return false; // violated constraint
                    }
                    if unknowns == 1 {
                        let (a, is_pos) = unknown.expect("one unknown");
                        if !self.set_ref(a, if is_pos { Val::False } else { Val::True }) {
                            return false;
                        }
                    }
                }
                GroundHead::Choice(_) => {}
            }
        }
        true
    }

    /// Propagate cardinality constraints (full scan).
    fn card_pass_reference(&mut self) -> bool {
        for ci in 0..self.g.cards.len() {
            let c = self.g.cards[ci].clone();
            let mut body_false = false;
            let mut body_unknowns = 0usize;
            let mut body_unknown: Option<(AtomId, bool)> = None;
            for &p in &c.pos {
                match self.val[p.index()] {
                    Val::False => body_false = true,
                    Val::Unknown => {
                        body_unknowns += 1;
                        body_unknown = Some((p, true));
                    }
                    Val::True => {}
                }
            }
            for &n in &c.neg {
                match self.val[n.index()] {
                    Val::True => body_false = true,
                    Val::Unknown => {
                        body_unknowns += 1;
                        body_unknown = Some((n, false));
                    }
                    Val::False => {}
                }
            }
            if body_false {
                continue;
            }
            let mut held = 0u32;
            let mut open: Vec<&crate::program::CardElement> = Vec::new();
            for e in &c.elements {
                let guard_false = e
                    .guard_pos
                    .iter()
                    .any(|&p| self.val[p.index()] == Val::False)
                    || e.guard_neg
                        .iter()
                        .any(|&n| self.val[n.index()] == Val::True);
                let guard_true = e
                    .guard_pos
                    .iter()
                    .all(|&p| self.val[p.index()] == Val::True)
                    && e.guard_neg
                        .iter()
                        .all(|&n| self.val[n.index()] == Val::False);
                match self.val[e.atom.index()] {
                    Val::True if guard_true => held += 1,
                    Val::False => {}
                    _ if guard_false => {}
                    _ => open.push(e),
                }
            }
            let max_possible = held + open.len() as u32;
            let violated_surely = held > c.upper || max_possible < c.lower;
            if body_unknowns == 0 {
                if violated_surely {
                    return false;
                }
                if held == c.upper {
                    // No further element may become held.
                    let forced: Vec<AtomId> = open
                        .iter()
                        .filter(|e| {
                            e.guard_pos
                                .iter()
                                .all(|&p| self.val[p.index()] == Val::True)
                                && e.guard_neg
                                    .iter()
                                    .all(|&n| self.val[n.index()] == Val::False)
                        })
                        .map(|e| e.atom)
                        .collect();
                    for a in forced {
                        if self.val[a.index()] == Val::Unknown && !self.set_ref(a, Val::False) {
                            return false;
                        }
                    }
                } else if max_possible == c.lower {
                    // Every open element must be held.
                    let forced: Vec<AtomId> = open
                        .iter()
                        .filter(|e| {
                            e.guard_pos
                                .iter()
                                .all(|&p| self.val[p.index()] == Val::True)
                                && e.guard_neg
                                    .iter()
                                    .all(|&n| self.val[n.index()] == Val::False)
                        })
                        .map(|e| e.atom)
                        .collect();
                    for a in forced {
                        if self.val[a.index()] == Val::Unknown && !self.set_ref(a, Val::True) {
                            return false;
                        }
                    }
                }
            } else if body_unknowns == 1 && violated_surely {
                // Bound already violated: body must be falsified.
                let (a, is_pos) = body_unknown.expect("one unknown");
                if !self.set_ref(a, if is_pos { Val::False } else { Val::True }) {
                    return false;
                }
            }
        }
        true
    }

    /// The retained full-scan unfounded pass: falsify atoms outside the
    /// can-be-true closure.
    fn unfounded_pass_reference(&mut self) -> bool {
        let n = self.g.atom_count();
        let mut in_closure = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for r in &self.g.rules {
                let h = match r.head {
                    GroundHead::Atom(h) | GroundHead::Choice(h) => h,
                    GroundHead::None => continue,
                };
                if in_closure[h.index()] || self.val[h.index()] == Val::False {
                    continue;
                }
                let body_possible = r
                    .pos
                    .iter()
                    .all(|&p| self.val[p.index()] != Val::False && in_closure[p.index()])
                    && r.neg.iter().all(|&q| self.val[q.index()] != Val::True);
                if body_possible {
                    in_closure[h.index()] = true;
                    changed = true;
                }
            }
        }
        for (i, reachable) in in_closure.iter().enumerate() {
            if !reachable {
                match self.val[i] {
                    Val::True => return false,
                    Val::Unknown => self.assign_ref(i as u32, Val::False),
                    Val::False => {}
                }
            }
        }
        true
    }
}
