//! Stable-model search: conflict-driven clause learning over the Clark
//! completion, model enumeration and branch-and-bound optimization.
//!
//! The default engine is a CDCL solver in the clasp tradition: the ground
//! program is translated once into *completion nogoods* (one body variable
//! per distinct rule body, support nogoods per atom), unit propagation runs
//! over two watched literals per nogood, conflicts are analyzed to the
//! first unique implication point (1UIP) producing asserting nogoods with
//! computed backjump levels, branching follows EVSIDS activity with phase
//! saving, and Luby-scheduled restarts with LBD-based learned-database
//! reduction keep the search and the clause store focused. Stability of
//! non-tight programs is enforced by an unfounded-set backstop at each
//! propagation fixpoint, and every complete assignment is still verified
//! with the independent [`check`] module before it is reported, so the
//! engine's soundness rests on the textbook definition rather than on the
//! propagation code.
//!
//! [`Solver::new_reference`] retains the original full-scan smodels-style
//! engine (Fitting passes, chronological backtracking) as the differential
//! testing oracle and the benchmark baseline.

mod cdcl;

pub use cdcl::LearnedState;
mod reference;

use std::collections::HashSet;

use crate::ast::Atom;
use crate::check;
use crate::error::AspError;
use crate::program::{AtomId, GroundHead, GroundProgram, MinimizeLit};

/// Truth value during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Val {
    Unknown,
    True,
    False,
}

/// An assumption literal: a ground atom fixed true or false for the
/// duration of one [`Solver::solve_with_assumptions`] call.
///
/// Assumptions are the multi-shot interface of the solver: a program is
/// grounded once with its scenario atoms left open (choice-supported, see
/// [`Grounder::assumable`](crate::ground::Grounder::assumable)), and each
/// query pins them at decision level 0 instead of re-grounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// The assumed atom.
    pub atom: AtomId,
    /// `true` to assume the atom holds, `false` to assume it does not.
    pub positive: bool,
}

impl Lit {
    /// Assume the atom true.
    #[must_use]
    pub fn pos(atom: AtomId) -> Self {
        Lit {
            atom,
            positive: true,
        }
    }

    /// Assume the atom false.
    #[must_use]
    pub fn neg(atom: AtomId) -> Self {
        Lit {
            atom,
            positive: false,
        }
    }
}

/// Options controlling enumeration and optimization.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum number of models to enumerate (0 = all).
    pub max_models: usize,
    /// Search budget: the sum of branching decisions **and conflicts** may
    /// not exceed this value; exceeding it aborts the call with
    /// [`AspError::SolveBudget`] carrying the partial statistics. Counting
    /// conflicts keeps the budget meaningful for CDCL, where a run can be
    /// conflict-bound with few decisions (restarts replay decisions
    /// cheaply, conflicts are the real work).
    pub max_decisions: u64,
    /// Emit a machine-checkable [`ProofLog`](crate::proof::ProofLog) for
    /// this call: every inference is appended to the solver's proof, and
    /// the call's verdict gets a terminal model / unsat step tagged with
    /// its assumptions. The first certified call drops any retained
    /// learned nogoods (they predate the log and could not be justified).
    /// Ignored by the reference engine. Retrieve the log with
    /// [`Solver::proof`] or [`Solver::take_proof`] and validate it with
    /// [`check_proof`](crate::check::check_proof).
    pub certify: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_models: 0,
            max_decisions: 50_000_000,
            certify: false,
        }
    }
}

/// One answer set.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// All true atoms (sorted by display form).
    pub atoms: Vec<Atom>,
    /// Atoms under the `#show` projection (sorted by display form).
    pub shown: Vec<Atom>,
    /// Objective values per `#minimize` priority, higher priority first.
    pub cost: Vec<(i64, i64)>,
    ids: HashSet<AtomId>,
    /// Display forms of `atoms`, same (sorted) order — precomputed once so
    /// membership probes don't re-render every atom per comparison.
    keys: Vec<String>,
}

impl Model {
    /// True if the model contains the given atom.
    #[must_use]
    pub fn contains(&self, atom: &Atom) -> bool {
        let needle = atom.to_string();
        self.keys
            .binary_search_by(|k| k.as_str().cmp(&needle))
            .is_ok()
    }

    /// True if the model contains an atom whose display form equals `s`
    /// (whitespace-insensitive, e.g. `"p(a, b)"` matches `p(a,b)`).
    #[must_use]
    pub fn contains_str(&self, s: &str) -> bool {
        let needle: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        self.keys
            .binary_search_by(|k| k.as_str().cmp(&needle))
            .is_ok()
    }

    /// All true atoms of a predicate.
    #[must_use]
    pub fn atoms_of(&self, pred: &str) -> Vec<&Atom> {
        self.atoms.iter().filter(|a| a.pred == pred).collect()
    }

    /// The interned ids of the true atoms (solver-internal identities).
    #[must_use]
    pub fn ids(&self) -> &HashSet<AtomId> {
        &self.ids
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for a in &self.shown {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

/// Result of an enumeration run.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The models found (all, up to `max_models`).
    pub models: Vec<Model>,
    /// True if the search space was exhausted (every model was found).
    pub exhausted: bool,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of propagated (non-decision and decision) assignments.
    pub propagations: u64,
    /// Conflicts hit during this call (propagation failures plus complete
    /// assignments that failed the stability check).
    pub conflicts: u64,
    /// Restarts performed during this call (always 0 on the reference
    /// engine, which never restarts).
    pub restarts: u64,
}

/// A stable-model solver over one ground program.
///
/// [`Solver::new`] builds the CDCL engine (watched-literal propagation over
/// completion nogoods, 1UIP learning, EVSIDS branching with phase saving,
/// Luby restarts, LBD-managed learned database); [`Solver::new_reference`]
/// retains the original full-scan chronological engine for differential
/// testing and as the benchmark baseline.
#[derive(Debug)]
pub struct Solver<'a> {
    g: &'a GroundProgram,
    /// Use the naive full-scan chronological engine.
    reference: bool,
    /// Unique choice atoms in first-occurrence rule order: the preferred
    /// branching candidates (the decision variables of the encodings).
    choice_atoms: Vec<u32>,
    /// Atom-level tightness certificate of the ground program (positive
    /// dependency graph acyclic — see
    /// [`analysis::ground_tight`](crate::analysis::ground_tight)).
    tight: bool,
    /// Runtime switch for the tight fast path; defaults to on and only
    /// matters when the certificate holds.
    tight_mode: bool,
    /// Display form of every atom, rendered once at construction; model
    /// building clones these instead of re-rendering per model.
    display: Vec<String>,
    /// All atom ids ordered by display form, so each model's sorted atom
    /// list is a filtered scan instead of a per-model sort.
    sorted_ids: Vec<u32>,
    /// Per atom: passes the `#show` projection.
    shown_flags: Vec<bool>,
    /// The current call's assumption literals `(atom, assumed value)`,
    /// assigned at decision level 0 and embedded in every learned nogood
    /// that depends on them, so the nogood stays valid under *different*
    /// assumptions later.
    assumptions: Vec<(u32, Val)>,
    decision_count: u64,
    propagation_count: u64,
    /// Conflicts hit during the current call.
    conflict_count: u64,
    /// Conflicts hit over the solver's whole lifetime — unlike
    /// `conflict_count` this survives the per-call reset, so a caller
    /// streaming many assumption queries can report aggregate statistics.
    lifetime_conflicts: u64,
    /// Assignments forced by learned nogoods during the current call.
    nogood_force_count: u64,
    /// Branches abandoned by the branch-and-bound prune hook (current call).
    bound_prune_count: u64,
    /// Restarts performed during the current call.
    restart_count: u64,
    /// Base restart interval in conflicts; the Luby sequence scales it.
    restart_interval: u64,
    /// The well-founded model of the ground program, computed once at
    /// construction (never on the reference engine, which stays a pure
    /// search oracle). Sound for every solve call: its verdicts hold in
    /// every stable model regardless of assumptions.
    wfm: Option<crate::analysis::wfm::WfmResult>,
    /// The WFM verdicts as level-0 assignments, pre-flattened so each
    /// solve call replays them without re-walking the truth vector. When
    /// the WFM is total the seeds decide every atom and the search
    /// returns without a single decision.
    wfm_seeds: Vec<(u32, Val)>,
    /// Reference-engine assignment (empty on the CDCL engine).
    val: Vec<Val>,
    /// Reference-engine trail.
    trail: Vec<u32>,
    /// Reference engine: (atom, tried_both) per decision.
    decisions: Vec<(u32, bool)>,
    /// Reference engine: trail length at each decision.
    trail_lim: Vec<usize>,
    /// Reference engine: learned conflict nogoods (sets of `(atom, value)`
    /// literals no stable model satisfies simultaneously), retained across
    /// solve calls and deduplicated by fingerprint.
    nogoods: Vec<Vec<(u32, Val)>>,
    /// Fingerprint dedup index over `nogoods` — hashes replace the former
    /// full-vector `HashSet<Vec<(u32, Val)>>` store.
    nogood_fps: HashSet<u64>,
    /// The CDCL engine state (empty shell on the reference engine).
    cdcl: cdcl::Cdcl,
    /// The active proof log (certified solving only, CDCL engine only).
    /// While present, every engine inference is appended — including those
    /// of interleaved uncertified calls, so learned-nogood retention
    /// across a multi-shot stream stays checkable.
    proof: Option<crate::proof::ProofLog>,
    /// The current call claims its verdicts in the proof (set by
    /// [`SolveOptions::certify`]; terminal steps are gated on it).
    certify_call: bool,
    /// Certified calls begun since the proof was (re)initialized.
    call_seq: u32,
}

impl<'a> Solver<'a> {
    /// Create a CDCL solver for a ground program.
    #[must_use]
    pub fn new(program: &'a GroundProgram) -> Self {
        Solver::build(program, false)
    }

    /// A solver using the retained naive full-scan chronological engine.
    ///
    /// Semantically identical to [`Solver::new`]; kept as the differential
    /// testing oracle and the `cpsrisk bench` baseline engine.
    #[must_use]
    pub fn new_reference(program: &'a GroundProgram) -> Self {
        Solver::build(program, true)
    }

    fn build(program: &'a GroundProgram, reference: bool) -> Self {
        let n_atoms = program.atom_count();
        let mut choice_atoms = Vec::new();
        let mut choice_seen = vec![false; n_atoms];
        for r in &program.rules {
            if let GroundHead::Choice(h) = r.head {
                if !choice_seen[h.index()] {
                    choice_seen[h.index()] = true;
                    choice_atoms.push(h.0);
                }
            }
        }
        let wfm = if reference {
            None
        } else {
            Some(crate::analysis::well_founded(program))
        };
        let display: Vec<String> = program.atoms().map(|(_, a)| a.to_string()).collect();
        let mut sorted_ids: Vec<u32> = (0..n_atoms as u32).collect();
        sorted_ids.sort_by(|&a, &b| display[a as usize].cmp(&display[b as usize]));
        let shown_flags: Vec<bool> = (0..n_atoms as u32)
            .map(|i| program.shown(AtomId(i)))
            .collect();
        Solver {
            g: program,
            reference,
            tight: !reference && crate::analysis::ground_tight(program),
            tight_mode: true,
            choice_atoms,
            display,
            sorted_ids,
            shown_flags,
            assumptions: Vec::new(),
            decision_count: 0,
            propagation_count: 0,
            conflict_count: 0,
            lifetime_conflicts: 0,
            nogood_force_count: 0,
            bound_prune_count: 0,
            restart_count: 0,
            restart_interval: 100,
            wfm_seeds: match &wfm {
                Some(w) => w
                    .true_atoms()
                    .map(|id| (id.0, Val::True))
                    .chain(w.false_atoms().map(|id| (id.0, Val::False)))
                    .collect(),
                None => Vec::new(),
            },
            wfm,
            val: vec![Val::Unknown; if reference { n_atoms } else { 0 }],
            trail: Vec::new(),
            decisions: Vec::new(),
            trail_lim: Vec::new(),
            nogoods: Vec::new(),
            nogood_fps: HashSet::new(),
            cdcl: if reference {
                cdcl::Cdcl::empty()
            } else {
                cdcl::Cdcl::build(program)
            },
            proof: None,
            certify_call: false,
            call_seq: 0,
        }
    }

    /// Append a step to the active proof log, if any.
    pub(crate) fn plog(&mut self, step: crate::proof::ProofStep) {
        if let Some(p) = self.proof.as_mut() {
            p.push(step);
        }
    }

    /// The proof log accumulated by certified calls, if any.
    #[must_use]
    pub fn proof(&self) -> Option<&crate::proof::ProofLog> {
        self.proof.as_ref()
    }

    /// Detach and return the accumulated proof log. The next certified
    /// call starts a fresh log (dropping retained learned nogoods again,
    /// since the new log could not justify them).
    pub fn take_proof(&mut self) -> Option<crate::proof::ProofLog> {
        self.certify_call = false;
        self.proof.take()
    }

    /// Number of branching decisions made so far.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decision_count
    }

    /// Number of assignments propagated so far (including decisions).
    #[must_use]
    pub fn propagations(&self) -> u64 {
        self.propagation_count
    }

    /// Number of learned conflict nogoods currently retained.
    #[must_use]
    pub fn learned_nogoods(&self) -> usize {
        if self.reference {
            self.nogoods.len()
        } else {
            self.cdcl.learned_count()
        }
    }

    /// Conflicts hit over the solver's whole lifetime (across every
    /// assumption call since construction).
    #[must_use]
    pub fn total_conflicts(&self) -> u64 {
        self.lifetime_conflicts
    }

    /// Assignments forced by learned nogoods during the last call.
    #[must_use]
    pub fn nogood_propagations(&self) -> u64 {
        self.nogood_force_count
    }

    /// Branches abandoned by branch-and-bound pruning during the last call.
    #[must_use]
    pub fn bound_prunes(&self) -> u64 {
        self.bound_prune_count
    }

    /// Restarts performed during the last call (0 on the reference engine).
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restart_count
    }

    /// Set the base restart interval in conflicts (default 100). The k-th
    /// restart fires after `luby(k) * interval` conflicts since the last
    /// one. Restarts are disabled during model enumeration once the first
    /// model is found (exhaustiveness relies on the flip trail) and on the
    /// reference engine.
    pub fn set_restart_interval(&mut self, conflicts: u64) {
        self.restart_interval = conflicts.max(1);
    }

    /// Whether this solver holds a tightness certificate for its ground
    /// program: the atom-level positive dependency graph is acyclic, so
    /// supported models are stable models (Fages' theorem) and the
    /// unfounded-set backstop can be skipped — the completion nogoods
    /// already enforce supportedness. Always `false` on the reference
    /// engine (it never computes the certificate).
    #[must_use]
    pub fn tight(&self) -> bool {
        self.tight
    }

    /// Enable or disable the tight-program fast path (default: enabled).
    ///
    /// Only affects programs whose certificate holds — non-tight programs
    /// always run the unfounded-set backstop. Disabling it on a tight
    /// program is sound (the backstop subsumes the certificate); the
    /// switch exists so benchmarks can measure the fast path against the
    /// closure on identical inputs. Takes effect at the next solve call.
    pub fn set_tight_mode(&mut self, on: bool) {
        self.tight_mode = on;
    }

    fn use_tight(&self) -> bool {
        self.tight && self.tight_mode && !self.reference
    }

    /// Drop every retained learned nogood (e.g. to measure their effect).
    pub fn clear_learned(&mut self) {
        self.nogoods.clear();
        self.nogood_fps.clear();
        if !self.reference {
            self.log_learned_clear();
            self.cdcl.clear_learned();
        }
    }

    /// The well-founded model computed at construction, or `None` on the
    /// reference engine. Its true/false verdicts hold in every stable
    /// model, so callers can answer cautious/brave membership for decided
    /// atoms without searching.
    #[must_use]
    pub fn wfm(&self) -> Option<&crate::analysis::wfm::WfmResult> {
        self.wfm.as_ref()
    }

    /// Per-call setup shared by every solve entry point: reset, pin the
    /// assumptions at level 0, then seed the WFM backbone and the static
    /// units. False means the search space is empty before the first
    /// decision.
    fn prepare(&mut self, assumptions: &[Lit]) -> bool {
        self.decision_count = 0;
        self.propagation_count = 0;
        self.conflict_count = 0;
        self.nogood_force_count = 0;
        self.bound_prune_count = 0;
        self.restart_count = 0;
        self.assumptions.clear();
        if self.reference {
            self.prepare_reference(assumptions)
        } else {
            self.prepare_cdcl(assumptions)
        }
    }

    /// The current truth value of an atom under the active engine.
    fn value(&self, atom: AtomId) -> Val {
        if self.reference {
            self.val[atom.index()]
        } else {
            self.cdcl.val[atom.index()]
        }
    }

    /// Core search dispatch. `on_model` returns `false` to stop the search
    /// early; `prune` returning `true` abandons the current branch (used
    /// by branch-and-bound). Returns whether the search space was
    /// exhausted.
    fn search(
        &mut self,
        opts: &SolveOptions,
        on_model: &mut dyn FnMut(Model) -> bool,
        prune: &mut dyn FnMut(&Self) -> bool,
    ) -> Result<bool, AspError> {
        if self.reference {
            self.search_reference(opts, on_model, prune)
        } else {
            self.search_cdcl(opts, on_model, prune)
        }
    }

    /// Enumerate answer sets (ignoring `#minimize`).
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the search budget is exceeded.
    pub fn enumerate(&mut self, opts: &SolveOptions) -> Result<SolveResult, AspError> {
        self.solve_with_assumptions(&[], opts)
    }

    /// Enumerate answer sets with the given atoms fixed at decision level 0.
    ///
    /// The solver is fully reset between calls (trail, decisions, counters),
    /// so one instance answers any number of assumption sets over the same
    /// ground program; learned conflict nogoods are **retained** across
    /// calls and keep pruning later queries. Contradictory assumptions (or
    /// assumptions the program refutes outright) yield zero models with
    /// `exhausted = true`.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the search budget is exceeded.
    pub fn solve_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        opts: &SolveOptions,
    ) -> Result<SolveResult, AspError> {
        if opts.certify {
            self.begin_certified_call(assumptions);
        } else {
            self.certify_call = false;
        }
        let mut models = Vec::new();
        let exhausted = if self.prepare(assumptions) {
            self.search(
                opts,
                &mut |m| {
                    models.push(m);
                    opts.max_models == 0 || models.len() < opts.max_models
                },
                &mut |_| false,
            )?
        } else {
            true // assumptions contradict each other: empty search space
        };
        if self.certify_call && exhausted && models.is_empty() {
            self.plog(crate::proof::ProofStep::Unsat);
        }
        Ok(SolveResult {
            models,
            exhausted,
            decisions: self.decision_count,
            propagations: self.propagation_count,
            conflicts: self.conflict_count,
            restarts: self.restart_count,
        })
    }

    /// Find one optimal model w.r.t. the program's `#minimize` statements
    /// by branch-and-bound: partial assignments whose highest-priority cost
    /// lower bound cannot beat the incumbent are pruned. Returns `None`
    /// for inconsistent programs. With no `#minimize` statements this
    /// returns the first model found.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the search budget is exceeded.
    pub fn optimize(&mut self, opts: &SolveOptions) -> Result<Option<Model>, AspError> {
        self.optimize_with_assumptions(&[], opts)
    }

    /// [`Solver::optimize`] with atoms fixed at decision level 0; see
    /// [`Solver::solve_with_assumptions`] for the reuse contract. Returns
    /// `None` when the assumptions are contradictory or the program has no
    /// stable model under them.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the search budget is exceeded.
    pub fn optimize_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        opts: &SolveOptions,
    ) -> Result<Option<Model>, AspError> {
        if opts.certify {
            self.begin_certified_call(assumptions);
        } else {
            self.certify_call = false;
        }
        if !self.prepare(assumptions) {
            if self.certify_call {
                self.plog(crate::proof::ProofStep::Unsat);
            }
            return Ok(None);
        }
        if self.g.minimize.is_empty() {
            let mut found = None;
            self.search(
                opts,
                &mut |m| {
                    found = Some(m);
                    false
                },
                &mut |_| false,
            )?;
            if self.certify_call && found.is_none() {
                self.plog(crate::proof::ProofStep::Unsat);
            }
            return Ok(found);
        }
        // Lower bounds are only sound for pruning at the highest priority;
        // with several priorities we prune on strict first-component
        // dominance only.
        let single_priority = self.g.minimize.len() == 1;
        let first_lits: Vec<MinimizeLit> = self.g.minimize[0].1.clone();
        let mut best: Option<Model> = None;
        // Shared between the model callback (writer) and the prune hook
        // (reader) without aliasing conflicts.
        let incumbent = std::cell::Cell::new(None::<i64>);
        self.search(
            opts,
            &mut |m| {
                let better = match &best {
                    None => true,
                    Some(b) => cost_vec(&m) < cost_vec(b),
                };
                if better {
                    incumbent.set(m.cost.first().map(|(_, c)| *c));
                    best = Some(m);
                }
                true
            },
            &mut |solver| {
                let Some(bound) = incumbent.get() else {
                    return false;
                };
                let lb = solver.first_priority_lower_bound(&first_lits);
                lb > bound || (single_priority && lb >= bound)
            },
        )?;
        if self.certify_call && best.is_none() {
            self.plog(crate::proof::ProofStep::Unsat);
        }
        Ok(best)
    }

    /// Lower bound of the highest-priority objective under the current
    /// partial assignment: definitely-satisfied elements count fully;
    /// still-open negative-weight elements are assumed to fire.
    fn first_priority_lower_bound(&self, lits: &[MinimizeLit]) -> i64 {
        use std::collections::HashMap;
        // Key -> (definite, open_with_negative_weight, weight)
        let mut per_key: HashMap<(i64, &[crate::ast::Term]), (bool, bool)> = HashMap::new();
        for l in lits {
            let impossible = l.pos.iter().any(|&p| self.value(p) == Val::False)
                || l.neg.iter().any(|&q| self.value(q) == Val::True);
            if impossible {
                continue;
            }
            let definite = l.pos.iter().all(|&p| self.value(p) == Val::True)
                && l.neg.iter().all(|&q| self.value(q) == Val::False);
            let entry = per_key
                .entry((l.weight, l.tuple.as_slice()))
                .or_insert((false, false));
            entry.0 |= definite;
            entry.1 |= !definite && l.weight < 0;
        }
        per_key
            .into_iter()
            .map(|((w, _), (definite, open_neg))| if definite || open_neg { w } else { 0 })
            .sum()
    }

    /// Brave consequences: atoms true in **some** answer set.
    ///
    /// Maintains a running union over the enumeration, marking membership
    /// by [`AtomId`] instead of materializing models and stringifying
    /// atoms. WFM-false atoms bound the union from above: once every atom
    /// the WFM does not refute has appeared, enumeration stops early.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the search budget is exceeded.
    pub fn brave(&mut self, opts: &SolveOptions) -> Result<Vec<Atom>, AspError> {
        self.certify_call = false; // brave reasoning is never certified
        if !self.prepare(&[]) {
            return Ok(Vec::new());
        }
        let n = self.g.atom_count();
        let cap = n - self.wfm.as_ref().map_or(0, |w| w.false_count);
        let mut in_some = vec![false; n];
        let mut marked = 0usize;
        let mut models_seen = 0usize;
        self.search(
            opts,
            &mut |m| {
                models_seen += 1;
                for id in m.ids() {
                    if !in_some[id.index()] {
                        in_some[id.index()] = true;
                        marked += 1;
                    }
                }
                marked < cap && (opts.max_models == 0 || models_seen < opts.max_models)
            },
            &mut |_| false,
        )?;
        Ok(self.collect_sorted(&in_some))
    }

    /// Cautious consequences: atoms true in **every** answer set
    /// (empty if the program is inconsistent).
    ///
    /// Maintains a running intersection over the enumeration (by
    /// [`AtomId`], no per-model materialization) and stops as soon as it
    /// can no longer shrink: the intersection never drops below the WFM
    /// backbone, so reaching it — the empty set on programs with no
    /// backbone — ends the search early.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the search budget is exceeded.
    pub fn cautious(&mut self, opts: &SolveOptions) -> Result<Vec<Atom>, AspError> {
        self.certify_call = false; // cautious reasoning is never certified
        if !self.prepare(&[]) {
            return Ok(Vec::new());
        }
        let floor = self.wfm.as_ref().map_or(0, |w| w.true_count);
        let mut candidates: Option<Vec<AtomId>> = None;
        let mut models_seen = 0usize;
        self.search(
            opts,
            &mut |m| {
                models_seen += 1;
                match &mut candidates {
                    None => candidates = Some(m.ids().iter().copied().collect()),
                    Some(c) => c.retain(|id| m.ids().contains(id)),
                }
                candidates.as_ref().expect("just set").len() > floor
                    && (opts.max_models == 0 || models_seen < opts.max_models)
            },
            &mut |_| false,
        )?;
        let mut in_all = vec![false; self.g.atom_count()];
        for id in candidates.unwrap_or_default() {
            in_all[id.index()] = true;
        }
        Ok(self.collect_sorted(&in_all))
    }

    /// The marked atoms in display order (the order models print in).
    fn collect_sorted(&self, marked: &[bool]) -> Vec<Atom> {
        self.sorted_ids
            .iter()
            .filter(|&&i| marked[i as usize])
            .map(|&i| self.g.atom(AtomId(i)).clone())
            .collect()
    }

    /// The set of true atoms of the (complete) current assignment.
    fn candidate_set(&self) -> HashSet<AtomId> {
        let vals = if self.reference {
            &self.val
        } else {
            &self.cdcl.val
        };
        vals[..self.g.atom_count()]
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == Val::True)
            .map(|(i, _)| AtomId(i as u32))
            .collect()
    }

    /// Verify a complete assignment with the independent stability check
    /// and build the [`Model`] when it passes.
    fn check_candidate(&self) -> Option<Model> {
        let candidate = self.candidate_set();
        if check::is_stable_model(self.g, &candidate) {
            Some(self.build_model(candidate))
        } else {
            None
        }
    }

    fn build_model(&self, ids: HashSet<AtomId>) -> Model {
        // Walk the precomputed display order, so the member atoms, their
        // display keys (the binary-search index of `Model::contains`) and
        // the shown projection all come out sorted with no per-model sort
        // or re-rendering.
        let mut keys = Vec::with_capacity(ids.len());
        let mut atoms = Vec::with_capacity(ids.len());
        let mut shown = Vec::new();
        for &ai in &self.sorted_ids {
            let id = AtomId(ai);
            if !ids.contains(&id) {
                continue;
            }
            keys.push(self.display[ai as usize].clone());
            atoms.push(self.g.atom(id).clone());
            if self.shown_flags[ai as usize] {
                shown.push(self.g.atom(id).clone());
            }
        }
        let cost = self
            .g
            .minimize
            .iter()
            .map(|(prio, lits)| {
                // Set semantics: identical (weight, tuple) keys count once.
                let mut counted: HashSet<(i64, &[crate::ast::Term])> = HashSet::new();
                let mut total = 0i64;
                for l in lits {
                    let holds = l.pos.iter().all(|p| ids.contains(p))
                        && l.neg.iter().all(|q| !ids.contains(q));
                    if holds && counted.insert((l.weight, l.tuple.as_slice())) {
                        total += l.weight;
                    }
                }
                (*prio, total)
            })
            .collect();
        Model {
            atoms,
            shown,
            cost,
            ids,
            keys,
        }
    }

    /// Budget check shared by both engines: decisions **plus conflicts**
    /// against `max_decisions`, reporting the partial statistics on abort.
    fn check_budget(&self, opts: &SolveOptions) -> Result<(), AspError> {
        if self.decision_count + self.conflict_count > opts.max_decisions {
            return Err(AspError::SolveBudget {
                limit: opts.max_decisions,
                decisions: self.decision_count,
                conflicts: self.conflict_count,
            });
        }
        Ok(())
    }
}

/// Lexicographic cost vector (higher priorities first) for comparisons.
fn cost_vec(m: &Model) -> Vec<i64> {
    m.cost.iter().map(|(_, c)| *c).collect()
}

/// Fingerprint of a reference-engine nogood for cheap dedup (replaces
/// hashing the full sorted vector into a `HashSet<Vec<_>>`).
fn fingerprint(ng: &[(u32, Val)]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &(a, v) in ng {
        (a, v == Val::True).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests;
