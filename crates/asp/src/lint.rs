//! Static analysis of ASP programs: span-carrying lints `A000`–`A014`.
//!
//! The pass runs over a [`SpannedProgram`] (parsed leniently, so unsafe
//! rules survive into the AST) plus the predicate dependency graph, and
//! reports [`Diagnostic`]s instead of aborting at the first problem:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | A000 | error    | syntax error (the program does not parse) |
//! | A001 | warning  | predicate used positively (or `#show`n) but never defined — with a did-you-mean hint |
//! | A002 | warning  | predicate used with inconsistent arities |
//! | A003 | error    | unsafe variable (not bound by any positive body literal) |
//! | A004 | warning  | constraint body references an undefined predicate: it can never fire |
//! | A005 | warning  | derived predicate unreachable from every `#show` projection and constraint |
//! | A006 | warning  | cyclic negation (non-stratified loop through `not`) |
//! | A007 | info     | duplicate rule |
//! | A008 | info     | `not p` over a never-defined `p` is always true |
//! | A009 | warning  | predicted grounding explosion (estimated instances above [`EXPLOSION_THRESHOLD`]) |
//! | A010 | warning  | predicate defined by rules but never derivable (its size bound is zero) |
//! | A011 | info     | non-tight loop through negation: recursion and `not` in one SCC |
//! | A012 | warning  | constraint statically violated: the [well-founded model](crate::analysis::wfm) already satisfies its body, so no answer set exists |
//! | A013 | info     | choice predicate statically irrelevant: toggling it cannot change any shown atom, constraint, or objective |
//! | A014 | warning  | predicate constrained but never derivable: every ground instance is false in the well-founded model |
//!
//! A program is *lint-clean* when it produces no errors and no warnings;
//! info-level findings are advisory.

use crate::analysis::deps::{analyze_dependencies, dependency_edges, tarjan_scc};
use crate::analysis::simplify::simplify_with;
use crate::analysis::size::{predict_sizes, SizePrediction, EXPLOSION_THRESHOLD};
use crate::analysis::wfm::{well_founded, well_founded_with, WfmResult};
use crate::ast::{Head, Literal, Program, Rule, Statement};
use crate::diag::Diagnostic;
use crate::error::AspError;
use crate::ground::Grounder;
use crate::parser::{parse_program_spanned, OccRole, SpannedProgram};
use crate::program::{AtomId, GroundHead, GroundProgram};
use crate::solve::Lit;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Lint a program from source text.
///
/// Syntax errors become a single `A000` diagnostic; otherwise the full
/// pass of [`lint_program`] runs.
#[must_use]
pub fn lint_source(src: &str) -> Vec<Diagnostic> {
    match parse_program_spanned(src) {
        Ok(sp) => lint_program(&sp),
        Err(AspError::Parse(msg)) => vec![Diagnostic::error("A000", msg)],
        Err(other) => vec![Diagnostic::error("A000", other.to_string())],
    }
}

/// Run every lint over a parsed, span-annotated program.
#[must_use]
pub fn lint_program(sp: &SpannedProgram) -> Vec<Diagnostic> {
    let facts = PredFacts::collect(sp);
    let mut diags = Vec::new();
    undefined_predicates(sp, &facts, &mut diags); // A001, A004, A008
    arity_mismatches(sp, &facts, &mut diags); // A002
    unsafe_rules(sp, &mut diags); // A003
    unreachable_predicates(sp, &facts, &mut diags); // A005
    negation_cycles(sp, &mut diags); // A006
    duplicate_rules(sp, &mut diags); // A007
    let prediction = predict_sizes(&sp.program);
    let never_derivable = grounding_size_lints(sp, &facts, &prediction, &mut diags); // A009, A010
    non_tight_loops(sp, &mut diags); // A011
    wfm_lints(sp, &facts, &prediction, &never_derivable, &mut diags); // A012-A014
    diags.sort_by_key(|d| {
        (
            d.span
                .map_or((usize::MAX, usize::MAX), |s| (s.offset, s.len)),
            d.code.clone(),
        )
    });
    diags
}

/// Aggregated per-predicate information derived from the occurrence table.
struct PredFacts {
    /// Names with at least one defining (head / choice-element) occurrence.
    defined: BTreeSet<String>,
    /// Names defined *only* by facts (ground rules with empty bodies) —
    /// treated as model inputs and exempt from reachability lints.
    fact_only: BTreeSet<String>,
}

impl PredFacts {
    fn collect(sp: &SpannedProgram) -> Self {
        let mut defined = BTreeSet::new();
        let mut has_rule_def = BTreeSet::new();
        for (idx, stmt) in sp.program.statements.iter().enumerate() {
            let Statement::Rule(rule) = stmt else {
                continue;
            };
            match &rule.head {
                Head::Atom(a) => {
                    defined.insert(a.pred.clone());
                    if !rule.body.is_empty() {
                        has_rule_def.insert(a.pred.clone());
                    }
                }
                Head::Choice { elements, .. } => {
                    for e in elements {
                        defined.insert(e.atom.pred.clone());
                        // A choice head derives its atoms even from an
                        // empty body: never fact-only.
                        has_rule_def.insert(e.atom.pred.clone());
                    }
                }
                Head::None => {}
            }
            let _ = idx;
        }
        let fact_only = defined.difference(&has_rule_def).cloned().collect();
        PredFacts { defined, fact_only }
    }
}

/// A001 (positive use / `#show` of an undefined predicate), A004 (the same
/// inside a constraint body: the constraint can never fire), A008
/// (negation-only use of an undefined predicate is vacuously true).
fn undefined_predicates(sp: &SpannedProgram, facts: &PredFacts, diags: &mut Vec<Diagnostic>) {
    let mut neg_only_reported: BTreeSet<&str> = BTreeSet::new();
    for occ in &sp.occurrences {
        if occ.role == OccRole::Def || facts.defined.contains(&occ.pred) {
            continue;
        }
        let suggestion = did_you_mean(&occ.pred, &facts.defined);
        match occ.role {
            OccRole::Pos if in_constraint(&sp.program, occ.stmt) => {
                let mut d = Diagnostic::warning(
                    "A004",
                    format!(
                        "constraint can never fire: predicate `{}/{}` is never defined",
                        occ.pred, occ.arity
                    ),
                )
                .with_span(occ.span);
                if let Some(s) = suggestion {
                    d = d.with_suggestion(s);
                }
                diags.push(d);
            }
            OccRole::Pos | OccRole::Show => {
                let mut d = Diagnostic::warning(
                    "A001",
                    format!(
                        "predicate `{}/{}` is used but never defined",
                        occ.pred, occ.arity
                    ),
                )
                .with_span(occ.span);
                if let Some(s) = suggestion {
                    d = d.with_suggestion(s);
                }
                diags.push(d);
            }
            OccRole::Neg => {
                // Only when the predicate is used *exclusively* under
                // negation (otherwise the positive-use warning covers it),
                // and once per predicate.
                let positively_used = sp
                    .occurrences
                    .iter()
                    .any(|o| o.pred == occ.pred && matches!(o.role, OccRole::Pos | OccRole::Show));
                if positively_used || !neg_only_reported.insert(&occ.pred) {
                    continue;
                }
                let mut d = Diagnostic::info(
                    "A008",
                    format!(
                        "`not {}` is always true: predicate `{}/{}` is never defined",
                        occ.pred, occ.pred, occ.arity
                    ),
                )
                .with_span(occ.span);
                if let Some(s) = suggestion {
                    d = d.with_suggestion(s);
                }
                diags.push(d);
            }
            OccRole::Def => unreachable!("filtered above"),
        }
    }
}

/// A002: the same predicate name used with different arities.
fn arity_mismatches(sp: &SpannedProgram, _facts: &PredFacts, diags: &mut Vec<Diagnostic>) {
    let mut arities: BTreeMap<&str, BTreeMap<usize, usize>> = BTreeMap::new();
    for occ in &sp.occurrences {
        *arities
            .entry(&occ.pred)
            .or_default()
            .entry(occ.arity)
            .or_insert(0) += 1;
    }
    for (pred, counts) in arities {
        if counts.len() < 2 {
            continue;
        }
        // Majority arity; ties go to whichever arity appears first in the
        // source (typically the definition).
        let first_use = |arity: usize| {
            sp.occurrences
                .iter()
                .position(|o| o.pred == pred && o.arity == arity)
                .unwrap_or(usize::MAX)
        };
        let majority = counts
            .iter()
            .max_by_key(|(arity, n)| (**n, usize::MAX - first_use(**arity)))
            .map(|(a, _)| *a)
            .unwrap_or(0);
        let listed: Vec<String> = counts.keys().map(ToString::to_string).collect();
        if let Some(occ) = sp
            .occurrences
            .iter()
            .find(|o| o.pred == pred && o.arity != majority)
        {
            diags.push(
                Diagnostic::warning(
                    "A002",
                    format!(
                        "predicate `{pred}` is used with inconsistent arities ({})",
                        listed.join(", ")
                    ),
                )
                .with_span(occ.span)
                .with_suggestion(format!("other occurrences use `{pred}/{majority}`")),
            );
        }
    }
}

/// A003: unsafe variables, reported per rule with the rule's span.
fn unsafe_rules(sp: &SpannedProgram, diags: &mut Vec<Diagnostic>) {
    for (idx, stmt) in sp.program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        if let Err(AspError::UnsafeRule { var, .. }) = rule.check_safety() {
            let mut d = Diagnostic::error(
                "A003",
                format!("unsafe variable `{var}`: not bound by any positive body literal"),
            );
            if let Some(span) = sp.statement_spans.get(idx) {
                d = d.with_span(*span);
            }
            diags.push(d);
        }
    }
}

/// A005: derived predicates unreachable from every `#show` projection,
/// constraint, and `#minimize` objective. Skipped entirely for programs
/// without `#show` (nothing declares an output vocabulary to be reachable
/// from); fact-only predicates are model inputs and exempt.
fn unreachable_predicates(sp: &SpannedProgram, facts: &PredFacts, diags: &mut Vec<Diagnostic>) {
    let has_show = sp
        .program
        .statements
        .iter()
        .any(|s| matches!(s, Statement::Show { .. }));
    if !has_show {
        return;
    }
    // Roots: shown predicates, constraint bodies, minimize conditions.
    let mut relevant: BTreeSet<&str> = BTreeSet::new();
    for stmt in &sp.program.statements {
        match stmt {
            Statement::Show { pred, .. } => {
                relevant.insert(pred);
            }
            Statement::Rule(Rule {
                head: Head::None,
                body,
            }) => {
                for lit in body {
                    if let Some(a) = lit.as_pos() {
                        relevant.insert(&a.pred);
                    } else if let Literal::Neg(a) = lit {
                        relevant.insert(&a.pred);
                    }
                }
            }
            Statement::Minimize { elements, .. } => {
                for e in elements {
                    for lit in &e.condition {
                        match lit {
                            Literal::Pos(a) | Literal::Neg(a) => {
                                relevant.insert(&a.pred);
                            }
                            Literal::Cmp(..) => {}
                        }
                    }
                }
            }
            Statement::Rule(_) => {}
        }
    }
    // Closure: whatever feeds a relevant head is relevant too.
    let deps = dependency_edges(&sp.program);
    loop {
        let mut grew = false;
        for (head, body_pred, _) in &deps {
            if relevant.contains(head.as_str()) && relevant.insert(body_pred) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    // Report each derived-but-irrelevant predicate at its first definition.
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for (idx, stmt) in sp.program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        let heads: Vec<&str> = match &rule.head {
            Head::Atom(a) => vec![&a.pred],
            Head::Choice { elements, .. } => {
                elements.iter().map(|e| e.atom.pred.as_str()).collect()
            }
            Head::None => Vec::new(),
        };
        for pred in heads {
            if relevant.contains(pred) || facts.fact_only.contains(pred) || !reported.insert(pred) {
                continue;
            }
            let mut d = Diagnostic::warning(
                "A005",
                format!(
                    "predicate `{pred}` is derived but unreachable from every #show projection and constraint"
                ),
            );
            if let Some(span) = sp.statement_spans.get(idx) {
                d = d.with_span(*span);
            }
            diags.push(d);
        }
    }
}

/// A006: strongly connected components of the predicate dependency graph
/// that contain an internal negative edge — i.e. recursion through `not`,
/// which makes stable-model existence fragile (even loops) or impossible
/// (odd loops).
fn negation_cycles(sp: &SpannedProgram, diags: &mut Vec<Diagnostic>) {
    let deps = dependency_edges(&sp.program);
    // Index the predicate universe.
    let mut preds: BTreeSet<&str> = BTreeSet::new();
    for (h, b, _) in &deps {
        preds.insert(h);
        preds.insert(b);
    }
    let index: HashMap<&str, usize> = preds.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let names: Vec<&str> = preds.into_iter().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (h, b, _) in &deps {
        adj[index[h.as_str()]].push(index[b.as_str()]);
    }
    let comp = tarjan_scc(&adj);
    // A component is a cycle when it has >1 node, or one node with a
    // self-edge.
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    for (h, b, negated) in &deps {
        if !negated {
            continue;
        }
        let (hi, bi) = (index[h.as_str()], index[b.as_str()]);
        if comp[hi] != comp[bi] || !reported.insert(comp[hi]) {
            continue;
        }
        let cycle: Vec<&str> = (0..names.len())
            .filter(|i| comp[*i] == comp[hi])
            .map(|i| names[i])
            .collect();
        let mut d = Diagnostic::warning(
            "A006",
            format!(
                "cyclic negation through predicate(s) {}",
                quote_list(&cycle)
            ),
        );
        // Anchor at the rule introducing the negative edge.
        if let Some(span) = rule_span_with_neg_edge(sp, h, b) {
            d = d.with_span(span);
        }
        diags.push(d);
    }
}

/// A007: textually identical rules.
fn duplicate_rules(sp: &SpannedProgram, diags: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (idx, stmt) in sp.program.statements.iter().enumerate() {
        if !matches!(stmt, Statement::Rule(_)) {
            continue;
        }
        let text = stmt.to_string();
        match seen.get(&text) {
            Some(first) => {
                let mut d = Diagnostic::info("A007", format!("duplicate rule `{text}`"));
                if let Some(span) = sp.statement_spans.get(idx) {
                    d = d.with_span(*span);
                }
                if let Some(first_span) = sp.statement_spans.get(*first) {
                    d = d.with_suggestion(format!("first defined at {first_span}"));
                }
                // Interval expansions of a single source statement share
                // one span; only distinct source statements are duplicates.
                if sp.statement_spans.get(idx) != sp.statement_spans.get(*first) {
                    diags.push(d);
                }
            }
            None => {
                seen.insert(text, idx);
            }
        }
    }
}

/// Find the span of a rule whose head derives `head` and whose body
/// contains `not body_pred(...)`.
fn rule_span_with_neg_edge(
    sp: &SpannedProgram,
    head: &str,
    body_pred: &str,
) -> Option<crate::diag::Span> {
    for (idx, stmt) in sp.program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        let derives = match &rule.head {
            Head::Atom(a) => a.pred == head,
            Head::Choice { elements, .. } => elements.iter().any(|e| e.atom.pred == head),
            Head::None => false,
        };
        let negates = rule
            .body
            .iter()
            .any(|l| matches!(l, Literal::Neg(a) if a.pred == body_pred));
        if derives && negates {
            return sp.statement_spans.get(idx).copied();
        }
    }
    None
}

/// Grounding budget for the WFM-backed lints: programs whose predicted
/// grounding exceeds this many instances skip A012–A014 entirely (the
/// point of the prediction is to avoid materializing exactly those
/// programs).
const WFM_LINT_BUDGET: f64 = 200_000.0;

/// Cap on conditional-WFM probes across the whole A013 pass.
const WFM_LINT_MAX_PROBES: usize = 32;

/// Skip A013 entirely above this many distinct ground choice atoms.
const WFM_LINT_MAX_CHOICE_ATOMS: usize = 256;

/// A012 (constraint certainly violated under the WFM), A013 (choice
/// predicate statically irrelevant), A014 (constrained predicate with no
/// derivable instance).
///
/// These are the only lints that ground the program, so the size
/// prediction gates them; grounding failures skip the pass silently (an
/// unsafe rule is already reported as A003).
fn wfm_lints(
    sp: &SpannedProgram,
    facts: &PredFacts,
    prediction: &SizePrediction,
    never_derivable: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    if prediction.total > WFM_LINT_BUDGET {
        return;
    }
    let Ok(g) = Grounder::new().ground(&sp.program) else {
        return;
    };
    let wfm = well_founded(&g);
    statically_violated_constraints(sp, &g, &wfm, diags); // A012
    underivable_constrained_predicates(sp, facts, &g, &wfm, never_derivable, diags); // A014
    irrelevant_choice_predicates(sp, &g, &wfm, diags); // A013
}

/// A012: a ground integrity constraint whose body the well-founded model
/// already satisfies (positives all true, negatives all false). No answer
/// set can avoid it — the program is statically inconsistent. The span
/// points at the source constraint whose body signature matches the
/// violated ground instance.
fn statically_violated_constraints(
    sp: &SpannedProgram,
    g: &GroundProgram,
    wfm: &WfmResult,
    diags: &mut Vec<Diagnostic>,
) {
    type BodySig = BTreeMap<(String, usize, bool), usize>;
    let mut sources: Vec<(usize, BodySig)> = Vec::new();
    for (idx, stmt) in sp.program.statements.iter().enumerate() {
        let Statement::Rule(Rule {
            head: Head::None,
            body,
        }) = stmt
        else {
            continue;
        };
        let mut sig: BodySig = BTreeMap::new();
        for lit in body {
            let (atom, positive) = match lit {
                Literal::Pos(a) => (a, true),
                Literal::Neg(a) => (a, false),
                Literal::Cmp(..) => continue,
            };
            *sig.entry((atom.pred.clone(), atom.args.len(), positive))
                .or_insert(0) += 1;
        }
        sources.push((idx, sig));
    }
    let mut reported: BTreeSet<Option<usize>> = BTreeSet::new();
    for r in &g.rules {
        if !matches!(r.head, GroundHead::None)
            || !r.pos.iter().all(|p| wfm.is_true(*p))
            || !r.neg.iter().all(|n| wfm.is_false(*n))
        {
            continue;
        }
        let mut sig: BodySig = BTreeMap::new();
        for (ids, positive) in [(&r.pos, true), (&r.neg, false)] {
            for id in ids {
                let a = g.atom(*id);
                *sig.entry((a.pred.clone(), a.args.len(), positive))
                    .or_insert(0) += 1;
            }
        }
        let stmt = sources.iter().find(|(_, s)| *s == sig).map(|(idx, _)| *idx);
        if !reported.insert(stmt) {
            continue;
        }
        let mut d = Diagnostic::warning(
            "A012",
            "constraint statically violated: its body already holds in the \
             well-founded model, so no answer set exists",
        );
        if let Some(span) = stmt.and_then(|idx| sp.statement_spans.get(idx)) {
            d = d.with_span(*span);
        }
        diags.push(d);
    }
}

/// A014: a defined predicate occurs positively in a constraint body, but
/// every interned ground instance of it is false in the well-founded model
/// (or the grounder materialized none at all) — the constraint is dead
/// code. Predicates A010 already reported as never derivable are skipped.
fn underivable_constrained_predicates(
    sp: &SpannedProgram,
    facts: &PredFacts,
    g: &GroundProgram,
    wfm: &WfmResult,
    never_derivable: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut derivable: BTreeSet<(String, usize)> = BTreeSet::new();
    for (id, a) in g.atoms() {
        if !wfm.is_false(id) {
            derivable.insert((a.pred.clone(), a.args.len()));
        }
    }
    let mut reported: BTreeSet<(String, usize)> = BTreeSet::new();
    for occ in &sp.occurrences {
        if occ.role != OccRole::Pos
            || !in_constraint(&sp.program, occ.stmt)
            || !facts.defined.contains(&occ.pred)
            || never_derivable.contains(&occ.pred)
            || derivable.contains(&(occ.pred.clone(), occ.arity))
            || !reported.insert((occ.pred.clone(), occ.arity))
        {
            continue;
        }
        diags.push(
            Diagnostic::warning(
                "A014",
                format!(
                    "predicate `{}/{}` is constrained but never derivable: every \
                     ground instance is false in the well-founded model",
                    occ.pred, occ.arity
                ),
            )
            .with_span(occ.span),
        );
    }
}

/// The atoms whose values constitute the program's observable verdict:
/// the `#show` projection, every atom an integrity constraint or
/// cardinality constraint mentions, and every `#minimize` condition atom.
fn verdict_atoms(p: &GroundProgram) -> Vec<bool> {
    let mut v = vec![false; p.atom_count()];
    let mark = |v: &mut Vec<bool>, ids: &[AtomId]| {
        for id in ids {
            v[id.index()] = true;
        }
    };
    for r in &p.rules {
        if matches!(r.head, GroundHead::None) {
            mark(&mut v, &r.pos);
            mark(&mut v, &r.neg);
        }
    }
    for c in &p.cards {
        mark(&mut v, &c.pos);
        mark(&mut v, &c.neg);
        for e in &c.elements {
            v[e.atom.index()] = true;
            mark(&mut v, &e.guard_pos);
            mark(&mut v, &e.guard_neg);
        }
    }
    for (_, lits) in &p.minimize {
        for l in lits {
            mark(&mut v, &l.pos);
            mark(&mut v, &l.neg);
        }
    }
    for (id, _) in p.atoms() {
        if p.shown(id) {
            v[id.index()] = true;
        }
    }
    v
}

/// Route 1 of the A013 check: the forward dependency cone of `c` in the
/// simplified program touches no verdict atom and contains no internal
/// negative edge. By the splitting theorem the rest of the program is then
/// independent of how `c` is chosen, and the cone itself (verdict-free and
/// internally negation-free) can neither veto a model nor alter one —
/// toggling `c` cannot change any verdict.
fn cone_is_isolated(p: &GroundProgram, adj: &[Vec<u32>], c: AtomId, verdict: &[bool]) -> bool {
    let mut cone = vec![false; p.atom_count()];
    let mut stack = vec![c.0];
    cone[c.index()] = true;
    while let Some(a) = stack.pop() {
        if verdict[a as usize] {
            return false;
        }
        for &h in &adj[a as usize] {
            if !cone[h as usize] {
                cone[h as usize] = true;
                stack.push(h);
            }
        }
    }
    for r in &p.rules {
        let (GroundHead::Atom(h) | GroundHead::Choice(h)) = r.head else {
            continue;
        };
        if cone[h.index()] && r.neg.iter().any(|n| cone[n.index()]) {
            return false;
        }
    }
    true
}

/// Route 2 of the A013 check: pin `c` true and then false; if both
/// conditional well-founded models are consistent and decide every verdict
/// atom to the same value, every stable model — with or without `c` —
/// agrees on the whole verdict.
fn conditional_verdicts_fixed(g: &GroundProgram, c: AtomId, verdict: &[bool]) -> bool {
    use crate::analysis::wfm::Truth;
    let on = well_founded_with(g, &[Lit::pos(c)]);
    let off = well_founded_with(g, &[Lit::neg(c)]);
    if on.inconsistent || off.inconsistent {
        return false;
    }
    verdict.iter().enumerate().all(|(i, &is_verdict)| {
        let id = AtomId(i as u32);
        !is_verdict || (on.value(id) != Truth::Undefined && on.value(id) == off.value(id))
    })
}

/// A013: a choice predicate none of whose ground atoms can influence the
/// program's verdict — in the paper's encodings, a mitigation (or fault
/// toggle) whose activation provably changes nothing. Each surviving atom
/// must pass the structural cone check ([`cone_is_isolated`]) or the
/// conditional-WFM check ([`conditional_verdicts_fixed`]); atoms the WFM
/// already refutes are vacuously irrelevant.
fn irrelevant_choice_predicates(
    sp: &SpannedProgram,
    g: &GroundProgram,
    wfm: &WfmResult,
    diags: &mut Vec<Diagnostic>,
) {
    if g.shows.is_empty() {
        // No projection: every atom is observable and nothing can be
        // certified irrelevant (mirrors the A005 gate).
        return;
    }
    let mut groups: BTreeMap<(String, usize), Vec<AtomId>> = BTreeMap::new();
    let mut seen = vec![false; g.atom_count()];
    for r in &g.rules {
        if let GroundHead::Choice(h) = r.head {
            if !seen[h.index()] {
                seen[h.index()] = true;
                let a = g.atom(h);
                groups
                    .entry((a.pred.clone(), a.args.len()))
                    .or_default()
                    .push(h);
            }
        }
    }
    if groups.values().map(Vec::len).sum::<usize>() > WFM_LINT_MAX_CHOICE_ATOMS {
        return;
    }
    let s = simplify_with(g, wfm);
    let verdict_orig = verdict_atoms(g);
    let verdict_simpl = verdict_atoms(&s.program);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); s.program.atom_count()];
    for r in &s.program.rules {
        let (GroundHead::Atom(h) | GroundHead::Choice(h)) = r.head else {
            continue;
        };
        for x in r.pos.iter().chain(&r.neg) {
            adj[x.index()].push(h.0);
        }
    }
    let mut probes = 0usize;
    'groups: for ((pred, arity), atoms) in &groups {
        let surviving: Vec<AtomId> = atoms
            .iter()
            .filter(|a| s.map[a.index()].is_some())
            .copied()
            .collect();
        if surviving.is_empty() {
            continue;
        }
        for &c in &surviving {
            let c_new = s.map[c.index()].expect("surviving atoms are mapped");
            if cone_is_isolated(&s.program, &adj, c_new, &verdict_simpl) {
                continue;
            }
            if probes >= WFM_LINT_MAX_PROBES {
                continue 'groups; // out of budget: cannot certify the group
            }
            probes += 1;
            if !conditional_verdicts_fixed(g, c, &verdict_orig) {
                continue 'groups;
            }
        }
        let stmt = sp.program.statements.iter().position(|stmt| {
            matches!(stmt, Statement::Rule(Rule { head: Head::Choice { elements, .. }, .. })
                if elements
                    .iter()
                    .any(|e| e.atom.pred == *pred && e.atom.args.len() == *arity))
        });
        let mut d = Diagnostic::info(
            "A013",
            format!(
                "choice predicate `{pred}/{arity}` is statically irrelevant: \
                 toggling it cannot change any shown atom, constraint, or objective"
            ),
        );
        if let Some(span) = stmt.and_then(|idx| sp.statement_spans.get(idx)) {
            d = d.with_span(*span);
        }
        diags.push(d);
    }
}

fn in_constraint(program: &Program, stmt: usize) -> bool {
    matches!(
        program.statements.get(stmt),
        Some(Statement::Rule(Rule {
            head: Head::None,
            ..
        }))
    )
}

/// A009 (a rule's predicted instantiation count crosses
/// [`EXPLOSION_THRESHOLD`]) and A010 (a rule-defined predicate whose size
/// bound is zero: no chain of rules can ever derive an instance).
///
/// A010 stays quiet while any predicate is undefined — the bounds are
/// meaningless then, and A001/A004 already point at the real problem.
fn grounding_size_lints(
    sp: &SpannedProgram,
    facts: &PredFacts,
    prediction: &SizePrediction,
    diags: &mut Vec<Diagnostic>,
) -> BTreeSet<String> {
    for est in &prediction.rules {
        if est.instances > EXPLOSION_THRESHOLD {
            let mut d = Diagnostic::warning(
                "A009",
                format!(
                    "predicted grounding explosion: about {:.1e} ground instances of this rule (threshold {:.1e})",
                    est.instances, EXPLOSION_THRESHOLD
                ),
            );
            if let Some(span) = sp.statement_spans.get(est.stmt) {
                d = d.with_span(*span);
            }
            diags.push(d);
        }
    }

    let all_defined = sp
        .occurrences
        .iter()
        .all(|o| o.role == OccRole::Def || facts.defined.contains(&o.pred));
    if !all_defined {
        return BTreeSet::new();
    }
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (idx, stmt) in sp.program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        let heads: Vec<(&str, usize)> = match &rule.head {
            Head::Atom(a) => vec![(a.pred.as_str(), a.args.len())],
            Head::Choice { elements, .. } => elements
                .iter()
                .map(|e| (e.atom.pred.as_str(), e.atom.args.len()))
                .collect(),
            Head::None => Vec::new(),
        };
        for (pred, arity) in heads {
            let underivable = prediction
                .bound(pred, arity)
                .is_some_and(|b| b.defined && b.atoms == 0.0);
            if !underivable || !reported.insert(pred.to_owned()) {
                continue;
            }
            let mut d = Diagnostic::warning(
                "A010",
                format!("predicate `{pred}/{arity}` can never be derived: no chain of rules produces any instance"),
            );
            if let Some(span) = sp.statement_spans.get(idx) {
                d = d.with_span(*span);
            }
            diags.push(d);
        }
    }
    reported
}

/// A011: an SCC of the predicate dependency graph with both an internal
/// positive and an internal negative edge. Such a program is not tight at
/// the predicate level, so the solver may need the unfounded-set closure
/// (advisory — the ground program can still be tight).
fn non_tight_loops(sp: &SpannedProgram, diags: &mut Vec<Diagnostic>) {
    let dep = analyze_dependencies(&sp.program);
    for comp in &dep.neg_positive_loops {
        let names: Vec<&str> = comp.iter().map(String::as_str).collect();
        let mut d = Diagnostic::info(
            "A011",
            format!(
                "non-tight loop through negation involving {}: positive recursion and `not` share a cycle",
                quote_list(&names)
            ),
        );
        if let Some(span) = rule_span_with_pos_edge(sp, comp) {
            d = d.with_span(span);
        }
        diags.push(d);
    }
}

/// Find the span of a rule that contributes a positive internal edge to
/// the component `comp` — its head and some positive body literal both
/// name predicates of the component.
fn rule_span_with_pos_edge(sp: &SpannedProgram, comp: &[String]) -> Option<crate::diag::Span> {
    let members: BTreeSet<&str> = comp.iter().map(String::as_str).collect();
    for (idx, stmt) in sp.program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        let derives = match &rule.head {
            Head::Atom(a) => members.contains(a.pred.as_str()),
            Head::Choice { elements, .. } => elements
                .iter()
                .any(|e| members.contains(e.atom.pred.as_str())),
            Head::None => false,
        };
        let positive = rule
            .body
            .iter()
            .any(|l| matches!(l, Literal::Pos(a) if members.contains(a.pred.as_str())));
        if derives && positive {
            return sp.statement_spans.get(idx).copied();
        }
    }
    None
}

/// Levenshtein edit distance with a cutoff of `max + 1`.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest defined predicate within edit distance 2, as a
/// "did you mean" suggestion.
fn did_you_mean(pred: &str, defined: &BTreeSet<String>) -> Option<String> {
    defined
        .iter()
        .filter(|cand| cand.as_str() != pred)
        .map(|cand| (edit_distance(pred, cand), cand))
        .filter(|(d, _)| *d <= 2)
        .min()
        .map(|(_, cand)| format!("did you mean `{cand}`?"))
}

fn quote_list(items: &[&str]) -> String {
    items
        .iter()
        .map(|i| format!("`{i}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(src: &str) -> Vec<String> {
        lint_source(src).into_iter().map(|d| d.code).collect()
    }

    fn only(src: &str, code: &str) -> Diagnostic {
        let diags: Vec<Diagnostic> = lint_source(src)
            .into_iter()
            .filter(|d| d.code == code)
            .collect();
        assert_eq!(diags.len(), 1, "expected exactly one {code}, got {diags:?}");
        diags.into_iter().next().unwrap()
    }

    #[test]
    fn a000_reports_syntax_errors() {
        let d = only("p(a", "A000");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("expected"), "{}", d.message);
    }

    #[test]
    fn a001_undefined_predicate_with_did_you_mean() {
        let src = "mitigation(f4, m2).\nuses(M) :- mitigaton(F, M).";
        let d = only(src, "A001");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("`mitigaton/2`"), "{}", d.message);
        assert_eq!(d.suggestion.as_deref(), Some("did you mean `mitigation`?"));
        let span = d.span.expect("span");
        assert_eq!((span.line, span.column), (2, 12));
        assert_eq!(span.len, "mitigaton".len());
    }

    #[test]
    fn a002_arity_mismatch() {
        let src = "p(a, b).\nq :- p(a).";
        let d = only(src, "A002");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("inconsistent arities"), "{}", d.message);
        let span = d.span.expect("span");
        assert_eq!(
            (span.line, span.column),
            (2, 6),
            "points at the minority use"
        );
    }

    #[test]
    fn a003_unsafe_variable_is_an_error() {
        let src = "p(a).\nq(X, Y) :- p(X).";
        let d = only(src, "A003");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("`Y`"), "{}", d.message);
        let span = d.span.expect("span");
        assert_eq!(
            (span.line, span.column),
            (2, 1),
            "rule span starts the statement"
        );
    }

    #[test]
    fn a004_constraint_that_can_never_fire() {
        let src = "p(a).\n:- qq(X), p(X).";
        let d = only(src, "A004");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("never fire"), "{}", d.message);
        let span = d.span.expect("span");
        assert_eq!((span.line, span.column), (2, 4));
        // Constraint uses are not double-reported as A001.
        assert!(!codes(src).contains(&"A001".to_owned()));
    }

    #[test]
    fn a005_unreachable_derived_predicate() {
        let src = "p(a).\nq(X) :- p(X).\nr(X) :- p(X).\n#show q/1.";
        let d = only(src, "A005");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("`r`"), "{}", d.message);
        assert_eq!(d.span.expect("span").line, 3);
        // Without #show there is no output vocabulary: lint stays quiet.
        assert!(codes("p(a).\nq(X) :- p(X).").is_empty());
        // Fact-only predicates are inputs, never flagged.
        assert!(!codes("p(a).\n#show p/1.").contains(&"A005".to_owned()));
    }

    #[test]
    fn a006_negation_cycle() {
        let src = "a :- not b.\nb :- not a.";
        let d = only(src, "A006");
        assert_eq!(d.severity, Severity::Warning);
        assert!(
            d.message.contains("`a`") && d.message.contains("`b`"),
            "{}",
            d.message
        );
        assert_eq!(d.span.expect("span").line, 1);
        // Positive recursion is fine.
        assert!(codes("p(a). r(X, b) :- p(X). r(X, Y) :- r(X, Z), r(Z, Y).").is_empty());
    }

    #[test]
    fn a007_duplicate_rule() {
        let src = "p(a).\nq(X) :- p(X).\nq(X) :- p(X).";
        let d = only(src, "A007");
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(d.span.expect("span").line, 3);
        assert!(d.suggestion.expect("suggestion").contains("line 2"));
        // Interval expansion does not self-report.
        assert!(codes("n(1..3).").is_empty());
    }

    #[test]
    fn a008_negation_of_undefined_predicate() {
        let src = "p(a).\nq(X) :- p(X), not blocked(X).";
        let d = only(src, "A008");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("always true"), "{}", d.message);
        assert_eq!(
            (d.span.expect("span").line, d.span.expect("span").column),
            (2, 19)
        );
    }

    #[test]
    fn a009_predicted_grounding_explosion() {
        let src = "num(1..120).\nbig(X, Y, Z) :- num(X), num(Y), num(Z).";
        let d = only(src, "A009");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("explosion"), "{}", d.message);
        let span = d.span.expect("span");
        assert_eq!((span.line, span.column), (2, 1), "points at the big rule");
        // A bounded join stays quiet.
        assert!(!codes("num(1..120). pair(X, Y) :- num(X), num(Y).").contains(&"A009".to_owned()));
    }

    #[test]
    fn a010_underivable_predicate() {
        let src = "seed(1).\nok(X) :- seed(X).\nghost(X) :- phantom(X).\nphantom(X) :- ghost(X).";
        let diags: Vec<Diagnostic> = lint_source(src)
            .into_iter()
            .filter(|d| d.code == "A010")
            .collect();
        assert_eq!(diags.len(), 2, "ghost and phantom: {diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(
            diags[0].message.contains("`ghost/1`"),
            "{}",
            diags[0].message
        );
        assert_eq!(diags[0].span.expect("span").line, 3);
        assert_eq!(diags[1].span.expect("span").line, 4);
        // With an undefined predicate in the mix, A001 owns the report.
        assert!(!codes("p(X) :- undefined_thing(X).").contains(&"A010".to_owned()));
    }

    #[test]
    fn a011_non_tight_loop_through_negation() {
        let src = "b :- not a.\na :- a, not b.";
        let d = only(src, "A011");
        assert_eq!(d.severity, Severity::Info);
        assert!(
            d.message.contains("`a`") && d.message.contains("`b`"),
            "{}",
            d.message
        );
        assert_eq!(
            d.span.expect("span").line,
            2,
            "anchored at the rule with the positive edge"
        );
        // A pure even loop is tight: A006 only, no A011.
        assert!(!codes("a :- not b. b :- not a.").contains(&"A011".to_owned()));
    }

    #[test]
    fn a012_statically_violated_constraint() {
        let src = "p. q :- p. :- q.";
        let d = only(src, "A012");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("no answer set"), "{}", d.message);
        let span = d.span.expect("span points at the constraint");
        assert_eq!(span.offset, src.find(":- q").unwrap());
        // A constraint guarded by a free choice is not statically violated.
        assert!(!codes("{ x }. p :- x. :- p.").contains(&"A012".to_owned()));
    }

    #[test]
    fn a013_statically_irrelevant_choice() {
        // `junk` only feeds `spin`; neither is shown or constrained. `f`
        // drives the shown `alarm`, so it must not be flagged.
        let src = "{ junk }. spin :- junk. { f }. alarm :- f. #show alarm/0.";
        let d = only(src, "A013");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("`junk/0`"), "{}", d.message);
        assert_eq!(d.span.expect("span").offset, 0, "at the choice rule");
        // Without a #show projection every atom is observable: no A013.
        assert!(!codes("{ junk }. spin :- junk.").contains(&"A013".to_owned()));
    }

    #[test]
    fn a013_needs_the_conditional_route_for_shadowed_choices() {
        // `v` is derived whichever way `c` goes — reachability alone cannot
        // see that, but the conditional WFM decides `v` true under both
        // `c` and `not c`.
        let src = "{ c }. v :- c. v :- not c. #show v/0.";
        let d = only(src, "A013");
        assert!(d.message.contains("`c/0`"), "{}", d.message);
    }

    #[test]
    fn a014_constrained_but_never_derivable() {
        // `f` refutes `danger`'s only rule, so the constraint is dead code.
        let src = "f. danger :- not f. :- danger.";
        let d = only(src, "A014");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("`danger/0`"), "{}", d.message);
        assert_eq!(
            d.span.expect("span").offset,
            src.rfind("danger").unwrap(),
            "at the occurrence inside the constraint"
        );
        // A derivable constrained predicate stays silent.
        assert!(!codes("f. danger :- f. :- danger, f.").contains(&"A014".to_owned()));
    }

    #[test]
    fn wfm_lints_respect_the_grounding_budget() {
        // Statically violated, but the predicted grounding of the n^3
        // cross join is far past the budget: the pass must not ground it.
        let mut src = String::new();
        for i in 0..120 {
            src.push_str(&format!("n({i}). "));
        }
        src.push_str("big(X, Y, Z) :- n(X), n(Y), n(Z). p. :- p.");
        assert!(!codes(&src).contains(&"A012".to_owned()));
    }

    #[test]
    fn paper_listing_1_is_lint_clean() {
        // The verbatim Listing 1 of the paper: `active_mitigation` is used
        // only under negation (A008 info), everything else is defined.
        let src = "component(ew). fault(f4). mitigation(f4, m2). \
                   potential_fault(C, F) :- component(C), fault(F), \
                   mitigation(F, M), not active_mitigation(C, M).";
        let diags = lint_source(src);
        assert!(
            !diags.iter().any(|d| d.is_error() || d.is_warning()),
            "not lint-clean: {diags:?}"
        );
        assert_eq!(diags.len(), 1, "exactly the A008 info: {diags:?}");
        assert_eq!(diags[0].code, "A008");
    }

    #[test]
    fn misspelled_listing_1_points_at_the_typo() {
        let src = "component(ew). fault(f4). mitigation(f4, m2).\n\
                   potential_fault(C, F) :- component(C), fault(F),\n\
                   \x20   mitigaton(F, M), not active_mitigation(C, M).";
        let d = only(src, "A001");
        assert_eq!(d.suggestion.as_deref(), Some("did you mean `mitigation`?"));
        let span = d.span.expect("span");
        assert_eq!((span.line, span.column), (3, 5));
    }

    #[test]
    fn diagnostics_come_back_in_source_order() {
        let src = "q(X) :- p(X).\nr(Y, Z) :- q(Y).";
        let diags = lint_source(src);
        let offsets: Vec<usize> = diags
            .iter()
            .filter_map(|d| d.span.map(|s| s.offset))
            .collect();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted);
    }
}
