//! Recursive-descent parser for the clingo-like surface syntax.
//!
//! Supported statement forms:
//!
//! * facts and normal rules: `p(a). q(X) :- p(X), not r(X), X != b.`
//! * integrity constraints: `:- p(X), q(X).`
//! * choice rules with bounds and conditional elements:
//!   `1 { active(F) : potential(F) } 2 :- trigger.`
//! * interval facts: `step(1..5).` (expanded at parse time),
//! * optimization: `#minimize { 1@2,F : active(F); Cost,M : chosen(M) }.`
//!   and `#maximize { … }` (negated weights),
//! * projection: `#show violated/1.`
//! * comments: `% …` to end of line.

use crate::ast::{
    ArithOp, Atom, ChoiceElement, CmpOp, Head, Literal, MinimizeElement, Program, Rule, Statement,
    Term,
};
use crate::diag::Span;
use crate::error::AspError;
use crate::lexer::{err_at, tokenize, Token, TokenKind};

/// Parse a complete program.
///
/// # Errors
///
/// [`AspError::Parse`] on any syntax error (with line/column info) and
/// [`AspError::UnsafeRule`] for rules with unbound variables.
pub fn parse_program(src: &str) -> Result<Program, AspError> {
    Ok(parse_spanned_inner(src, true)?.program)
}

/// Parse a complete program, keeping the span side table consumed by the
/// lint pass ([`crate::lint`]).
///
/// Unlike [`parse_program`], rule safety is *not* enforced here — unsafe
/// rules come back in the AST so the linter can report them as
/// span-carrying diagnostics (code `A003`) instead of aborting at the
/// first one.
///
/// # Errors
///
/// [`AspError::Parse`] on syntax errors only.
pub fn parse_program_spanned(src: &str) -> Result<SpannedProgram, AspError> {
    parse_spanned_inner(src, false)
}

fn parse_spanned_inner(src: &str, check_safety: bool) -> Result<SpannedProgram, AspError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        src,
        tokens,
        pos: 0,
        check_safety,
        stmt_count: 0,
        statement_spans: Vec::new(),
        occurrences: Vec::new(),
        pending: Vec::new(),
    };
    let mut program = Program::new();
    while !p.at(&TokenKind::Eof) {
        let stmts = p.statement()?;
        program.statements.extend(stmts);
    }
    Ok(SpannedProgram {
        program,
        statement_spans: p.statement_spans,
        occurrences: p.occurrences,
    })
}

/// A parsed program plus the source-span side table.
///
/// Spans cannot live on the AST itself ([`Atom`] is interned by identity in
/// the grounder), so the parser records them alongside: one span per
/// emitted statement, and one [`PredOcc`] per syntactic predicate
/// occurrence.
#[derive(Debug, Clone)]
pub struct SpannedProgram {
    /// The parsed program (safety not yet checked — see
    /// [`parse_program_spanned`]).
    pub program: Program,
    /// Span of each statement, aligned with `program.statements`. Interval
    /// facts expanded from one source statement share its span.
    pub statement_spans: Vec<Span>,
    /// Every predicate occurrence, in source order.
    pub occurrences: Vec<PredOcc>,
}

/// One syntactic occurrence of a predicate in the source.
#[derive(Debug, Clone)]
pub struct PredOcc {
    /// Predicate name.
    pub pred: String,
    /// Number of arguments at this occurrence.
    pub arity: usize,
    /// How the predicate is used here.
    pub role: OccRole,
    /// Index (into `program.statements`) of the first statement emitted
    /// from the source statement containing this occurrence.
    pub stmt: usize,
    /// Span of the predicate name token.
    pub span: Span,
}

/// The syntactic role of a predicate occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccRole {
    /// Head atom or choice-element atom: a defining occurrence.
    Def,
    /// Positive body/condition literal.
    Pos,
    /// Negated (`not …`) body/condition literal.
    Neg,
    /// `#show pred/arity` projection.
    Show,
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    check_safety: bool,
    stmt_count: usize,
    statement_spans: Vec<Span>,
    occurrences: Vec<PredOcc>,
    pending: Vec<(String, usize, OccRole, Span)>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), AspError> {
        if self.at(kind) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn error(&self, msg: &str) -> AspError {
        self.error_at(self.pos, msg)
    }

    /// An error pointing at the token with index `idx` — used after a
    /// `bump()` so the message cites the offending token, not its
    /// successor.
    fn error_at(&self, idx: usize, msg: &str) -> AspError {
        err_at(
            self.src,
            self.tokens[idx.min(self.tokens.len() - 1)].offset,
            msg,
        )
    }

    /// Span of one token.
    fn tok_span(&self, idx: usize) -> Span {
        let t = &self.tokens[idx.min(self.tokens.len() - 1)];
        Span::new(self.src, t.offset, t.len)
    }

    /// Span from the start of token `start_idx` to the end of the last
    /// consumed token.
    fn span_from(&self, start_idx: usize) -> Span {
        let start = self.tokens[start_idx.min(self.tokens.len() - 1)].offset;
        let last_idx = self
            .pos
            .saturating_sub(1)
            .max(start_idx)
            .min(self.tokens.len() - 1);
        let last = &self.tokens[last_idx];
        Span::new(
            self.src,
            start,
            (last.offset + last.len).saturating_sub(start),
        )
    }

    /// Queue a predicate occurrence of the statement being parsed.
    fn record(&mut self, pred: &str, arity: usize, role: OccRole, span: Span) {
        if !pred.starts_with('#') {
            self.pending.push((pred.to_owned(), arity, role, span));
        }
    }

    /// Parse one statement; interval facts may expand to several.
    fn statement(&mut self) -> Result<Vec<Statement>, AspError> {
        let start = self.pos;
        let stmts = match self.peek() {
            TokenKind::Minimize => self.minimize(false),
            TokenKind::Maximize => self.minimize(true),
            TokenKind::Show => self.show(),
            _ => self.rule(start),
        }?;
        let span = self.span_from(start);
        let first = self.stmt_count;
        self.statement_spans
            .extend(std::iter::repeat_n(span, stmts.len()));
        self.stmt_count += stmts.len();
        for (pred, arity, role, occ_span) in self.pending.drain(..) {
            self.occurrences.push(PredOcc {
                pred,
                arity,
                role,
                stmt: first,
                span: occ_span,
            });
        }
        Ok(stmts)
    }

    fn show(&mut self) -> Result<Vec<Statement>, AspError> {
        self.expect(&TokenKind::Show)?;
        let name_idx = self.pos;
        let pred = match self.bump() {
            TokenKind::Ident(s) => s,
            other => {
                return Err(self.error_at(
                    name_idx,
                    &format!("expected predicate name, found `{other}`"),
                ))
            }
        };
        self.expect(&TokenKind::Slash)?;
        let arity_idx = self.pos;
        let arity = match self.bump() {
            TokenKind::Int(n) if n >= 0 => n as usize,
            other => {
                return Err(self.error_at(arity_idx, &format!("expected arity, found `{other}`")))
            }
        };
        self.expect(&TokenKind::Dot)?;
        let span = self.tok_span(name_idx);
        self.record(&pred, arity, OccRole::Show, span);
        Ok(vec![Statement::Show { pred, arity }])
    }

    fn minimize(&mut self, maximize: bool) -> Result<Vec<Statement>, AspError> {
        self.bump(); // #minimize / #maximize
        self.expect(&TokenKind::LBrace)?;
        // priority -> elements
        let mut by_prio: Vec<(i64, Vec<MinimizeElement>)> = Vec::new();
        loop {
            let weight = self.term()?;
            let weight = if maximize {
                Term::BinOp(ArithOp::Sub, Box::new(Term::Int(0)), Box::new(weight))
            } else {
                weight
            };
            let mut priority = 0i64;
            if self.at(&TokenKind::At) {
                self.bump();
                let prio_idx = self.pos;
                match self.bump() {
                    TokenKind::Int(p) => priority = p,
                    other => {
                        return Err(
                            self.error_at(prio_idx, &format!("expected priority, found `{other}`"))
                        )
                    }
                }
            }
            let mut terms = Vec::new();
            while self.at(&TokenKind::Comma) {
                self.bump();
                terms.push(self.term()?);
            }
            let mut condition = Vec::new();
            if self.at(&TokenKind::Colon) {
                self.bump();
                condition = self.literals_until(&[TokenKind::Semi, TokenKind::RBrace])?;
            }
            let elem = MinimizeElement {
                weight,
                terms,
                condition,
            };
            match by_prio.iter_mut().find(|(p, _)| *p == priority) {
                Some((_, v)) => v.push(elem),
                None => by_prio.push((priority, vec![elem])),
            }
            if self.at(&TokenKind::Semi) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Dot)?;
        Ok(by_prio
            .into_iter()
            .map(|(priority, elements)| Statement::Minimize { priority, elements })
            .collect())
    }

    fn rule(&mut self, start: usize) -> Result<Vec<Statement>, AspError> {
        let head = if self.at(&TokenKind::If) {
            Head::None
        } else {
            self.head()?
        };
        let body = if self.at(&TokenKind::If) {
            self.bump();
            self.literals_until(&[TokenKind::Dot])?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::Dot)?;
        let rule = Rule { head, body };
        // Expand interval facts: p(1..3). -> p(1). p(2). p(3). Errors point
        // at the start of the offending statement, not past its dot.
        let expanded = expand_intervals(rule).map_err(|m| self.error_at(start, &m))?;
        if self.check_safety {
            for r in &expanded {
                r.check_safety()?;
            }
        }
        Ok(expanded.into_iter().map(Statement::Rule).collect())
    }

    fn head(&mut self) -> Result<Head, AspError> {
        // Possible: `atom`, `{...}`, `n {...} m`.
        let lower = match (self.peek(), self.peek2()) {
            (TokenKind::Int(n), TokenKind::LBrace) if *n >= 0 => {
                let n = *n as u32;
                self.bump();
                Some(n)
            }
            _ => None,
        };
        if self.at(&TokenKind::LBrace) {
            self.bump();
            let mut elements = Vec::new();
            if !self.at(&TokenKind::RBrace) {
                loop {
                    let atom = self.atom(OccRole::Def)?;
                    let mut condition = Vec::new();
                    if self.at(&TokenKind::Colon) {
                        self.bump();
                        condition = self.literals_until(&[TokenKind::Semi, TokenKind::RBrace])?;
                    }
                    elements.push(ChoiceElement { atom, condition });
                    if self.at(&TokenKind::Semi) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RBrace)?;
            let upper = match self.peek() {
                TokenKind::Int(n) if *n >= 0 => {
                    let n = *n as u32;
                    self.bump();
                    Some(n)
                }
                _ => None,
            };
            Ok(Head::Choice {
                lower,
                upper,
                elements,
            })
        } else if lower.is_some() {
            Err(self.error("expected `{` after cardinality bound"))
        } else {
            Ok(Head::Atom(self.atom(OccRole::Def)?))
        }
    }

    /// Parse a comma-separated literal list, stopping (without consuming)
    /// at the first non-comma token — the caller's terminator `expect`
    /// reports malformed input precisely.
    fn literals_until(&mut self, _stops: &[TokenKind]) -> Result<Vec<Literal>, AspError> {
        let mut out = Vec::new();
        loop {
            out.push(self.literal()?);
            if self.at(&TokenKind::Comma) {
                self.bump();
            } else {
                // Stop at any terminator (or on malformed input, which the
                // caller's `expect` will report precisely).
                break;
            }
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, AspError> {
        if self.at(&TokenKind::Not) {
            self.bump();
            return Ok(Literal::Neg(self.atom(OccRole::Neg)?));
        }
        // Parse a term; if a comparison operator follows it is a builtin.
        let start = self.pos;
        let lhs = self.term()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.term()?;
            return Ok(Literal::Cmp(op, lhs, rhs));
        }
        match lhs {
            Term::Const(name) => {
                let span = self.tok_span(start);
                self.record(&name, 0, OccRole::Pos, span);
                Ok(Literal::Pos(Atom::prop(name)))
            }
            Term::Func(name, args) => {
                let span = self.tok_span(start);
                self.record(&name, args.len(), OccRole::Pos, span);
                Ok(Literal::Pos(Atom::new(name, args)))
            }
            other => Err(self.error_at(start, &format!("`{other}` is not a valid literal"))),
        }
    }

    fn atom(&mut self, role: OccRole) -> Result<Atom, AspError> {
        let name_idx = self.pos;
        match self.bump() {
            TokenKind::Ident(name) => {
                let span = self.tok_span(name_idx);
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.at(&TokenKind::Comma) {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    self.record(&name, args.len(), role, span);
                    Ok(Atom::new(name, args))
                } else {
                    self.record(&name, 0, role, span);
                    Ok(Atom::prop(name))
                }
            }
            other => Err(self.error_at(name_idx, &format!("expected atom, found `{other}`"))),
        }
    }

    fn term(&mut self) -> Result<Term, AspError> {
        let lhs = self.add_expr()?;
        // Interval `a..b` — represented as the reserved functor `#range`.
        if self.at(&TokenKind::DotDot) {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Term::Func("#range".into(), vec![lhs, rhs]));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Term, AspError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Term::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Term, AspError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Term::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Term, AspError> {
        if self.at(&TokenKind::Minus) {
            self.bump();
            let t = self.unary()?;
            return Ok(match t {
                Term::Int(i) => Term::Int(-i),
                other => Term::BinOp(ArithOp::Sub, Box::new(Term::Int(0)), Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Term, AspError> {
        let start = self.pos;
        match self.bump() {
            TokenKind::Int(i) => Ok(Term::Int(i)),
            TokenKind::Str(s) => Ok(Term::Str(s)),
            TokenKind::Variable(v) => Ok(Term::Var(v)),
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.at(&TokenKind::Comma) {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Term::Func(name, args))
                } else {
                    Ok(Term::Const(name))
                }
            }
            TokenKind::LParen => {
                let t = self.term()?;
                self.expect(&TokenKind::RParen)?;
                Ok(t)
            }
            other => Err(self.error_at(start, &format!("expected term, found `{other}`"))),
        }
    }
}

/// Expand `#range` interval terms in fact heads; reject them elsewhere.
fn expand_intervals(rule: Rule) -> Result<Vec<Rule>, String> {
    fn has_range(t: &Term) -> bool {
        match t {
            Term::Func(f, args) => f == "#range" || args.iter().any(has_range),
            Term::BinOp(_, a, b) => has_range(a) || has_range(b),
            _ => false,
        }
    }
    let head_atom_ranges = match &rule.head {
        Head::Atom(a) => a.args.iter().any(has_range),
        Head::Choice { elements, .. } => elements.iter().any(|e| {
            e.atom.args.iter().any(has_range) || e.condition.iter().any(literal_has_range)
        }),
        Head::None => false,
    };
    fn literal_has_range(l: &Literal) -> bool {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => a.args.iter().any(has_range),
            Literal::Cmp(_, x, y) => has_range(x) || has_range(y),
        }
    }
    if rule.body.iter().any(literal_has_range) {
        return Err("intervals `l..u` are only supported in fact heads".into());
    }
    if !head_atom_ranges {
        return Ok(vec![rule]);
    }
    let (atom, is_fact) = match (&rule.head, rule.body.is_empty()) {
        (Head::Atom(a), true) => (a.clone(), true),
        _ => (Atom::prop("x"), false),
    };
    if !is_fact {
        return Err("intervals `l..u` are only supported in fact heads".into());
    }
    // Cartesian expansion of every range argument.
    let mut results: Vec<Vec<Term>> = vec![Vec::new()];
    for arg in &atom.args {
        let choices: Vec<Term> = match arg {
            Term::Func(f, bounds) if f == "#range" => {
                let lo = bounds[0].eval().map_err(|e| e.to_string())?;
                let hi = bounds[1].eval().map_err(|e| e.to_string())?;
                match (lo, hi) {
                    (Term::Int(l), Term::Int(h)) if l <= h && (h - l) <= 100_000 => {
                        (l..=h).map(Term::Int).collect()
                    }
                    (l, h) => return Err(format!("invalid interval {l}..{h}")),
                }
            }
            other => vec![other.clone()],
        };
        let mut next = Vec::with_capacity(results.len() * choices.len());
        for prefix in &results {
            for c in &choices {
                let mut row = prefix.clone();
                row.push(c.clone());
                next.push(row);
            }
        }
        results = next;
    }
    Ok(results
        .into_iter()
        .map(|args| Rule::fact(Atom::new(atom.pred.clone(), args)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("parse failed for `{src}`: {e}"))
    }

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_ok("p(a). q(X) :- p(X).");
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.statements[0].to_string(), "p(a).");
        assert_eq!(p.statements[1].to_string(), "q(X) :- p(X).");
    }

    #[test]
    fn parses_paper_listing_1() {
        let p = parse_ok(
            "potential_fault(C, F) :- component(C), fault(F), \
             mitigation(F, M), not active_mitigation(C, M).",
        );
        assert_eq!(
            p.statements[0].to_string(),
            "potential_fault(C,F) :- component(C), fault(F), mitigation(F,M), not active_mitigation(C,M)."
        );
    }

    #[test]
    fn parses_paper_listing_2() {
        let p = parse_ok(
            "component_state(C, X) :- prev_component_state(C, X), active_fault(C, stuck_at_x).",
        );
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn parses_constraints() {
        let p = parse_ok(":- violated(r1), not acceptable.");
        assert!(matches!(
            &p.statements[0],
            Statement::Rule(Rule {
                head: Head::None,
                ..
            })
        ));
    }

    #[test]
    fn parses_choice_rules_with_bounds_and_conditions() {
        let p = parse_ok("1 { active(F) : potential(F) } 2 :- trigger.");
        match &p.statements[0] {
            Statement::Rule(Rule {
                head:
                    Head::Choice {
                        lower,
                        upper,
                        elements,
                    },
                body,
            }) => {
                assert_eq!(*lower, Some(1));
                assert_eq!(*upper, Some(2));
                assert_eq!(elements.len(), 1);
                assert_eq!(elements[0].condition.len(), 1);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected choice rule, got {other:?}"),
        }
    }

    #[test]
    fn parses_unbounded_choice() {
        let p = parse_ok("{ a; b; c }.");
        match &p.statements[0] {
            Statement::Rule(Rule {
                head:
                    Head::Choice {
                        lower,
                        upper,
                        elements,
                    },
                ..
            }) => {
                assert_eq!(*lower, None);
                assert_eq!(*upper, None);
                assert_eq!(elements.len(), 3);
            }
            other => panic!("expected choice rule, got {other:?}"),
        }
    }

    #[test]
    fn parses_comparisons_and_arithmetic() {
        let p = parse_ok("p(Y) :- q(X), Y = X + 1, Y < 10, X != 3.");
        assert_eq!(
            p.statements[0].to_string(),
            "p(Y) :- q(X), Y = (X+1), Y < 10, X != 3."
        );
    }

    #[test]
    fn expands_interval_facts() {
        let p = parse_ok("n(1..3).");
        let texts: Vec<String> = p.statements.iter().map(ToString::to_string).collect();
        assert_eq!(texts, vec!["n(1).", "n(2).", "n(3)."]);
        // Multi-dimensional expansion.
        let p2 = parse_ok("cell(1..2, 1..2).");
        assert_eq!(p2.statements.len(), 4);
    }

    #[test]
    fn rejects_intervals_outside_facts() {
        assert!(parse_program("p(X) :- q(1..3).").is_err());
    }

    #[test]
    fn parses_minimize_with_priorities() {
        let p = parse_ok("#minimize { 1@2,F : active(F); Cost,M : chosen(M), cost(M, Cost) }.");
        let prios: Vec<i64> = p
            .statements
            .iter()
            .filter_map(|s| match s {
                Statement::Minimize { priority, .. } => Some(*priority),
                _ => None,
            })
            .collect();
        assert_eq!(prios.len(), 2);
        assert!(prios.contains(&2));
        assert!(prios.contains(&0));
    }

    #[test]
    fn parses_maximize_as_negated_minimize() {
        let p = parse_ok("#maximize { 3 : good }.");
        match &p.statements[0] {
            Statement::Minimize { elements, .. } => {
                assert_eq!(elements[0].weight.eval().unwrap(), Term::Int(-3));
            }
            other => panic!("expected minimize, got {other:?}"),
        }
    }

    #[test]
    fn parses_show_directive() {
        let p = parse_ok("#show violated/1.");
        assert_eq!(
            p.statements[0],
            Statement::Show {
                pred: "violated".into(),
                arity: 1
            }
        );
    }

    #[test]
    fn rejects_unsafe_rules_at_parse_time() {
        assert!(matches!(
            parse_program("p(X) :- not q(X)."),
            Err(AspError::UnsafeRule { .. })
        ));
        assert!(matches!(
            parse_program("p(X, Y) :- q(X)."),
            Err(AspError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn choice_element_condition_makes_vars_safe() {
        // F is bound by the element condition, not the body — must be safe.
        assert!(parse_program("{ active(F) : potential(F) }.").is_ok());
        // G is bound nowhere — unsafe.
        assert!(parse_program("{ active(G) }.").is_err());
    }

    #[test]
    fn negative_numbers_and_parens() {
        let p = parse_ok("p(-3). q(X) :- p(X), X < -(1 + 1).");
        assert!(p.statements[0].to_string().contains("-3"));
    }

    #[test]
    fn reports_position_on_error() {
        let err = parse_program("p(a)\nq(b).").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn strings_as_terms() {
        let p = parse_ok(r#"name(c1, "Engineering Workstation")."#);
        assert!(p.statements[0]
            .to_string()
            .contains("\"Engineering Workstation\""));
    }

    #[test]
    fn propositional_atoms() {
        let p = parse_ok("a :- b, not c.");
        assert_eq!(p.statements[0].to_string(), "a :- b, not c.");
    }

    /// Assert that parsing `src` fails with a message containing `needle`
    /// anchored at exactly `line`/`column` of the *offending* token.
    fn assert_error_at(src: &str, needle: &str, line: usize, column: usize) {
        let err = parse_program(src).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "`{src}`: expected `{needle}` in `{msg}`"
        );
        assert!(
            msg.contains(&format!("line {line}, column {column}")),
            "`{src}`: expected line {line}, column {column} in `{msg}`"
        );
    }

    #[test]
    fn show_error_points_at_bad_predicate_name() {
        assert_error_at("#show 1/2.", "expected predicate name", 1, 7);
    }

    #[test]
    fn show_error_points_at_bad_arity() {
        assert_error_at("#show p/x.", "expected arity", 1, 9);
    }

    #[test]
    fn minimize_error_points_at_bad_priority() {
        assert_error_at("#minimize { 1@p : q }.", "expected priority", 1, 15);
    }

    #[test]
    fn atom_error_points_at_offending_token() {
        assert_error_at(":- not 1.", "expected atom", 1, 8);
    }

    #[test]
    fn literal_error_points_at_offending_token() {
        assert_error_at(":- X.", "is not a valid literal", 1, 4);
    }

    #[test]
    fn term_error_points_at_offending_token() {
        assert_error_at("p(+).", "expected term", 1, 3);
    }

    #[test]
    fn interval_error_points_at_statement_start() {
        assert_error_at(
            "q(a).\np(X) :- q(1..3).",
            "only supported in fact heads",
            2,
            1,
        );
    }

    #[test]
    fn spanned_parse_keeps_statement_spans_aligned() {
        let sp = parse_program_spanned("p(a).\nn(1..3).\nq(X) :- p(X).").unwrap();
        // 1 fact + 3 expanded interval facts + 1 rule.
        assert_eq!(sp.program.statements.len(), 5);
        assert_eq!(sp.statement_spans.len(), 5);
        // Expanded facts share the span of their source statement.
        assert_eq!(sp.statement_spans[1], sp.statement_spans[2]);
        assert_eq!(sp.statement_spans[1].line, 2);
        assert_eq!(sp.statement_spans[4].line, 3);
        assert_eq!(sp.statement_spans[4].column, 1);
    }

    #[test]
    fn spanned_parse_records_occurrence_roles() {
        let sp = parse_program_spanned("q(X) :- p(X), not r(X).\n#show q/1.").unwrap();
        let roles: Vec<(&str, OccRole)> = sp
            .occurrences
            .iter()
            .map(|o| (o.pred.as_str(), o.role))
            .collect();
        assert_eq!(
            roles,
            vec![
                ("q", OccRole::Def),
                ("p", OccRole::Pos),
                ("r", OccRole::Neg),
                ("q", OccRole::Show)
            ]
        );
        let r = &sp.occurrences[2];
        assert_eq!((r.span.line, r.span.column, r.span.len), (1, 19, 1));
        assert_eq!(r.stmt, 0);
        assert_eq!(sp.occurrences[3].stmt, 1);
    }

    #[test]
    fn spanned_parse_tolerates_unsafe_rules() {
        // `parse_program` rejects this; the lenient entry point keeps it so
        // the lint pass can report it with a span.
        let sp = parse_program_spanned("p(X) :- not q(X).").unwrap();
        assert_eq!(sp.program.statements.len(), 1);
        assert!(parse_program("p(X) :- not q(X).").is_err());
    }
}
