//! Recursive-descent parser for the clingo-like surface syntax.
//!
//! Supported statement forms:
//!
//! * facts and normal rules: `p(a). q(X) :- p(X), not r(X), X != b.`
//! * integrity constraints: `:- p(X), q(X).`
//! * choice rules with bounds and conditional elements:
//!   `1 { active(F) : potential(F) } 2 :- trigger.`
//! * interval facts: `step(1..5).` (expanded at parse time),
//! * optimization: `#minimize { 1@2,F : active(F); Cost,M : chosen(M) }.`
//!   and `#maximize { … }` (negated weights),
//! * projection: `#show violated/1.`
//! * comments: `% …` to end of line.

use crate::ast::{
    ArithOp, Atom, ChoiceElement, CmpOp, Head, Literal, MinimizeElement, Program, Rule, Statement,
    Term,
};
use crate::error::AspError;
use crate::lexer::{err_at, tokenize, Token, TokenKind};

/// Parse a complete program.
///
/// # Errors
///
/// [`AspError::Parse`] on any syntax error, with line/column info.
pub fn parse_program(src: &str) -> Result<Program, AspError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { src, tokens, pos: 0 };
    let mut program = Program::new();
    while !p.at(&TokenKind::Eof) {
        let stmts = p.statement()?;
        program.statements.extend(stmts);
    }
    Ok(program)
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), AspError> {
        if self.at(kind) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn error(&self, msg: &str) -> AspError {
        err_at(self.src, self.tokens[self.pos].offset, msg)
    }

    /// Parse one statement; interval facts may expand to several.
    fn statement(&mut self) -> Result<Vec<Statement>, AspError> {
        match self.peek() {
            TokenKind::Minimize => self.minimize(false),
            TokenKind::Maximize => self.minimize(true),
            TokenKind::Show => self.show(),
            _ => self.rule(),
        }
    }

    fn show(&mut self) -> Result<Vec<Statement>, AspError> {
        self.expect(&TokenKind::Show)?;
        let pred = match self.bump() {
            TokenKind::Ident(s) => s,
            other => return Err(self.error(&format!("expected predicate name, found `{other}`"))),
        };
        self.expect(&TokenKind::Slash)?;
        let arity = match self.bump() {
            TokenKind::Int(n) if n >= 0 => n as usize,
            other => return Err(self.error(&format!("expected arity, found `{other}`"))),
        };
        self.expect(&TokenKind::Dot)?;
        Ok(vec![Statement::Show { pred, arity }])
    }

    fn minimize(&mut self, maximize: bool) -> Result<Vec<Statement>, AspError> {
        self.bump(); // #minimize / #maximize
        self.expect(&TokenKind::LBrace)?;
        // priority -> elements
        let mut by_prio: Vec<(i64, Vec<MinimizeElement>)> = Vec::new();
        loop {
            let weight = self.term()?;
            let weight = if maximize {
                Term::BinOp(ArithOp::Sub, Box::new(Term::Int(0)), Box::new(weight))
            } else {
                weight
            };
            let mut priority = 0i64;
            if self.at(&TokenKind::At) {
                self.bump();
                match self.bump() {
                    TokenKind::Int(p) => priority = p,
                    other => {
                        return Err(self.error(&format!("expected priority, found `{other}`")))
                    }
                }
            }
            let mut terms = Vec::new();
            while self.at(&TokenKind::Comma) {
                self.bump();
                terms.push(self.term()?);
            }
            let mut condition = Vec::new();
            if self.at(&TokenKind::Colon) {
                self.bump();
                condition = self.literals_until(&[TokenKind::Semi, TokenKind::RBrace])?;
            }
            let elem = MinimizeElement { weight, terms, condition };
            match by_prio.iter_mut().find(|(p, _)| *p == priority) {
                Some((_, v)) => v.push(elem),
                None => by_prio.push((priority, vec![elem])),
            }
            if self.at(&TokenKind::Semi) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Dot)?;
        Ok(by_prio
            .into_iter()
            .map(|(priority, elements)| Statement::Minimize { priority, elements })
            .collect())
    }

    fn rule(&mut self) -> Result<Vec<Statement>, AspError> {
        let head = if self.at(&TokenKind::If) {
            Head::None
        } else {
            self.head()?
        };
        let body = if self.at(&TokenKind::If) {
            self.bump();
            self.literals_until(&[TokenKind::Dot])?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::Dot)?;
        let rule = Rule { head, body };
        // Expand interval facts: p(1..3). -> p(1). p(2). p(3).
        let expanded = expand_intervals(rule).map_err(|m| self.error(&m))?;
        for r in &expanded {
            r.check_safety()?;
        }
        Ok(expanded.into_iter().map(Statement::Rule).collect())
    }

    fn head(&mut self) -> Result<Head, AspError> {
        // Possible: `atom`, `{...}`, `n {...} m`.
        let lower = match (self.peek(), self.peek2()) {
            (TokenKind::Int(n), TokenKind::LBrace) if *n >= 0 => {
                let n = *n as u32;
                self.bump();
                Some(n)
            }
            _ => None,
        };
        if self.at(&TokenKind::LBrace) {
            self.bump();
            let mut elements = Vec::new();
            if !self.at(&TokenKind::RBrace) {
                loop {
                    let atom = self.atom()?;
                    let mut condition = Vec::new();
                    if self.at(&TokenKind::Colon) {
                        self.bump();
                        condition =
                            self.literals_until(&[TokenKind::Semi, TokenKind::RBrace])?;
                    }
                    elements.push(ChoiceElement { atom, condition });
                    if self.at(&TokenKind::Semi) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RBrace)?;
            let upper = match self.peek() {
                TokenKind::Int(n) if *n >= 0 => {
                    let n = *n as u32;
                    self.bump();
                    Some(n)
                }
                _ => None,
            };
            Ok(Head::Choice { lower, upper, elements })
        } else if lower.is_some() {
            Err(self.error("expected `{` after cardinality bound"))
        } else {
            Ok(Head::Atom(self.atom()?))
        }
    }

    /// Parse a comma-separated literal list, stopping (without consuming)
    /// at the first non-comma token — the caller's terminator `expect`
    /// reports malformed input precisely.
    fn literals_until(&mut self, _stops: &[TokenKind]) -> Result<Vec<Literal>, AspError> {
        let mut out = Vec::new();
        loop {
            out.push(self.literal()?);
            if self.at(&TokenKind::Comma) {
                self.bump();
            } else {
                // Stop at any terminator (or on malformed input, which the
                // caller's `expect` will report precisely).
                break;
            }
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, AspError> {
        if self.at(&TokenKind::Not) {
            self.bump();
            return Ok(Literal::Neg(self.atom()?));
        }
        // Parse a term; if a comparison operator follows it is a builtin.
        let lhs = self.term()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.term()?;
            return Ok(Literal::Cmp(op, lhs, rhs));
        }
        match lhs {
            Term::Const(name) => Ok(Literal::Pos(Atom::prop(name))),
            Term::Func(name, args) => Ok(Literal::Pos(Atom::new(name, args))),
            other => Err(self.error(&format!("`{other}` is not a valid literal"))),
        }
    }

    fn atom(&mut self) -> Result<Atom, AspError> {
        match self.bump() {
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.at(&TokenKind::Comma) {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Atom::new(name, args))
                } else {
                    Ok(Atom::prop(name))
                }
            }
            other => Err(self.error(&format!("expected atom, found `{other}`"))),
        }
    }

    fn term(&mut self) -> Result<Term, AspError> {
        let lhs = self.add_expr()?;
        // Interval `a..b` — represented as the reserved functor `#range`.
        if self.at(&TokenKind::DotDot) {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Term::Func("#range".into(), vec![lhs, rhs]));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Term, AspError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Term::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Term, AspError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Term::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Term, AspError> {
        if self.at(&TokenKind::Minus) {
            self.bump();
            let t = self.unary()?;
            return Ok(match t {
                Term::Int(i) => Term::Int(-i),
                other => {
                    Term::BinOp(ArithOp::Sub, Box::new(Term::Int(0)), Box::new(other))
                }
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Term, AspError> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Term::Int(i)),
            TokenKind::Str(s) => Ok(Term::Str(s)),
            TokenKind::Variable(v) => Ok(Term::Var(v)),
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.at(&TokenKind::Comma) {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Term::Func(name, args))
                } else {
                    Ok(Term::Const(name))
                }
            }
            TokenKind::LParen => {
                let t = self.term()?;
                self.expect(&TokenKind::RParen)?;
                Ok(t)
            }
            other => Err(self.error(&format!("expected term, found `{other}`"))),
        }
    }
}

/// Expand `#range` interval terms in fact heads; reject them elsewhere.
fn expand_intervals(rule: Rule) -> Result<Vec<Rule>, String> {
    fn has_range(t: &Term) -> bool {
        match t {
            Term::Func(f, args) => f == "#range" || args.iter().any(has_range),
            Term::BinOp(_, a, b) => has_range(a) || has_range(b),
            _ => false,
        }
    }
    let head_atom_ranges = match &rule.head {
        Head::Atom(a) => a.args.iter().any(has_range),
        Head::Choice { elements, .. } => elements.iter().any(|e| {
            e.atom.args.iter().any(has_range)
                || e.condition.iter().any(literal_has_range)
        }),
        Head::None => false,
    };
    fn literal_has_range(l: &Literal) -> bool {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => a.args.iter().any(has_range),
            Literal::Cmp(_, x, y) => has_range(x) || has_range(y),
        }
    }
    if rule.body.iter().any(literal_has_range) {
        return Err("intervals `l..u` are only supported in fact heads".into());
    }
    if !head_atom_ranges {
        return Ok(vec![rule]);
    }
    let (atom, is_fact) = match (&rule.head, rule.body.is_empty()) {
        (Head::Atom(a), true) => (a.clone(), true),
        _ => (Atom::prop("x"), false),
    };
    if !is_fact {
        return Err("intervals `l..u` are only supported in fact heads".into());
    }
    // Cartesian expansion of every range argument.
    let mut results: Vec<Vec<Term>> = vec![Vec::new()];
    for arg in &atom.args {
        let choices: Vec<Term> = match arg {
            Term::Func(f, bounds) if f == "#range" => {
                let lo = bounds[0].eval().map_err(|e| e.to_string())?;
                let hi = bounds[1].eval().map_err(|e| e.to_string())?;
                match (lo, hi) {
                    (Term::Int(l), Term::Int(h)) if l <= h && (h - l) <= 100_000 => {
                        (l..=h).map(Term::Int).collect()
                    }
                    (l, h) => return Err(format!("invalid interval {l}..{h}")),
                }
            }
            other => vec![other.clone()],
        };
        let mut next = Vec::with_capacity(results.len() * choices.len());
        for prefix in &results {
            for c in &choices {
                let mut row = prefix.clone();
                row.push(c.clone());
                next.push(row);
            }
        }
        results = next;
    }
    Ok(results
        .into_iter()
        .map(|args| Rule::fact(Atom::new(atom.pred.clone(), args)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("parse failed for `{src}`: {e}"))
    }

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_ok("p(a). q(X) :- p(X).");
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.statements[0].to_string(), "p(a).");
        assert_eq!(p.statements[1].to_string(), "q(X) :- p(X).");
    }

    #[test]
    fn parses_paper_listing_1() {
        let p = parse_ok(
            "potential_fault(C, F) :- component(C), fault(F), \
             mitigation(F, M), not active_mitigation(C, M).",
        );
        assert_eq!(
            p.statements[0].to_string(),
            "potential_fault(C,F) :- component(C), fault(F), mitigation(F,M), not active_mitigation(C,M)."
        );
    }

    #[test]
    fn parses_paper_listing_2() {
        let p = parse_ok(
            "component_state(C, X) :- prev_component_state(C, X), active_fault(C, stuck_at_x).",
        );
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn parses_constraints() {
        let p = parse_ok(":- violated(r1), not acceptable.");
        assert!(matches!(
            &p.statements[0],
            Statement::Rule(Rule { head: Head::None, .. })
        ));
    }

    #[test]
    fn parses_choice_rules_with_bounds_and_conditions() {
        let p = parse_ok("1 { active(F) : potential(F) } 2 :- trigger.");
        match &p.statements[0] {
            Statement::Rule(Rule { head: Head::Choice { lower, upper, elements }, body }) => {
                assert_eq!(*lower, Some(1));
                assert_eq!(*upper, Some(2));
                assert_eq!(elements.len(), 1);
                assert_eq!(elements[0].condition.len(), 1);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected choice rule, got {other:?}"),
        }
    }

    #[test]
    fn parses_unbounded_choice() {
        let p = parse_ok("{ a; b; c }.");
        match &p.statements[0] {
            Statement::Rule(Rule { head: Head::Choice { lower, upper, elements }, .. }) => {
                assert_eq!(*lower, None);
                assert_eq!(*upper, None);
                assert_eq!(elements.len(), 3);
            }
            other => panic!("expected choice rule, got {other:?}"),
        }
    }

    #[test]
    fn parses_comparisons_and_arithmetic() {
        let p = parse_ok("p(Y) :- q(X), Y = X + 1, Y < 10, X != 3.");
        assert_eq!(p.statements[0].to_string(), "p(Y) :- q(X), Y = (X+1), Y < 10, X != 3.");
    }

    #[test]
    fn expands_interval_facts() {
        let p = parse_ok("n(1..3).");
        let texts: Vec<String> = p.statements.iter().map(ToString::to_string).collect();
        assert_eq!(texts, vec!["n(1).", "n(2).", "n(3)."]);
        // Multi-dimensional expansion.
        let p2 = parse_ok("cell(1..2, 1..2).");
        assert_eq!(p2.statements.len(), 4);
    }

    #[test]
    fn rejects_intervals_outside_facts() {
        assert!(parse_program("p(X) :- q(1..3).").is_err());
    }

    #[test]
    fn parses_minimize_with_priorities() {
        let p = parse_ok("#minimize { 1@2,F : active(F); Cost,M : chosen(M), cost(M, Cost) }.");
        let prios: Vec<i64> = p
            .statements
            .iter()
            .filter_map(|s| match s {
                Statement::Minimize { priority, .. } => Some(*priority),
                _ => None,
            })
            .collect();
        assert_eq!(prios.len(), 2);
        assert!(prios.contains(&2));
        assert!(prios.contains(&0));
    }

    #[test]
    fn parses_maximize_as_negated_minimize() {
        let p = parse_ok("#maximize { 3 : good }.");
        match &p.statements[0] {
            Statement::Minimize { elements, .. } => {
                assert_eq!(elements[0].weight.eval().unwrap(), Term::Int(-3));
            }
            other => panic!("expected minimize, got {other:?}"),
        }
    }

    #[test]
    fn parses_show_directive() {
        let p = parse_ok("#show violated/1.");
        assert_eq!(p.statements[0], Statement::Show { pred: "violated".into(), arity: 1 });
    }

    #[test]
    fn rejects_unsafe_rules_at_parse_time() {
        assert!(matches!(
            parse_program("p(X) :- not q(X)."),
            Err(AspError::UnsafeRule { .. })
        ));
        assert!(matches!(
            parse_program("p(X, Y) :- q(X)."),
            Err(AspError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn choice_element_condition_makes_vars_safe() {
        // F is bound by the element condition, not the body — must be safe.
        assert!(parse_program("{ active(F) : potential(F) }.").is_ok());
        // G is bound nowhere — unsafe.
        assert!(parse_program("{ active(G) }.").is_err());
    }

    #[test]
    fn negative_numbers_and_parens() {
        let p = parse_ok("p(-3). q(X) :- p(X), X < -(1 + 1).");
        assert!(p.statements[0].to_string().contains("-3"));
    }

    #[test]
    fn reports_position_on_error() {
        let err = parse_program("p(a)\nq(b).").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn strings_as_terms() {
        let p = parse_ok(r#"name(c1, "Engineering Workstation")."#);
        assert!(p.statements[0].to_string().contains("\"Engineering Workstation\""));
    }

    #[test]
    fn propositional_atoms() {
        let p = parse_ok("a :- b, not c.");
        assert_eq!(p.statements[0].to_string(), "a :- b, not c.");
    }
}
