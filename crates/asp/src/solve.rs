//! Stable-model search: propagation, backtracking, enumeration and
//! branch-and-bound optimization.
//!
//! The solver follows the smodels recipe: alternate *Fitting propagation*
//! (forward/backward inference on rules) with *unfounded-set falsification*
//! (atoms outside the can-be-true closure are false), branch on an unknown
//! atom, and backtrack chronologically. Every complete assignment is
//! verified with the independent [`check`] module before it is
//! reported, so the engine's soundness rests on the textbook definition
//! rather than on the propagation code.

use std::collections::HashSet;

use crate::ast::Atom;
use crate::check;
use crate::error::AspError;
use crate::program::{AtomId, GroundHead, GroundProgram, MinimizeLit};

/// Truth value during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    Unknown,
    True,
    False,
}

/// An assumption literal: a ground atom fixed true or false for the
/// duration of one [`Solver::solve_with_assumptions`] call.
///
/// Assumptions are the multi-shot interface of the solver: a program is
/// grounded once with its scenario atoms left open (choice-supported, see
/// [`Grounder::assumable`](crate::ground::Grounder::assumable)), and each
/// query pins them at decision level 0 instead of re-grounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// The assumed atom.
    pub atom: AtomId,
    /// `true` to assume the atom holds, `false` to assume it does not.
    pub positive: bool,
}

impl Lit {
    /// Assume the atom true.
    #[must_use]
    pub fn pos(atom: AtomId) -> Self {
        Lit {
            atom,
            positive: true,
        }
    }

    /// Assume the atom false.
    #[must_use]
    pub fn neg(atom: AtomId) -> Self {
        Lit {
            atom,
            positive: false,
        }
    }
}

/// Retained learned nogoods are capped at this many entries; conflicts past
/// the cap still backtrack normally, they just stop adding clauses.
const MAX_LEARNED_NOGOODS: usize = 4096;

/// Options controlling enumeration and optimization.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum number of models to enumerate (0 = all).
    pub max_models: usize,
    /// Decision budget; exceeded → [`AspError::SolveBudget`].
    pub max_decisions: u64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_models: 0,
            max_decisions: 50_000_000,
        }
    }
}

/// One answer set.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// All true atoms (sorted by display form).
    pub atoms: Vec<Atom>,
    /// Atoms under the `#show` projection (sorted by display form).
    pub shown: Vec<Atom>,
    /// Objective values per `#minimize` priority, higher priority first.
    pub cost: Vec<(i64, i64)>,
    ids: HashSet<AtomId>,
    /// Display forms of `atoms`, same (sorted) order — precomputed once so
    /// membership probes don't re-render every atom per comparison.
    keys: Vec<String>,
}

impl Model {
    /// True if the model contains the given atom.
    #[must_use]
    pub fn contains(&self, atom: &Atom) -> bool {
        let needle = atom.to_string();
        self.keys
            .binary_search_by(|k| k.as_str().cmp(&needle))
            .is_ok()
    }

    /// True if the model contains an atom whose display form equals `s`
    /// (whitespace-insensitive, e.g. `"p(a, b)"` matches `p(a,b)`).
    #[must_use]
    pub fn contains_str(&self, s: &str) -> bool {
        let needle: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        self.keys
            .binary_search_by(|k| k.as_str().cmp(&needle))
            .is_ok()
    }

    /// All true atoms of a predicate.
    #[must_use]
    pub fn atoms_of(&self, pred: &str) -> Vec<&Atom> {
        self.atoms.iter().filter(|a| a.pred == pred).collect()
    }

    /// The interned ids of the true atoms (solver-internal identities).
    #[must_use]
    pub fn ids(&self) -> &HashSet<AtomId> {
        &self.ids
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for a in &self.shown {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

/// Result of an enumeration run.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The models found (all, up to `max_models`).
    pub models: Vec<Model>,
    /// True if the search space was exhausted (every model was found).
    pub exhausted: bool,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of propagated (non-decision and decision) assignments.
    pub propagations: u64,
    /// Conflicts hit during this call (propagation failures plus complete
    /// assignments that failed the stability check).
    pub conflicts: u64,
}

/// A stable-model solver over one ground program.
///
/// Propagation is occurrence-indexed: each atom knows the rules it occurs
/// in, each rule keeps incremental counts of its false and unknown body
/// literals, and a worklist of touched rules drives Fitting inference —
/// assignments cost O(occurrences) instead of a full program scan per
/// pass. [`Solver::new_reference`] retains the original full-scan pass for
/// differential testing and as the benchmark baseline.
#[derive(Debug)]
pub struct Solver<'a> {
    g: &'a GroundProgram,
    val: Vec<Val>,
    trail: Vec<u32>,
    /// (atom, tried_both) per decision; parallel with `trail_lim`.
    decisions: Vec<(u32, bool)>,
    trail_lim: Vec<usize>,
    decision_count: u64,
    propagation_count: u64,
    /// Use the naive full-scan Fitting pass (pre-index reference engine).
    reference: bool,
    /// Rules where the atom occurs in the positive body (one entry per
    /// occurrence, so duplicate literals keep the counters consistent).
    occ_pos: Vec<Vec<u32>>,
    /// Rules where the atom occurs under `not`.
    occ_neg: Vec<Vec<u32>>,
    /// Rules whose (normal) head is the atom — re-examined when the head
    /// becomes false to enable backward inference.
    occ_head: Vec<Vec<u32>>,
    /// Unique choice atoms in first-occurrence rule order: the branching
    /// candidates, precomputed so decisions don't rescan `g.rules`.
    choice_atoms: Vec<u32>,
    /// Per rule: number of certainly-false body literals.
    n_false: Vec<u32>,
    /// Per rule: number of unknown body literals.
    n_unknown: Vec<u32>,
    /// Worklist of rules touched since last examined.
    queue: std::collections::VecDeque<u32>,
    in_queue: Vec<bool>,
    /// Atom-level tightness certificate of the ground program (positive
    /// dependency graph acyclic — see
    /// [`analysis::ground_tight`](crate::analysis::ground_tight)).
    tight: bool,
    /// Runtime switch for the tight fast path; defaults to on and only
    /// matters when the certificate holds.
    tight_mode: bool,
    /// Per atom: number of defining rules (normal or choice heads).
    support_base: Vec<u32>,
    /// Per atom: defining rules whose bodies are not yet dead. Maintained
    /// incrementally on the `n_false` 0↔1 transitions; an atom at zero can
    /// no longer be supported and must be false. On tight programs this
    /// counter reaches exactly the unfounded-set fixpoint (Fages'
    /// theorem), letting [`Solver::propagate`] skip the closure.
    n_support: Vec<u32>,
    /// Worklist of atoms whose support count reached zero.
    support_zero: Vec<u32>,
    /// Scratch buffers for the unfounded-set closure (reused per call to
    /// avoid re-allocating per propagation fixpoint).
    uf_missing: Vec<u32>,
    uf_in_closure: Vec<bool>,
    uf_stack: Vec<u32>,
    /// Display form of every atom, rendered once at construction; model
    /// building clones these instead of re-rendering per model.
    display: Vec<String>,
    /// All atom ids ordered by display form, so each model's sorted atom
    /// list is a filtered scan instead of a per-model sort.
    sorted_ids: Vec<u32>,
    /// Per atom: passes the `#show` projection.
    shown_flags: Vec<bool>,
    /// The current call's assumption literals `(atom, assumed value)`,
    /// assigned at decision level 0 and embedded in every learned nogood so
    /// the nogood stays valid under *different* assumptions later.
    assumptions: Vec<(u32, Val)>,
    /// Learned conflict nogoods: sets of `(atom, value)` literals no stable
    /// model satisfies simultaneously. **Retained across solve calls** —
    /// this is the payoff of reusing one solver over many assumption sets.
    nogoods: Vec<Vec<(u32, Val)>>,
    /// Dedup index over `nogoods`.
    nogood_set: HashSet<Vec<(u32, Val)>>,
    /// Conflicts hit during the current call.
    conflict_count: u64,
    /// Conflicts hit over the solver's whole lifetime — unlike
    /// `conflict_count` this survives the per-call reset, so a caller
    /// streaming many assumption queries can report aggregate statistics.
    lifetime_conflicts: u64,
    /// Assignments forced by unit nogoods during the current call.
    nogood_force_count: u64,
    /// Branches abandoned by the branch-and-bound prune hook (current call).
    bound_prune_count: u64,
    /// The well-founded model of the ground program, computed once at
    /// construction (never on the reference engine, which stays a pure
    /// search oracle). Sound for every solve call: its verdicts hold in
    /// every stable model regardless of assumptions.
    wfm: Option<crate::analysis::wfm::WfmResult>,
    /// The WFM verdicts as level-0 assignments, pre-flattened so each
    /// solve call replays them without re-walking the truth vector. When
    /// the WFM is total the seeds decide every atom and the search
    /// returns without a single decision.
    wfm_seeds: Vec<(u32, Val)>,
}

impl<'a> Solver<'a> {
    /// Create a solver for a ground program.
    #[must_use]
    pub fn new(program: &'a GroundProgram) -> Self {
        Solver::build(program, false)
    }

    /// A solver using the retained naive full-scan propagation pass.
    ///
    /// Semantically identical to [`Solver::new`]; kept as the differential
    /// testing oracle and the `cpsrisk bench` baseline engine.
    #[must_use]
    pub fn new_reference(program: &'a GroundProgram) -> Self {
        Solver::build(program, true)
    }

    fn build(program: &'a GroundProgram, reference: bool) -> Self {
        let n_atoms = program.atom_count();
        let n_rules = program.rules.len();
        let mut occ_pos = vec![Vec::new(); if reference { 0 } else { n_atoms }];
        let mut occ_neg = vec![Vec::new(); if reference { 0 } else { n_atoms }];
        let mut occ_head = vec![Vec::new(); if reference { 0 } else { n_atoms }];
        let mut choice_atoms = Vec::new();
        let mut choice_seen = vec![false; n_atoms];
        let mut support_base = vec![0u32; if reference { 0 } else { n_atoms }];
        for (ri, r) in program.rules.iter().enumerate() {
            if !reference {
                for &p in &r.pos {
                    occ_pos[p.index()].push(ri as u32);
                }
                for &n in &r.neg {
                    occ_neg[n.index()].push(ri as u32);
                }
                if let GroundHead::Atom(h) = r.head {
                    occ_head[h.index()].push(ri as u32);
                }
                if let GroundHead::Atom(h) | GroundHead::Choice(h) = r.head {
                    support_base[h.index()] += 1;
                }
            }
            if let GroundHead::Choice(h) = r.head {
                if !choice_seen[h.index()] {
                    choice_seen[h.index()] = true;
                    choice_atoms.push(h.0);
                }
            }
        }
        let wfm = if reference {
            None
        } else {
            Some(crate::analysis::well_founded(program))
        };
        let display: Vec<String> = program.atoms().map(|(_, a)| a.to_string()).collect();
        let mut sorted_ids: Vec<u32> = (0..n_atoms as u32).collect();
        sorted_ids.sort_by(|&a, &b| display[a as usize].cmp(&display[b as usize]));
        let shown_flags: Vec<bool> = (0..n_atoms as u32)
            .map(|i| program.shown(AtomId(i)))
            .collect();
        Solver {
            g: program,
            val: vec![Val::Unknown; n_atoms],
            trail: Vec::new(),
            decisions: Vec::new(),
            trail_lim: Vec::new(),
            decision_count: 0,
            propagation_count: 0,
            reference,
            occ_pos,
            occ_neg,
            occ_head,
            tight: !reference && crate::analysis::ground_tight(program),
            tight_mode: true,
            support_base,
            n_support: vec![0; if reference { 0 } else { n_atoms }],
            support_zero: Vec::new(),
            choice_atoms,
            n_false: vec![0; if reference { 0 } else { n_rules }],
            n_unknown: vec![0; if reference { 0 } else { n_rules }],
            queue: std::collections::VecDeque::new(),
            in_queue: vec![false; if reference { 0 } else { n_rules }],
            uf_missing: vec![0; if reference { 0 } else { n_rules }],
            uf_in_closure: vec![false; if reference { 0 } else { n_atoms }],
            uf_stack: Vec::new(),
            display,
            sorted_ids,
            shown_flags,
            assumptions: Vec::new(),
            nogoods: Vec::new(),
            nogood_set: HashSet::new(),
            conflict_count: 0,
            lifetime_conflicts: 0,
            nogood_force_count: 0,
            bound_prune_count: 0,
            wfm_seeds: match &wfm {
                Some(w) => w
                    .true_atoms()
                    .map(|id| (id.0, Val::True))
                    .chain(w.false_atoms().map(|id| (id.0, Val::False)))
                    .collect(),
                None => Vec::new(),
            },
            wfm,
        }
    }

    /// Number of branching decisions made so far.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decision_count
    }

    /// Number of assignments propagated so far (including decisions).
    #[must_use]
    pub fn propagations(&self) -> u64 {
        self.propagation_count
    }

    /// Number of learned conflict nogoods currently retained.
    #[must_use]
    pub fn learned_nogoods(&self) -> usize {
        self.nogoods.len()
    }

    /// Conflicts hit over the solver's whole lifetime (across every
    /// assumption call since construction).
    #[must_use]
    pub fn total_conflicts(&self) -> u64 {
        self.lifetime_conflicts
    }

    /// Assignments forced by unit nogoods during the last call.
    #[must_use]
    pub fn nogood_propagations(&self) -> u64 {
        self.nogood_force_count
    }

    /// Branches abandoned by branch-and-bound pruning during the last call.
    #[must_use]
    pub fn bound_prunes(&self) -> u64 {
        self.bound_prune_count
    }

    /// Whether this solver holds a tightness certificate for its ground
    /// program: the atom-level positive dependency graph is acyclic, so
    /// supported models are stable models (Fages' theorem) and the
    /// unfounded-set closure is replaced by incremental support counting.
    /// Always `false` on the reference engine (it never computes the
    /// certificate).
    #[must_use]
    pub fn tight(&self) -> bool {
        self.tight
    }

    /// Enable or disable the tight-program fast path (default: enabled).
    ///
    /// Only affects programs whose certificate holds — non-tight programs
    /// always run the unfounded-set closure. Disabling it on a tight
    /// program is sound (the closure subsumes support counting); the
    /// switch exists so benchmarks can measure the fast path against the
    /// closure on identical inputs. Takes effect at the next solve call.
    pub fn set_tight_mode(&mut self, on: bool) {
        self.tight_mode = on;
    }

    fn use_tight(&self) -> bool {
        self.tight && self.tight_mode && !self.reference
    }

    /// Drop every retained learned nogood (e.g. to measure their effect).
    pub fn clear_learned(&mut self) {
        self.nogoods.clear();
        self.nogood_set.clear();
    }

    /// The well-founded model computed at construction, or `None` on the
    /// reference engine. Its true/false verdicts hold in every stable
    /// model, so callers can answer cautious/brave membership for decided
    /// atoms without searching.
    #[must_use]
    pub fn wfm(&self) -> Option<&crate::analysis::wfm::WfmResult> {
        self.wfm.as_ref()
    }

    /// Replay the WFM verdicts as level-0 assignments. Returns false when
    /// a seed conflicts with an already-assigned value (an assumption
    /// contradicting the backbone — no stable model can satisfy it).
    fn seed_wfm(&mut self) -> bool {
        for i in 0..self.wfm_seeds.len() {
            let (atom, v) = self.wfm_seeds[i];
            if !self.set(AtomId(atom), v) {
                return false;
            }
        }
        true
    }

    /// Per-call setup shared by every solve entry point: reset, pin the
    /// assumptions at level 0, then seed the WFM backbone. False means the
    /// search space is empty before the first decision.
    fn prepare(&mut self, assumptions: &[Lit]) -> bool {
        self.reset();
        self.apply_assumptions(assumptions) && self.seed_wfm()
    }

    /// Enumerate answer sets (ignoring `#minimize`).
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the decision budget is exceeded.
    pub fn enumerate(&mut self, opts: &SolveOptions) -> Result<SolveResult, AspError> {
        self.solve_with_assumptions(&[], opts)
    }

    /// Enumerate answer sets with the given atoms fixed at decision level 0.
    ///
    /// The solver is fully reset between calls (trail, decisions, counters),
    /// so one instance answers any number of assumption sets over the same
    /// ground program; learned conflict nogoods are **retained** across
    /// calls and keep pruning later queries. Contradictory assumptions (or
    /// assumptions the program refutes outright) yield zero models with
    /// `exhausted = true`.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the decision budget is exceeded.
    pub fn solve_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        opts: &SolveOptions,
    ) -> Result<SolveResult, AspError> {
        let mut models = Vec::new();
        let exhausted = if self.prepare(assumptions) {
            self.search(
                opts,
                &mut |m| {
                    models.push(m);
                    opts.max_models == 0 || models.len() < opts.max_models
                },
                &mut |_| false,
            )?
        } else {
            true // assumptions contradict each other: empty search space
        };
        Ok(SolveResult {
            models,
            exhausted,
            decisions: self.decision_count,
            propagations: self.propagation_count,
            conflicts: self.conflict_count,
        })
    }

    /// Assign the assumption literals at decision level 0 (before the first
    /// `trail_lim`, so backtracking never undoes them). Returns false if the
    /// assumptions are contradictory among themselves.
    fn apply_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        let mut ok = true;
        for l in assumptions {
            let v = if l.positive { Val::True } else { Val::False };
            self.assumptions.push((l.atom.0, v));
            ok = ok && self.set(l.atom, v);
        }
        ok
    }

    /// Find one optimal model w.r.t. the program's `#minimize` statements
    /// by branch-and-bound: partial assignments whose highest-priority cost
    /// lower bound cannot beat the incumbent are pruned. Returns `None`
    /// for inconsistent programs. With no `#minimize` statements this
    /// returns the first model found.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the decision budget is exceeded.
    pub fn optimize(&mut self, opts: &SolveOptions) -> Result<Option<Model>, AspError> {
        self.optimize_with_assumptions(&[], opts)
    }

    /// [`Solver::optimize`] with atoms fixed at decision level 0; see
    /// [`Solver::solve_with_assumptions`] for the reuse contract. Returns
    /// `None` when the assumptions are contradictory or the program has no
    /// stable model under them.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the decision budget is exceeded.
    pub fn optimize_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        opts: &SolveOptions,
    ) -> Result<Option<Model>, AspError> {
        if !self.prepare(assumptions) {
            return Ok(None);
        }
        if self.g.minimize.is_empty() {
            let mut found = None;
            self.search(
                opts,
                &mut |m| {
                    found = Some(m);
                    false
                },
                &mut |_| false,
            )?;
            return Ok(found);
        }
        // Lower bounds are only sound for pruning at the highest priority;
        // with several priorities we prune on strict first-component
        // dominance only.
        let single_priority = self.g.minimize.len() == 1;
        let first_lits: Vec<MinimizeLit> = self.g.minimize[0].1.clone();
        let mut best: Option<Model> = None;
        // Shared between the model callback (writer) and the prune hook
        // (reader) without aliasing conflicts.
        let incumbent = std::cell::Cell::new(None::<i64>);
        self.search(
            opts,
            &mut |m| {
                let better = match &best {
                    None => true,
                    Some(b) => cost_vec(&m) < cost_vec(b),
                };
                if better {
                    incumbent.set(m.cost.first().map(|(_, c)| *c));
                    best = Some(m);
                }
                true
            },
            &mut |solver| {
                let Some(bound) = incumbent.get() else {
                    return false;
                };
                let lb = solver.first_priority_lower_bound(&first_lits);
                lb > bound || (single_priority && lb >= bound)
            },
        )?;
        Ok(best)
    }

    /// Lower bound of the highest-priority objective under the current
    /// partial assignment: definitely-satisfied elements count fully;
    /// still-open negative-weight elements are assumed to fire.
    fn first_priority_lower_bound(&self, lits: &[MinimizeLit]) -> i64 {
        use std::collections::HashMap;
        // Key -> (definite, open_with_negative_weight, weight)
        let mut per_key: HashMap<(i64, &[crate::ast::Term]), (bool, bool)> = HashMap::new();
        for l in lits {
            let impossible = l.pos.iter().any(|&p| self.value(p) == Val::False)
                || l.neg.iter().any(|&q| self.value(q) == Val::True);
            if impossible {
                continue;
            }
            let definite = l.pos.iter().all(|&p| self.value(p) == Val::True)
                && l.neg.iter().all(|&q| self.value(q) == Val::False);
            let entry = per_key
                .entry((l.weight, l.tuple.as_slice()))
                .or_insert((false, false));
            entry.0 |= definite;
            entry.1 |= !definite && l.weight < 0;
        }
        per_key
            .into_iter()
            .map(|((w, _), (definite, open_neg))| if definite || open_neg { w } else { 0 })
            .sum()
    }

    /// Brave consequences: atoms true in **some** answer set.
    ///
    /// Maintains a running union over the enumeration, marking membership
    /// by [`AtomId`] instead of materializing models and stringifying
    /// atoms. WFM-false atoms bound the union from above: once every atom
    /// the WFM does not refute has appeared, enumeration stops early.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the decision budget is exceeded.
    pub fn brave(&mut self, opts: &SolveOptions) -> Result<Vec<Atom>, AspError> {
        if !self.prepare(&[]) {
            return Ok(Vec::new());
        }
        let n = self.g.atom_count();
        let cap = n - self.wfm.as_ref().map_or(0, |w| w.false_count);
        let mut in_some = vec![false; n];
        let mut marked = 0usize;
        let mut models_seen = 0usize;
        self.search(
            opts,
            &mut |m| {
                models_seen += 1;
                for id in m.ids() {
                    if !in_some[id.index()] {
                        in_some[id.index()] = true;
                        marked += 1;
                    }
                }
                marked < cap && (opts.max_models == 0 || models_seen < opts.max_models)
            },
            &mut |_| false,
        )?;
        Ok(self.collect_sorted(&in_some))
    }

    /// Cautious consequences: atoms true in **every** answer set
    /// (empty if the program is inconsistent).
    ///
    /// Maintains a running intersection over the enumeration (by
    /// [`AtomId`], no per-model materialization) and stops as soon as it
    /// can no longer shrink: the intersection never drops below the WFM
    /// backbone, so reaching it — the empty set on programs with no
    /// backbone — ends the search early.
    ///
    /// # Errors
    ///
    /// [`AspError::SolveBudget`] if the decision budget is exceeded.
    pub fn cautious(&mut self, opts: &SolveOptions) -> Result<Vec<Atom>, AspError> {
        if !self.prepare(&[]) {
            return Ok(Vec::new());
        }
        let floor = self.wfm.as_ref().map_or(0, |w| w.true_count);
        let mut candidates: Option<Vec<AtomId>> = None;
        let mut models_seen = 0usize;
        self.search(
            opts,
            &mut |m| {
                models_seen += 1;
                match &mut candidates {
                    None => candidates = Some(m.ids().iter().copied().collect()),
                    Some(c) => c.retain(|id| m.ids().contains(id)),
                }
                candidates.as_ref().expect("just set").len() > floor
                    && (opts.max_models == 0 || models_seen < opts.max_models)
            },
            &mut |_| false,
        )?;
        let mut in_all = vec![false; self.g.atom_count()];
        for id in candidates.unwrap_or_default() {
            in_all[id.index()] = true;
        }
        Ok(self.collect_sorted(&in_all))
    }

    /// The marked atoms in display order (the order models print in).
    fn collect_sorted(&self, marked: &[bool]) -> Vec<Atom> {
        self.sorted_ids
            .iter()
            .filter(|&&i| marked[i as usize])
            .map(|&i| self.g.atom(AtomId(i)).clone())
            .collect()
    }

    /// Full per-call reset: assignment, trail, decisions and counters are
    /// cleared, rule counters and the propagation worklist re-initialized.
    /// Learned nogoods survive on purpose — they are program-level facts.
    fn reset(&mut self) {
        self.val.fill(Val::Unknown);
        self.trail.clear();
        self.decisions.clear();
        self.trail_lim.clear();
        self.decision_count = 0;
        self.propagation_count = 0;
        self.assumptions.clear();
        self.conflict_count = 0;
        self.nogood_force_count = 0;
        self.bound_prune_count = 0;
        if self.reference {
            return;
        }
        self.queue.clear();
        for (ri, r) in self.g.rules.iter().enumerate() {
            self.n_false[ri] = 0;
            self.n_unknown[ri] = (r.pos.len() + r.neg.len()) as u32;
            self.in_queue[ri] = true;
            self.queue.push_back(ri as u32);
        }
        self.support_zero.clear();
        if self.use_tight() {
            self.n_support.copy_from_slice(&self.support_base);
            for (a, &base) in self.support_base.iter().enumerate() {
                if base == 0 {
                    // No defining rule at all: unfounded from the start.
                    self.support_zero.push(a as u32);
                }
            }
        }
    }

    /// Core DFS. `on_model` returns `false` to stop the search early;
    /// `prune` returning `true` abandons the current branch (used by
    /// branch-and-bound). Returns whether the search space was exhausted.
    fn search(
        &mut self,
        opts: &SolveOptions,
        on_model: &mut dyn FnMut(Model) -> bool,
        prune: &mut dyn FnMut(&Self) -> bool,
    ) -> Result<bool, AspError> {
        let mut ok = self.propagate_or_learn();
        loop {
            if ok && prune(self) {
                // Bound prunes depend on the current incumbent, so no
                // nogood is learned here — it would be unsound to retain.
                self.bound_prune_count += 1;
                ok = false;
            }
            if !ok {
                if !self.backtrack() {
                    return Ok(true);
                }
                ok = self.propagate_or_learn();
                continue;
            }
            match self.pick_unknown() {
                Some(a) => {
                    self.decision_count += 1;
                    if self.decision_count > opts.max_decisions {
                        return Err(AspError::SolveBudget {
                            limit: opts.max_decisions,
                        });
                    }
                    self.decisions.push((a, false));
                    self.trail_lim.push(self.trail.len());
                    self.assign(a, Val::True);
                    ok = self.propagate_or_learn();
                }
                None => {
                    let candidate: HashSet<AtomId> = self
                        .val
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| **v == Val::True)
                        .map(|(i, _)| AtomId(i as u32))
                        .collect();
                    if check::is_stable_model(self.g, &candidate) {
                        let model = self.build_model(candidate);
                        if !on_model(model) {
                            return Ok(false);
                        }
                    } else {
                        // Every assignment on the trail is either an
                        // assumption, a decision, or a sound inference from
                        // them, so this non-model leaf refutes the whole
                        // {assumptions ∪ decisions} combination.
                        self.learn_conflict();
                    }
                    ok = false; // keep searching
                }
            }
        }
    }

    /// Propagate to fixpoint; on conflict, record a learned nogood over the
    /// current assumption and decision literals before reporting failure.
    fn propagate_or_learn(&mut self) -> bool {
        if self.propagate() {
            return true;
        }
        self.learn_conflict();
        false
    }

    /// Learn the conflict nogood {assumption literals ∪ decision literals}.
    ///
    /// Sound across assumption calls: every propagation step (Fitting,
    /// cardinality, unfounded-set, unit nogood) only infers literals that
    /// hold in *every* stable model extending the current prefix, so a
    /// conflict — or a complete assignment failing the independent stability
    /// check — proves no stable model satisfies the prefix. Embedding the
    /// assumption literals keeps the clause valid when later calls assume
    /// differently. Never called for branch-and-bound prunes (those depend
    /// on the incumbent) or after reported models (re-enumeration must stay
    /// possible).
    fn learn_conflict(&mut self) {
        self.conflict_count += 1;
        self.lifetime_conflicts += 1;
        if self.nogoods.len() >= MAX_LEARNED_NOGOODS {
            return;
        }
        let mut ng: Vec<(u32, Val)> =
            Vec::with_capacity(self.assumptions.len() + self.decisions.len());
        ng.extend(self.assumptions.iter().copied());
        for &(a, _) in &self.decisions {
            ng.push((a, self.val[a as usize]));
        }
        // An empty nogood means the program itself is inconsistent; nothing
        // worth storing (the search concludes that on its own).
        if ng.is_empty() || !self.nogood_set.insert(ng.clone()) {
            return;
        }
        self.nogoods.push(ng);
    }

    /// Unit propagation over the learned nogoods: a fully satisfied nogood
    /// is a conflict; a nogood with exactly one unknown literal and every
    /// other literal satisfied forces that literal's complement.
    fn nogood_pass(&mut self) -> bool {
        if self.nogoods.is_empty() {
            return true;
        }
        // Temporarily move the store out so forcing can borrow `self`
        // mutably; nothing in `set`/`assign` touches the store.
        let nogoods = std::mem::take(&mut self.nogoods);
        let ok = self.nogood_pass_inner(&nogoods);
        self.nogoods = nogoods;
        ok
    }

    fn nogood_pass_inner(&mut self, nogoods: &[Vec<(u32, Val)>]) -> bool {
        'outer: for ng in nogoods {
            let mut unknown: Option<(u32, Val)> = None;
            for &(a, v) in ng {
                match self.val[a as usize] {
                    Val::Unknown => {
                        if unknown.is_some() {
                            continue 'outer; // two unknowns: nothing to do
                        }
                        unknown = Some((a, v));
                    }
                    cur if cur == v => {}
                    _ => continue 'outer, // a literal is falsified: inert
                }
            }
            match unknown {
                None => return false, // every literal satisfied: conflict
                Some((a, v)) => {
                    let complement = if v == Val::True {
                        Val::False
                    } else {
                        Val::True
                    };
                    self.nogood_force_count += 1;
                    if !self.set(AtomId(a), complement) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Chronological backtracking; returns false when the search is done.
    fn backtrack(&mut self) -> bool {
        loop {
            let Some((atom, tried_both)) = self.decisions.pop() else {
                return false;
            };
            let lim = self.trail_lim.pop().expect("trail_lim parallels decisions");
            while self.trail.len() > lim {
                let a = self.trail.pop().expect("trail len checked");
                self.unassign(a);
            }
            if !tried_both {
                self.decisions.push((atom, true));
                self.trail_lim.push(self.trail.len());
                self.assign(atom, Val::False);
                return true;
            }
        }
    }

    fn assign(&mut self, atom: u32, v: Val) {
        debug_assert_eq!(self.val[atom as usize], Val::Unknown);
        self.val[atom as usize] = v;
        self.trail.push(atom);
        self.propagation_count += 1;
        if self.reference {
            return;
        }
        let ai = atom as usize;
        let tight = self.use_tight();
        for i in 0..self.occ_pos[ai].len() {
            let r = self.occ_pos[ai][i] as usize;
            self.n_unknown[r] -= 1;
            if v == Val::False {
                self.n_false[r] += 1;
                if tight && self.n_false[r] == 1 {
                    self.support_dec(r);
                }
            }
            self.enqueue(r);
        }
        for i in 0..self.occ_neg[ai].len() {
            let r = self.occ_neg[ai][i] as usize;
            self.n_unknown[r] -= 1;
            if v == Val::True {
                self.n_false[r] += 1;
                if tight && self.n_false[r] == 1 {
                    self.support_dec(r);
                }
            }
            self.enqueue(r);
        }
        if v == Val::False {
            // A falsified head may enable backward inference on its rules.
            for i in 0..self.occ_head[ai].len() {
                let r = self.occ_head[ai][i] as usize;
                self.enqueue(r);
            }
        }
    }

    /// A rule body just died: its head lost one potential support.
    fn support_dec(&mut self, ri: usize) {
        let h = match self.g.rules[ri].head {
            GroundHead::Atom(h) | GroundHead::Choice(h) => h,
            GroundHead::None => return,
        };
        self.n_support[h.index()] -= 1;
        if self.n_support[h.index()] == 0 {
            self.support_zero.push(h.0);
        }
    }

    /// A rule body came back to life (backtracking): restore the support.
    fn support_inc(&mut self, ri: usize) {
        if let GroundHead::Atom(h) | GroundHead::Choice(h) = self.g.rules[ri].head {
            self.n_support[h.index()] += 1;
        }
    }

    /// Undo an assignment (backtracking), reversing the rule counters.
    fn unassign(&mut self, atom: u32) {
        let v = self.val[atom as usize];
        self.val[atom as usize] = Val::Unknown;
        if self.reference {
            return;
        }
        let ai = atom as usize;
        let tight = self.use_tight();
        for i in 0..self.occ_pos[ai].len() {
            let r = self.occ_pos[ai][i] as usize;
            self.n_unknown[r] += 1;
            if v == Val::False {
                self.n_false[r] -= 1;
                if tight && self.n_false[r] == 0 {
                    self.support_inc(r);
                }
            }
        }
        for i in 0..self.occ_neg[ai].len() {
            let r = self.occ_neg[ai][i] as usize;
            self.n_unknown[r] += 1;
            if v == Val::True {
                self.n_false[r] -= 1;
                if tight && self.n_false[r] == 0 {
                    self.support_inc(r);
                }
            }
        }
    }

    fn enqueue(&mut self, rule: usize) {
        if !self.in_queue[rule] {
            self.in_queue[rule] = true;
            self.queue.push_back(rule as u32);
        }
    }

    /// Set with conflict detection. Returns false on conflict.
    fn set(&mut self, atom: AtomId, v: Val) -> bool {
        match self.val[atom.index()] {
            Val::Unknown => {
                self.assign(atom.0, v);
                true
            }
            cur => cur == v,
        }
    }

    fn value(&self, atom: AtomId) -> Val {
        self.val[atom.index()]
    }

    /// Branch preferentially on choice atoms (the decision variables of the
    /// encodings), then on any unknown atom. The choice-atom list is
    /// precomputed once per solver, so a decision costs O(choices) rather
    /// than a scan of every ground rule.
    fn pick_unknown(&self) -> Option<u32> {
        for &a in &self.choice_atoms {
            if self.val[a as usize] == Val::Unknown {
                return Some(a);
            }
        }
        self.val
            .iter()
            .position(|v| *v == Val::Unknown)
            .map(|i| i as u32)
    }

    /// Run propagation to fixpoint; false on conflict.
    fn propagate(&mut self) -> bool {
        if self.reference {
            return self.propagate_reference();
        }
        loop {
            if !self.drain_fitting() {
                return false;
            }
            let before = self.trail.len();
            if !self.card_pass() {
                return false;
            }
            if self.trail.len() != before {
                continue; // new assignments re-enqueued rules
            }
            if !self.nogood_pass() {
                return false;
            }
            if self.trail.len() != before {
                continue;
            }
            if !self.unfounded_pass() {
                return false;
            }
            if self.trail.len() == before {
                return true;
            }
        }
    }

    /// Drain the rule worklist, applying Fitting inference per touched
    /// rule; false on conflict. O(touched rules), not O(program). In tight
    /// mode the zero-support worklist drains alongside: an atom whose last
    /// potential support died is false (and a true one is a conflict) —
    /// on tight programs this is the whole unfounded-set inference.
    fn drain_fitting(&mut self) -> bool {
        loop {
            while let Some(r) = self.queue.pop_front() {
                self.in_queue[r as usize] = false;
                if !self.examine_rule(r as usize) {
                    return false;
                }
            }
            let Some(a) = self.support_zero.pop() else {
                return true;
            };
            if self.n_support[a as usize] > 0 {
                continue; // stale: support restored by backtracking
            }
            match self.val[a as usize] {
                Val::True => return false, // true but unsupportable
                Val::Unknown => self.assign(a, Val::False),
                Val::False => {}
            }
        }
    }

    /// Fitting inference on one rule, using the incremental counters.
    fn examine_rule(&mut self, ri: usize) -> bool {
        if self.n_false[ri] > 0 {
            return true; // body dead: nothing to infer here
        }
        let unknowns = self.n_unknown[ri];
        match self.g.rules[ri].head {
            GroundHead::Atom(h) => {
                if unknowns == 0 {
                    self.set(h, Val::True)
                } else if unknowns == 1 && self.value(h) == Val::False {
                    self.falsify_last_literal(ri)
                } else {
                    true
                }
            }
            GroundHead::None => {
                if unknowns == 0 {
                    false // violated constraint
                } else if unknowns == 1 {
                    self.falsify_last_literal(ri)
                } else {
                    true
                }
            }
            GroundHead::Choice(_) => true,
        }
    }

    /// Backward inference: the rule body must not become satisfied, and
    /// exactly one literal is still unknown — falsify it.
    fn falsify_last_literal(&mut self, ri: usize) -> bool {
        let mut forced = None;
        {
            let r = &self.g.rules[ri];
            for &p in &r.pos {
                if self.value(p) == Val::Unknown {
                    forced = Some((p, Val::False));
                    break;
                }
            }
            if forced.is_none() {
                for &n in &r.neg {
                    if self.value(n) == Val::Unknown {
                        forced = Some((n, Val::True));
                        break;
                    }
                }
            }
        }
        let (atom, v) = forced.expect("counter reported one unknown literal");
        self.set(atom, v)
    }

    /// Reference propagation loop: full-scan passes, as before indexing.
    fn propagate_reference(&mut self) -> bool {
        loop {
            let before = self.trail.len();
            if !self.fitting_pass_reference() {
                return false;
            }
            if !self.card_pass() {
                return false;
            }
            if self.trail.len() != before {
                continue; // re-run cheap passes before the closure
            }
            if !self.nogood_pass() {
                return false;
            }
            if self.trail.len() != before {
                continue;
            }
            if !self.unfounded_pass() {
                return false;
            }
            if self.trail.len() == before {
                return true;
            }
        }
    }

    /// One pass of Fitting-style forward/backward rule propagation over
    /// every rule (the retained naive reference pass).
    fn fitting_pass_reference(&mut self) -> bool {
        for ri in 0..self.g.rules.len() {
            let (head, pos, neg) = {
                let r = &self.g.rules[ri];
                (r.head, r.pos.clone(), r.neg.clone())
            };
            let mut false_lits = 0usize;
            let mut unknown: Option<(AtomId, bool)> = None; // (atom, is_pos)
            let mut unknowns = 0usize;
            for &p in &pos {
                match self.value(p) {
                    Val::False => false_lits += 1,
                    Val::Unknown => {
                        unknowns += 1;
                        unknown = Some((p, true));
                    }
                    Val::True => {}
                }
            }
            for &n in &neg {
                match self.value(n) {
                    Val::True => false_lits += 1,
                    Val::Unknown => {
                        unknowns += 1;
                        unknown = Some((n, false));
                    }
                    Val::False => {}
                }
            }
            if false_lits > 0 {
                continue; // body dead: nothing to infer here
            }
            let body_sat = unknowns == 0;
            match head {
                GroundHead::Atom(h) => {
                    if body_sat {
                        if !self.set(h, Val::True) {
                            return false;
                        }
                    } else if unknowns == 1 && self.value(h) == Val::False {
                        let (a, is_pos) = unknown.expect("one unknown");
                        if !self.set(a, if is_pos { Val::False } else { Val::True }) {
                            return false;
                        }
                    }
                }
                GroundHead::None => {
                    if body_sat {
                        return false; // violated constraint
                    }
                    if unknowns == 1 {
                        let (a, is_pos) = unknown.expect("one unknown");
                        if !self.set(a, if is_pos { Val::False } else { Val::True }) {
                            return false;
                        }
                    }
                }
                GroundHead::Choice(_) => {}
            }
        }
        true
    }

    /// Propagate cardinality constraints.
    fn card_pass(&mut self) -> bool {
        for ci in 0..self.g.cards.len() {
            let c = self.g.cards[ci].clone();
            let mut body_false = false;
            let mut body_unknowns = 0usize;
            let mut body_unknown: Option<(AtomId, bool)> = None;
            for &p in &c.pos {
                match self.value(p) {
                    Val::False => body_false = true,
                    Val::Unknown => {
                        body_unknowns += 1;
                        body_unknown = Some((p, true));
                    }
                    Val::True => {}
                }
            }
            for &n in &c.neg {
                match self.value(n) {
                    Val::True => body_false = true,
                    Val::Unknown => {
                        body_unknowns += 1;
                        body_unknown = Some((n, false));
                    }
                    Val::False => {}
                }
            }
            if body_false {
                continue;
            }
            let mut held = 0u32;
            let mut open: Vec<&crate::program::CardElement> = Vec::new();
            for e in &c.elements {
                let guard_false = e.guard_pos.iter().any(|&p| self.value(p) == Val::False)
                    || e.guard_neg.iter().any(|&n| self.value(n) == Val::True);
                let guard_true = e.guard_pos.iter().all(|&p| self.value(p) == Val::True)
                    && e.guard_neg.iter().all(|&n| self.value(n) == Val::False);
                match self.value(e.atom) {
                    Val::True if guard_true => held += 1,
                    Val::False => {}
                    _ if guard_false => {}
                    _ => open.push(e),
                }
            }
            let max_possible = held + open.len() as u32;
            let violated_surely = held > c.upper || max_possible < c.lower;
            if body_unknowns == 0 {
                if violated_surely {
                    return false;
                }
                if held == c.upper {
                    // No further element may become held.
                    let forced: Vec<AtomId> = open
                        .iter()
                        .filter(|e| {
                            e.guard_pos.iter().all(|&p| self.value(p) == Val::True)
                                && e.guard_neg.iter().all(|&n| self.value(n) == Val::False)
                        })
                        .map(|e| e.atom)
                        .collect();
                    for a in forced {
                        if self.value(a) == Val::Unknown && !self.set(a, Val::False) {
                            return false;
                        }
                    }
                } else if max_possible == c.lower {
                    // Every open element must be held.
                    let forced: Vec<AtomId> = open
                        .iter()
                        .filter(|e| {
                            e.guard_pos.iter().all(|&p| self.value(p) == Val::True)
                                && e.guard_neg.iter().all(|&n| self.value(n) == Val::False)
                        })
                        .map(|e| e.atom)
                        .collect();
                    for a in forced {
                        if self.value(a) == Val::Unknown && !self.set(a, Val::True) {
                            return false;
                        }
                    }
                }
            } else if body_unknowns == 1 && violated_surely {
                // Bound already violated: body must be falsified.
                let (a, is_pos) = body_unknown.expect("one unknown");
                if !self.set(a, if is_pos { Val::False } else { Val::True }) {
                    return false;
                }
            }
        }
        true
    }

    /// Falsify atoms outside the can-be-true closure (unfounded atoms).
    ///
    /// The closure is computed semi-naively: per rule, count the positive
    /// body atoms still outside the closure; when the count hits zero (and
    /// no negative literal is certainly true, and the head is not false)
    /// the head enters the closure and its positive occurrences are
    /// decremented. O(program) per call instead of O(program × depth).
    fn unfounded_pass(&mut self) -> bool {
        if self.use_tight() {
            // Fages' theorem: the support counters drained by
            // `drain_fitting` already computed this fixpoint.
            return true;
        }
        if self.reference {
            return self.unfounded_pass_reference();
        }
        self.uf_in_closure.fill(false);
        self.uf_stack.clear();
        for ri in 0..self.g.rules.len() {
            self.uf_missing[ri] = self.g.rules[ri].pos.len() as u32;
            if self.uf_missing[ri] == 0 {
                self.uf_try_fire(ri);
            }
        }
        while let Some(a) = self.uf_stack.pop() {
            for i in 0..self.occ_pos[a as usize].len() {
                let ri = self.occ_pos[a as usize][i] as usize;
                self.uf_missing[ri] -= 1;
                if self.uf_missing[ri] == 0 {
                    self.uf_try_fire(ri);
                }
            }
        }
        for i in 0..self.uf_in_closure.len() {
            if !self.uf_in_closure[i] {
                match self.val[i] {
                    Val::True => return false,
                    Val::Unknown => self.assign(i as u32, Val::False),
                    Val::False => {}
                }
            }
        }
        true
    }

    /// Add a rule's head to the can-be-true closure if the rule supports
    /// it: every positive body atom is in the closure (`uf_missing == 0`,
    /// checked by the caller), no negative literal is certainly true, and
    /// the head is not already false or closed.
    fn uf_try_fire(&mut self, ri: usize) {
        let h = {
            let r = &self.g.rules[ri];
            let h = match r.head {
                GroundHead::Atom(h) | GroundHead::Choice(h) => h,
                GroundHead::None => return,
            };
            if self.uf_in_closure[h.index()] || self.value(h) == Val::False {
                return;
            }
            // Positive atoms in the closure are never false-valued (entry
            // is guarded), so only the negative side needs re-checking.
            if r.neg.iter().any(|&q| self.value(q) == Val::True) {
                return;
            }
            h
        };
        self.uf_in_closure[h.index()] = true;
        self.uf_stack.push(h.0);
    }

    /// The retained full-scan unfounded pass (reference engine).
    fn unfounded_pass_reference(&mut self) -> bool {
        let n = self.g.atom_count();
        let mut in_closure = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for r in &self.g.rules {
                let h = match r.head {
                    GroundHead::Atom(h) | GroundHead::Choice(h) => h,
                    GroundHead::None => continue,
                };
                if in_closure[h.index()] || self.value(h) == Val::False {
                    continue;
                }
                let body_possible = r
                    .pos
                    .iter()
                    .all(|&p| self.value(p) != Val::False && in_closure[p.index()])
                    && r.neg.iter().all(|&q| self.value(q) != Val::True);
                if body_possible {
                    in_closure[h.index()] = true;
                    changed = true;
                }
            }
        }
        for (i, reachable) in in_closure.iter().enumerate() {
            if !reachable {
                match self.val[i] {
                    Val::True => return false,
                    Val::Unknown => self.assign(i as u32, Val::False),
                    Val::False => {}
                }
            }
        }
        true
    }

    fn build_model(&self, ids: HashSet<AtomId>) -> Model {
        // Walk the precomputed display order, so the member atoms, their
        // display keys (the binary-search index of `Model::contains`) and
        // the shown projection all come out sorted with no per-model sort
        // or re-rendering.
        let mut keys = Vec::with_capacity(ids.len());
        let mut atoms = Vec::with_capacity(ids.len());
        let mut shown = Vec::new();
        for &ai in &self.sorted_ids {
            let id = AtomId(ai);
            if !ids.contains(&id) {
                continue;
            }
            keys.push(self.display[ai as usize].clone());
            atoms.push(self.g.atom(id).clone());
            if self.shown_flags[ai as usize] {
                shown.push(self.g.atom(id).clone());
            }
        }
        let cost = self
            .g
            .minimize
            .iter()
            .map(|(prio, lits)| {
                // Set semantics: identical (weight, tuple) keys count once.
                let mut counted: HashSet<(i64, &[crate::ast::Term])> = HashSet::new();
                let mut total = 0i64;
                for l in lits {
                    let holds = l.pos.iter().all(|p| ids.contains(p))
                        && l.neg.iter().all(|q| !ids.contains(q));
                    if holds && counted.insert((l.weight, l.tuple.as_slice())) {
                        total += l.weight;
                    }
                }
                (*prio, total)
            })
            .collect();
        Model {
            atoms,
            shown,
            cost,
            ids,
            keys,
        }
    }
}

/// Lexicographic cost vector (higher priorities first) for comparisons.
fn cost_vec(m: &Model) -> Vec<i64> {
    m.cost.iter().map(|(_, c)| *c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    fn solve_all(src: &str) -> Vec<Model> {
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut s = Solver::new(&g);
        let r = s.enumerate(&SolveOptions::default()).unwrap();
        assert!(r.exhausted);
        r.models
    }

    fn model_strings(models: &[Model]) -> Vec<String> {
        let mut out: Vec<String> = models
            .iter()
            .map(|m| {
                m.atoms
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn definite_program_has_unique_model() {
        let models = solve_all("p. q :- p. r :- q, p.");
        assert_eq!(models.len(), 1);
        assert!(models[0].contains_str("r"));
    }

    #[test]
    fn inconsistent_program_has_no_models() {
        let models = solve_all("p. :- p.");
        assert!(models.is_empty());
    }

    #[test]
    fn even_loop_yields_two_models() {
        // Classic: a :- not b. b :- not a.
        let models = solve_all("a :- not b. b :- not a.");
        assert_eq!(model_strings(&models), vec!["a", "b"]);
    }

    #[test]
    fn odd_loop_is_inconsistent() {
        let models = solve_all("a :- not a.");
        assert!(models.is_empty());
    }

    #[test]
    fn positive_loop_is_unfounded() {
        let models = solve_all("a :- b. b :- a.");
        assert_eq!(models.len(), 1);
        assert!(models[0].atoms.is_empty());
    }

    #[test]
    fn choice_rule_enumerates_subsets() {
        let models = solve_all("{ a; b }.");
        assert_eq!(models.len(), 4);
    }

    #[test]
    fn tight_certificate_tracks_ground_positive_loops() {
        let tight_src = "{ fault(a) }. affected(X) :- fault(X). :- affected(a).";
        let g = Grounder::new().ground(&parse(tight_src).unwrap()).unwrap();
        assert!(Solver::new(&g).tight());
        // Choices keep the loop derivable through the semi-naive grounder.
        let loopy = "{ x }. a :- x. a :- b. b :- a.";
        let g = Grounder::new().ground(&parse(loopy).unwrap()).unwrap();
        assert!(!Solver::new(&g).tight());
        // The reference engine never claims the certificate.
        let g = Grounder::new().ground(&parse(tight_src).unwrap()).unwrap();
        assert!(!Solver::new_reference(&g).tight());
    }

    #[test]
    fn tight_fast_path_matches_closure_on_tight_programs() {
        // Choice + chain + constraint + even negation loop: tight, with
        // nondeterminism the support counters must track across backtracks.
        let src = "{ c(1); c(2); c(3) }. r(X) :- c(X). s :- r(1), r(2). \
                   :- r(3), not s. a :- not b. b :- not a.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut fast = Solver::new(&g);
        assert!(fast.tight());
        let rf = fast.enumerate(&SolveOptions::default()).unwrap();
        let mut slow = Solver::new(&g);
        slow.set_tight_mode(false);
        let rs = slow.enumerate(&SolveOptions::default()).unwrap();
        assert!(rf.exhausted && rs.exhausted);
        assert_eq!(model_strings(&rf.models), model_strings(&rs.models));
        assert_eq!(rf.models.len(), 10);
    }

    #[test]
    fn tight_mode_falsifies_atoms_without_any_rule() {
        // b has no defining rule: the zero-support seed must falsify it
        // before the constraint can be judged.
        let models = solve_all("{ a }. :- not b.");
        assert!(models.is_empty());
    }

    #[test]
    fn non_tight_programs_keep_the_unfounded_closure() {
        // Forcing tight mode on has no effect without the certificate.
        let g = Grounder::new()
            .ground(&parse("{ x }. a :- x. a :- b. b :- a. :- not a.").unwrap())
            .unwrap();
        let mut s = Solver::new(&g);
        s.set_tight_mode(true);
        assert!(!s.tight());
        let r = s.enumerate(&SolveOptions::default()).unwrap();
        assert_eq!(model_strings(&r.models), vec!["a b x"]);
    }

    #[test]
    fn bounded_choice_respects_bounds() {
        let models = solve_all("item(x). item(y). item(z). 1 { pick(I) : item(I) } 2.");
        // C(3,1) + C(3,2) = 6 models.
        assert_eq!(models.len(), 6);
        for m in &models {
            let picks = m.atoms_of("pick").len();
            assert!((1..=2).contains(&picks));
        }
    }

    #[test]
    fn constraints_prune_models() {
        let models = solve_all("{ a; b }. :- a, b. :- not a, not b.");
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn listing_one_fault_activation_semantics() {
        // Without the mitigation active the fault is potential; with it, not.
        let src = "component(ew). fault(f4). mitigation(f4, m2). \
                   { active_mitigation(ew, m2) }. \
                   potential_fault(C, F) :- component(C), fault(F), \
                       mitigation(F, M), not active_mitigation(C, M).";
        let models = solve_all(src);
        assert_eq!(models.len(), 2);
        let with_mitigation = models
            .iter()
            .find(|m| m.contains_str("active_mitigation(ew,m2)"))
            .unwrap();
        assert!(!with_mitigation.contains_str("potential_fault(ew,f4)"));
        let without = models
            .iter()
            .find(|m| !m.contains_str("active_mitigation(ew,m2)"))
            .unwrap();
        assert!(without.contains_str("potential_fault(ew,f4)"));
    }

    #[test]
    fn optimization_finds_minimum() {
        let src = "item(a). item(b). item(c). \
                   cost(a, 7). cost(b, 3). cost(c, 5). \
                   1 { pick(I) : item(I) } 1. \
                   #minimize { C,I : pick(I), cost(I, C) }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut s = Solver::new(&g);
        let best = s.optimize(&SolveOptions::default()).unwrap().unwrap();
        assert!(best.contains_str("pick(b)"));
        assert_eq!(best.cost, vec![(0, 3)]);
    }

    #[test]
    fn optimization_with_priorities_is_lexicographic() {
        // High priority: minimize number of picks; low: total cost.
        let src = "item(a). item(b). cost(a, 1). cost(b, 1). \
                   1 { pick(I) : item(I) } 2. \
                   #minimize { 1@2,I : pick(I) }. \
                   #minimize { C@1,I : pick(I), cost(I, C) }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut s = Solver::new(&g);
        let best = s.optimize(&SolveOptions::default()).unwrap().unwrap();
        assert_eq!(best.atoms_of("pick").len(), 1);
        assert_eq!(best.cost[0], (2, 1));
    }

    #[test]
    fn brave_and_cautious_consequences() {
        let src = "a :- not b. b :- not a. c.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let brave: Vec<String> = Solver::new(&g)
            .brave(&SolveOptions::default())
            .unwrap()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(brave, vec!["a", "b", "c"]);
        let cautious: Vec<String> = Solver::new(&g)
            .cautious(&SolveOptions::default())
            .unwrap()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(cautious, vec!["c"]);
    }

    #[test]
    fn total_wfm_solves_without_decisions() {
        // Stratified program: the WFM decides every atom, so the seeds
        // leave nothing to branch on.
        let src = "p. q :- p. r :- q, not s.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut s = Solver::new(&g);
        assert!(s.wfm().expect("non-reference computes the WFM").total());
        let res = s.enumerate(&SolveOptions::default()).unwrap();
        assert_eq!(res.models.len(), 1);
        assert_eq!(res.decisions, 0, "the backbone is the model");
    }

    #[test]
    fn assumptions_against_the_backbone_yield_no_models() {
        let src = "p. q :- not r.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let p = g.lookup(&Atom::prop("p")).unwrap();
        let mut s = Solver::new(&g);
        let res = s
            .solve_with_assumptions(&[Lit::neg(p)], &SolveOptions::default())
            .unwrap();
        assert!(res.models.is_empty() && res.exhausted);
        // The same assumption still enumerates fine when compatible.
        let res = s
            .solve_with_assumptions(&[Lit::pos(p)], &SolveOptions::default())
            .unwrap();
        assert_eq!(res.models.len(), 1);
    }

    #[test]
    fn max_models_stops_early() {
        let g = Grounder::new()
            .ground(&parse("{ a; b; c }.").unwrap())
            .unwrap();
        let mut s = Solver::new(&g);
        let r = s
            .enumerate(&SolveOptions {
                max_models: 3,
                ..SolveOptions::default()
            })
            .unwrap();
        assert_eq!(r.models.len(), 3);
        assert!(!r.exhausted);
    }

    #[test]
    fn decision_budget_is_enforced() {
        let g = Grounder::new()
            .ground(&parse("{ a; b; c; d; e; f }.").unwrap())
            .unwrap();
        let mut s = Solver::new(&g);
        let err = s
            .enumerate(&SolveOptions {
                max_decisions: 2,
                ..SolveOptions::default()
            })
            .unwrap_err();
        assert!(matches!(err, AspError::SolveBudget { limit: 2 }));
    }

    #[test]
    fn model_cost_reported_even_without_optimize() {
        let src = "{ a }. #minimize { 5 : a }.";
        let models = solve_all(src);
        let costs: Vec<i64> = models.iter().map(|m| m.cost[0].1).collect();
        assert!(costs.contains(&0) && costs.contains(&5));
    }

    #[test]
    fn minimize_set_semantics_counts_tuples_once() {
        // Two conditions with the same (weight, tuple) key count once.
        let src = "a. b. #minimize { 1,k : a; 1,k : b }.";
        let models = solve_all(src);
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].cost[0].1, 1);
    }

    #[test]
    fn stratified_negation_solves_without_branching() {
        let src = "p(1..3). q(X) :- p(X), not skip(X). skip(2).";
        let models = solve_all(src);
        assert_eq!(models.len(), 1);
        assert!(models[0].contains_str("q(1)"));
        assert!(!models[0].contains_str("q(2)"));
        assert!(models[0].contains_str("q(3)"));
    }

    #[test]
    fn display_respects_show_projection() {
        let src = "p(1). q(2). #show q/1.";
        let models = solve_all(src);
        assert_eq!(models[0].to_string(), "q(2)");
    }

    #[test]
    fn graph_coloring_sanity() {
        // 3-coloring of a triangle: 6 models.
        let src = "node(1..3). color(r). color(g). color(b). \
                   edge(1,2). edge(2,3). edge(1,3). \
                   1 { assign(N, C) : color(C) } 1 :- node(N). \
                   :- edge(X, Y), assign(X, C), assign(Y, C).";
        let models = solve_all(src);
        assert_eq!(models.len(), 6);
    }
}

#[cfg(test)]
mod assumption_tests {
    use super::*;
    use crate::ast::Atom;
    use crate::ground::Grounder;
    use crate::parse;

    fn ground_assumable(src: &str, preds: &[(&str, usize)]) -> crate::program::GroundProgram {
        let mut g = Grounder::new();
        for (p, n) in preds {
            g = g.assumable(p, *n);
        }
        g.ground(&parse(src).unwrap()).unwrap()
    }

    fn lit(g: &crate::program::GroundProgram, name: &str, positive: bool) -> Lit {
        Lit {
            atom: g.lookup(&Atom::prop(name)).expect("atom interned"),
            positive,
        }
    }

    #[test]
    fn assumable_facts_become_choice_atoms() {
        let g = ground_assumable("p. q :- p.", &[("p", 0)]);
        assert_eq!(g.assumable.len(), 1);
        let mut s = Solver::new(&g);
        // Unassumed, p is free: two models.
        assert_eq!(
            s.enumerate(&SolveOptions::default()).unwrap().models.len(),
            2
        );
        // Pinned true: q follows.
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", true)], &SolveOptions::default())
            .unwrap();
        assert_eq!(r.models.len(), 1);
        assert!(r.models[0].contains_str("q"));
        assert!(r.exhausted);
        // Pinned false on the same reused solver: q gone.
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", false)], &SolveOptions::default())
            .unwrap();
        assert_eq!(r.models.len(), 1);
        assert!(!r.models[0].contains_str("q"));
    }

    #[test]
    fn non_fact_rules_of_assumable_predicates_stay_normal() {
        let g = ground_assumable("{ a }. p :- a.", &[("p", 0)]);
        assert!(g.assumable.is_empty(), "only facts become assumable");
    }

    #[test]
    fn contradictory_assumptions_are_unsat() {
        let g = ground_assumable("p.", &[("p", 0)]);
        let mut s = Solver::new(&g);
        let r = s
            .solve_with_assumptions(
                &[lit(&g, "p", true), lit(&g, "p", false)],
                &SolveOptions::default(),
            )
            .unwrap();
        assert!(r.models.is_empty());
        assert!(r.exhausted);
    }

    #[test]
    fn program_refuted_assumption_is_unsat_and_learns() {
        // p pinned true while a constraint forbids it.
        let g = ground_assumable("p. :- p.", &[("p", 0)]);
        let mut s = Solver::new(&g);
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", true)], &SolveOptions::default())
            .unwrap();
        assert!(r.models.is_empty() && r.exhausted);
        assert!(r.conflicts > 0);
        assert_eq!(s.learned_nogoods(), 1, "the level-0 refutation is learned");
        // The learned nogood must not leak into other assumption sets.
        let r = s
            .solve_with_assumptions(&[lit(&g, "p", false)], &SolveOptions::default())
            .unwrap();
        assert_eq!(r.models.len(), 1);
    }

    #[test]
    fn reused_solver_equals_fresh_solver_across_assumption_sets() {
        let src = "{ a; b }. p. q :- p, a. :- q, b.";
        let g = ground_assumable(src, &[("p", 0)]);
        let mut reused = Solver::new(&g);
        for positive in [true, false, true, false] {
            let assumptions = [lit(&g, "p", positive)];
            let got = reused
                .solve_with_assumptions(&assumptions, &SolveOptions::default())
                .unwrap();
            let fresh = Solver::new(&g)
                .solve_with_assumptions(&assumptions, &SolveOptions::default())
                .unwrap();
            let render = |r: &SolveResult| {
                let mut v: Vec<String> = r
                    .models
                    .iter()
                    .map(|m| {
                        m.atoms
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" ")
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(render(&got), render(&fresh), "p = {positive}");
            assert_eq!(got.exhausted, fresh.exhausted);
        }
    }

    #[test]
    fn optimize_with_assumptions_respects_the_pin() {
        let src = "item(a). item(b). cost(a, 7). cost(b, 3). \
                   1 { pick(I) : item(I) } 1. \
                   allow_b. :- pick(b), not allow_b. \
                   #minimize { C,I : pick(I), cost(I, C) }.";
        let g = ground_assumable(src, &[("allow_b", 0)]);
        let mut s = Solver::new(&g);
        let with_b = s
            .optimize_with_assumptions(
                &[Lit::pos(g.lookup(&Atom::prop("allow_b")).unwrap())],
                &SolveOptions::default(),
            )
            .unwrap()
            .unwrap();
        assert!(with_b.contains_str("pick(b)"));
        assert_eq!(with_b.cost, vec![(0, 3)]);
        let without_b = s
            .optimize_with_assumptions(
                &[Lit::neg(g.lookup(&Atom::prop("allow_b")).unwrap())],
                &SolveOptions::default(),
            )
            .unwrap()
            .unwrap();
        assert!(without_b.contains_str("pick(a)"));
        assert_eq!(without_b.cost, vec![(0, 7)]);
    }

    #[test]
    fn clear_learned_drops_the_store() {
        let g = ground_assumable("p. :- p.", &[("p", 0)]);
        let mut s = Solver::new(&g);
        s.solve_with_assumptions(&[lit(&g, "p", true)], &SolveOptions::default())
            .unwrap();
        assert!(s.learned_nogoods() > 0);
        s.clear_learned();
        assert_eq!(s.learned_nogoods(), 0);
    }
}

#[cfg(test)]
mod bb_tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    #[test]
    fn branch_and_bound_prunes_the_selection_grid() {
        // Pick exactly 2 of 16 items minimizing weight: optimum 1+2 = 3.
        let src = "item(1..16). weight(I, I) :- item(I). \
                   2 { pick(I) : item(I) } 2. \
                   #minimize { W,I : pick(I), weight(I, W) }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();

        let mut opt_solver = Solver::new(&g);
        let best = opt_solver
            .optimize(&SolveOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(best.cost, vec![(0, 3)]);
        let optimize_decisions = opt_solver.decision_count;

        let mut enum_solver = Solver::new(&g);
        let all = enum_solver.enumerate(&SolveOptions::default()).unwrap();
        assert_eq!(all.models.len(), 120, "C(16,2)");
        assert!(
            optimize_decisions < enum_solver.decision_count,
            "pruning must beat full enumeration: {} vs {}",
            optimize_decisions,
            enum_solver.decision_count
        );
    }

    #[test]
    fn pruning_is_sound_with_negative_weights() {
        let src = "{ a; b; c }. \
                   #minimize { -5 : a; 3 : b; -1 : c }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut solver = Solver::new(&g);
        let best = solver.optimize(&SolveOptions::default()).unwrap().unwrap();
        // Optimal: a and c true, b false => -6.
        assert_eq!(best.cost, vec![(0, -6)]);
        assert!(best.contains_str("a") && best.contains_str("c") && !best.contains_str("b"));
    }

    #[test]
    fn multi_priority_pruning_is_sound() {
        let src = "{ a; b }. \
                   #minimize { 1@2 : a }. \
                   #minimize { 1@1 : b; 2@1 : a }.";
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let mut solver = Solver::new(&g);
        let best = solver.optimize(&SolveOptions::default()).unwrap().unwrap();
        assert_eq!(best.cost, vec![(2, 0), (1, 0)]);
        assert!(best.atoms.is_empty());
    }
}
