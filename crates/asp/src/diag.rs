//! Span-carrying diagnostics shared by the static-analysis passes.
//!
//! Both the ASP lint pass ([`crate::lint`], codes `A…`) and the system-model
//! lint pass in `cpsrisk-model` (codes `M…`) report their findings as
//! [`Diagnostic`] values: a severity, a stable code, a human-readable
//! message, an optional source [`Span`], and an optional suggestion
//! (e.g. a did-you-mean replacement). Diagnostics render in the familiar
//! compiler style:
//!
//! ```text
//! warning[A001]: predicate `mitigaton/2` is used but never defined at line 4, column 52
//!   help: did you mean `mitigation`?
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The artifact is broken; analysis or solving must not proceed.
    Error,
    /// Very likely a mistake, but the artifact is still well-formed.
    Warning,
    /// Stylistic or informational observation.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// A half-open byte range in the analyzed source, with the 1-based
/// line/column of its start precomputed for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first covered byte.
    pub offset: usize,
    /// Number of covered bytes.
    pub len: usize,
    /// 1-based line of `offset`.
    pub line: usize,
    /// 1-based column of `offset` within its line.
    pub column: usize,
}

impl Span {
    /// Build a span over `src[offset .. offset + len]`, computing line and
    /// column from the source text. Offsets past the end clamp to it.
    #[must_use]
    pub fn new(src: &str, offset: usize, len: usize) -> Self {
        let offset = offset.min(src.len());
        let before = &src.as_bytes()[..offset];
        let line = before.iter().filter(|&&b| b == b'\n').count() + 1;
        let line_start = before
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        Span {
            offset,
            len,
            line,
            column: offset - line_start + 1,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable short code (`A001`…`A008` for ASP, `M001`…`M007` for models).
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Source location, when the finding maps to analyzed text.
    pub span: Option<Span>,
    /// Optional remediation hint (e.g. a did-you-mean replacement).
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    #[must_use]
    pub fn error(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, message)
    }

    /// A warning-severity diagnostic.
    #[must_use]
    pub fn warning(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, message)
    }

    /// An info-severity diagnostic.
    #[must_use]
    pub fn info(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Info, code, message)
    }

    fn new(severity: Severity, code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            code: code.to_owned(),
            message: message.into(),
            span: None,
            suggestion: None,
        }
    }

    /// Attach a source span (chaining).
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a suggestion (chaining).
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Is this finding an [`Severity::Error`]?
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Is this finding a [`Severity::Warning`]?
    #[must_use]
    pub fn is_warning(&self) -> bool {
        self.severity == Severity::Warning
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// Does any diagnostic in `diags` have [`Severity::Error`]?
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Does any diagnostic in `diags` have [`Severity::Warning`] or worse?
#[must_use]
pub fn has_warnings(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity <= Severity::Warning)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_computes_line_and_column() {
        let src = "abc.\nde(X) :- f.\n";
        let s = Span::new(src, 5, 2);
        assert_eq!((s.line, s.column), (2, 1));
        let t = Span::new(src, 8, 1);
        assert_eq!((t.line, t.column), (2, 4));
        // Clamped past the end.
        let e = Span::new(src, 999, 0);
        assert_eq!(e.offset, src.len());
    }

    #[test]
    fn display_is_compiler_style() {
        let d = Diagnostic::warning("A001", "predicate `q/1` is used but never defined")
            .with_span(Span::new("p :- q.", 5, 1))
            .with_suggestion("did you mean `p`?");
        let text = d.to_string();
        assert!(text.starts_with("warning[A001]:"), "{text}");
        assert!(text.contains("line 1, column 6"), "{text}");
        assert!(text.contains("help: did you mean `p`?"), "{text}");
    }

    #[test]
    fn severity_orders_error_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
        let diags = vec![
            Diagnostic::info("A007", "x"),
            Diagnostic::warning("A001", "y"),
        ];
        assert!(!has_errors(&diags));
        assert!(has_warnings(&diags));
    }
}
