//! Tokenizer for the clingo-like surface syntax.

use crate::error::AspError;
use std::fmt;

/// A lexical token with its source position (byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source where the token starts.
    pub offset: usize,
    /// Length of the token in bytes (0 for [`TokenKind::Eof`]).
    pub len: usize,
}

/// Token kinds of the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Lowercase identifier (predicate or constant).
    Ident(String),
    /// Uppercase (or `_`-prefixed) identifier: a variable.
    Variable(String),
    /// Integer literal.
    Int(i64),
    /// Quoted string literal (without quotes).
    Str(String),
    /// `:-`
    If,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `..`
    DotDot,
    /// `not` keyword.
    Not,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `@`
    At,
    /// `#minimize`
    Minimize,
    /// `#maximize` (translated to minimize with negated weights).
    Maximize,
    /// `#show`
    Show,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "{s}"),
            Variable(s) => write!(f, "{s}"),
            Int(i) => write!(f, "{i}"),
            Str(s) => write!(f, "\"{s}\""),
            If => write!(f, ":-"),
            Dot => write!(f, "."),
            Comma => write!(f, ","),
            Semi => write!(f, ";"),
            Colon => write!(f, ":"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            DotDot => write!(f, ".."),
            Not => write!(f, "not"),
            Eq => write!(f, "="),
            Ne => write!(f, "!="),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            At => write!(f, "@"),
            Minimize => write!(f, "#minimize"),
            Maximize => write!(f, "#maximize"),
            Show => write!(f, "#show"),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize a full source string.
///
/// Comments run from `%` to end of line. Whitespace is insignificant.
///
/// # Errors
///
/// [`AspError::Parse`] on unterminated strings, malformed directives, or
/// unexpected characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>, AspError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut out, TokenKind::LParen, &mut i),
            ')' => push(&mut out, TokenKind::RParen, &mut i),
            '{' => push(&mut out, TokenKind::LBrace, &mut i),
            '}' => push(&mut out, TokenKind::RBrace, &mut i),
            ',' => push(&mut out, TokenKind::Comma, &mut i),
            ';' => push(&mut out, TokenKind::Semi, &mut i),
            '+' => push(&mut out, TokenKind::Plus, &mut i),
            '*' => push(&mut out, TokenKind::Star, &mut i),
            '/' => push(&mut out, TokenKind::Slash, &mut i),
            '@' => push(&mut out, TokenKind::At, &mut i),
            '-' => push(&mut out, TokenKind::Minus, &mut i),
            '=' => push(&mut out, TokenKind::Eq, &mut i),
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token {
                        kind: TokenKind::DotDot,
                        offset: i,
                        len: 2,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Dot, &mut i);
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push(Token {
                        kind: TokenKind::If,
                        offset: i,
                        len: 2,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Colon, &mut i);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: i,
                        len: 2,
                    });
                    i += 2;
                } else {
                    return Err(err_at(src, i, "expected `!=`"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: i,
                        len: 2,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Lt, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: i,
                        len: 2,
                    });
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Gt, &mut i);
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(err_at(src, start, "unterminated string")),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                _ => return Err(err_at(src, i, "bad escape in string")),
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                    len: i - start,
                });
            }
            '#' => {
                let start = i;
                i += 1;
                let word_start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphabetic() {
                    i += 1;
                }
                let word = &src[word_start..i];
                let kind = match word {
                    "minimize" => TokenKind::Minimize,
                    "maximize" => TokenKind::Maximize,
                    "show" => TokenKind::Show,
                    other => {
                        return Err(err_at(src, start, &format!("unknown directive `#{other}`")))
                    }
                };
                out.push(Token {
                    kind,
                    offset: start,
                    len: i - start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i]
                    .parse()
                    .map_err(|_| err_at(src, start, "integer literal out of range"))?;
                out.push(Token {
                    kind: TokenKind::Int(n),
                    offset: start,
                    len: i - start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = if word == "not" {
                    TokenKind::Not
                } else if word.starts_with(|ch: char| ch.is_ascii_uppercase())
                    || word.starts_with('_')
                {
                    TokenKind::Variable(word.to_owned())
                } else {
                    TokenKind::Ident(word.to_owned())
                };
                out.push(Token {
                    kind,
                    offset: start,
                    len: i - start,
                });
            }
            other => return Err(err_at(src, i, &format!("unexpected character `{other}`"))),
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
        len: 0,
    });
    Ok(out)
}

fn push(out: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    out.push(Token {
        kind,
        offset: *i,
        len: 1,
    });
    *i += 1;
}

/// Format an error with line/column derived from a byte offset.
pub(crate) fn err_at(src: &str, offset: usize, msg: &str) -> AspError {
    let upto = &src[..offset.min(src.len())];
    let line = upto.matches('\n').count() + 1;
    let col = offset - upto.rfind('\n').map_or(0, |p| p + 1) + 1;
    AspError::Parse(format!("{msg} at line {line}, column {col}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_rule_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("p(X) :- q(X), not r."),
            vec![
                Ident("p".into()),
                LParen,
                Variable("X".into()),
                RParen,
                If,
                Ident("q".into()),
                LParen,
                Variable("X".into()),
                RParen,
                Comma,
                Not,
                Ident("r".into()),
                Dot,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("% hello\np. % world"), kinds("p."));
    }

    #[test]
    fn operators_and_intervals() {
        use TokenKind::*;
        assert_eq!(
            kinds("1..5 <= >= != = < > + - * / @"),
            vec![
                Int(1),
                DotDot,
                Int(5),
                Le,
                Ge,
                Ne,
                Eq,
                Lt,
                Gt,
                Plus,
                Minus,
                Star,
                Slash,
                At,
                Eof
            ]
        );
    }

    #[test]
    fn directives() {
        use TokenKind::*;
        assert_eq!(kinds("#minimize #show"), vec![Minimize, Show, Eof]);
        assert!(tokenize("#frobnicate").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        use TokenKind::*;
        assert_eq!(kinds(r#""a\"b""#), vec![Str("a\"b".into()), Eof]);
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn underscore_is_a_variable() {
        assert!(matches!(&kinds("_X p")[0], TokenKind::Variable(v) if v == "_X"));
    }

    #[test]
    fn error_positions_are_line_column() {
        let err = tokenize("p.\n  !q.").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("column 3"), "{msg}");
    }
}
