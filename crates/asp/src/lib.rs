#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! A from-scratch Answer Set Programming (ASP) engine.
//!
//! ASP is the *hidden formal method* at the core of the paper's risk
//! assessment framework: the system model, its candidate mutations (faults
//! and vulnerabilities) and the safety requirements are merged into one
//! logic program whose **stable models** are exactly the admissible attack /
//! fault scenarios. This crate implements the full pipeline:
//!
//! 1. [`parse`] — a recursive-descent parser for a clingo-like surface
//!    syntax (normal rules, integrity constraints, choice rules with
//!    cardinality bounds, comparison builtins, integer arithmetic,
//!    `#minimize` statements, `#show` directives, intervals `l..u`),
//! 2. [`ground`](ground::Grounder) — a semi-naive grounder producing a
//!    propositional program,
//! 3. [`solve`](solve::Solver) — a CDCL stable-model solver in the clasp
//!    tradition (two-watched-literal propagation over completion nogoods,
//!    1UIP conflict analysis with backjumping, EVSIDS branching with phase
//!    saving, Luby restarts, LBD-managed learned database, an
//!    unfounded-set backstop for non-tight programs, model enumeration,
//!    branch-and-bound `#minimize` optimization, brave/cautious
//!    reasoning, and assumption-based multi-shot solving: one ground
//!    program, many queries via [`Lit`] assumptions, with learned
//!    conflict nogoods retained across calls),
//! 4. [`check`](check::is_stable_model) — an *independent* stability
//!    verifier (reduct + least-model test) used to cross-validate every
//!    answer set in tests and debug builds,
//! 5. [`lint`](lint::lint_source) — a static-analysis pass producing
//!    span-carrying [`Diagnostic`]s (undefined predicates with
//!    did-you-mean hints, arity mismatches, unsafe variables, unreachable
//!    or duplicate rules, negation cycles — codes `A001`…`A011`),
//! 6. [`analysis`] — semantic program analysis: stratification and
//!    tightness classification (the certificate behind the solver's
//!    tight-program fast path), grounding-size prediction, and sound
//!    backward slicing consumed by
//!    [`Grounder::with_slicing`](ground::Grounder::with_slicing).
//!
//! # Example
//!
//! Listing 1 of the paper (fault activation) runs verbatim:
//!
//! ```
//! use cpsrisk_asp::Program;
//!
//! let src = r#"
//!     component(ew). fault(f4). mitigation(f4, m2).
//!     potential_fault(C, F) :- component(C), fault(F),
//!                              mitigation(F, M), not active_mitigation(C, M).
//! "#;
//! let program: Program = src.parse()?;
//! let models = program.solve()?;
//! assert_eq!(models.len(), 1);
//! assert!(models[0].contains_str("potential_fault(ew,f4)"));
//! # Ok::<(), cpsrisk_asp::AspError>(())
//! ```

pub mod analysis;
pub mod ast;
pub mod builder;
pub mod check;
pub mod diag;
pub mod error;
pub mod ground;
pub mod intern;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod program;
pub mod proof;
mod seminaive;
pub mod solve;

pub use analysis::{
    analyze_dependencies, ground_tight, predict_sizes, simplify, simplify_with, slice_program,
    well_founded, well_founded_with, SimplifyResult, WfmResult,
};
pub use ast::{Atom, ChoiceElement, Head, Literal, Program, Rule, Statement, Term};
pub use builder::ProgramBuilder;
pub use check::{check_proof, CheckError, CheckReport};
pub use diag::{Diagnostic, Severity, Span};
pub use error::AspError;
pub use ground::{ExtendStats, GroundSession, Grounder};
pub use parser::{parse_program_spanned, SpannedProgram};
pub use program::{AtomId, GroundProgram};
pub use proof::{ProofLog, ProofStep};
pub use solve::{LearnedState, Lit, Model, SolveOptions, SolveResult, Solver};

/// Parse a program from its textual representation.
///
/// # Errors
///
/// Returns [`AspError::Parse`] on syntax errors.
pub fn parse(src: &str) -> Result<Program, AspError> {
    parser::parse_program(src)
}
