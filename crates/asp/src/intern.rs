//! Symbol interning: dense integer ids for predicate names.
//!
//! The grounder resolves every body literal against the possible-atom index
//! once per join step; keying that index by `(String, usize)` forces a
//! fresh `String` allocation per lookup. A [`SymbolTable`] maps each
//! predicate name to a dense [`SymId`] exactly once, so hot-path lookups
//! hash two machine words instead of cloning strings.

use std::collections::HashMap;

/// Dense identifier of an interned predicate symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

impl SymId {
    /// The id as an index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only map from symbol names to dense [`SymId`]s.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, SymId>,
}

impl SymbolTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Intern a name, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> SymId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SymId(self.names.len() as u32);
        self.index.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// Look up an already-interned name without allocating.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<SymId> {
        self.index.get(name).copied()
    }

    /// The name behind an id.
    #[must_use]
    pub fn name(&self, id: SymId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbol has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        assert_ne!(p, q);
        assert_eq!(t.intern("p"), p);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(p), "p");
        assert_eq!(t.name(q), "q");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get("p"), None);
        let p = t.intern("p");
        assert_eq!(t.get("p"), Some(p));
        assert_eq!(t.len(), 1);
    }
}
