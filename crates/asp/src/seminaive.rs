//! Semi-naive, index-joined, parallel grounding engine.
//!
//! This is the optimized counterpart of the retained reference grounder in
//! [`ground`](crate::ground): observationally identical output, very
//! different evaluation strategy.
//!
//! * **Stratified semi-naive fixpoint.** The predicate dependency graph
//!   (edges from every positive body predicate to every head predicate) is
//!   condensed into strongly connected components, evaluated in topological
//!   order. Within a component, after one full evaluation pass, a rule is
//!   re-instantiated only through *delta* variants — one per recursive
//!   positive body literal, restricted to the atoms derived in the previous
//!   round. The possible-atom arena is append-only with ascending ids, so a
//!   delta is just an id window sliced out of a candidate list by binary
//!   search; duplicate derivations are absorbed by insert-time dedup.
//! * **Multi-argument hash indexes.** Join plans register the argument
//!   position they probe with per `(pred, arity, position)`; the
//!   [`PossibleSet`] maintains exactly those indexes incrementally on
//!   insert, so any bound argument — not just the first — narrows a scan.
//! * **Slot substitutions.** Rules are compiled once: variables become
//!   dense slots, substitutions become a `Vec<Option<Term>>` with
//!   trail-based undo, and the `String`-keyed `BTreeMap` clones of the
//!   reference join disappear from the hot path.
//! * **Parallel instantiation.** Phase-2 top-level joins run across
//!   `std::thread::scope` worker shards (`CPSRISK_THREADS`-controlled);
//!   emission stays sequential in source-rule order, so the output is
//!   bit-identical for every thread count.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::ast::{ArithOp, Atom, CmpOp, Head, Literal, Program, Rule, Statement, Term};
use crate::error::AspError;
use crate::intern::{SymId, SymbolTable};
use crate::program::{
    AtomId, CardConstraint, CardElement, GroundHead, GroundProgram, GroundRule, MinimizeLit,
};

/// Configuration handed over from [`Grounder`](crate::ground::Grounder).
pub(crate) struct Config<'a> {
    /// Maximum number of ground rule instances before aborting.
    pub max_instances: usize,
    /// Predicate signatures whose facts become assumable atoms.
    pub assumable: &'a [(String, usize)],
    /// Worker threads for Phase-2 instantiation.
    pub threads: usize,
    /// Keep negative body literals over atoms that are not (yet) possible,
    /// interning the atom instead of dropping the literal. One-shot
    /// grounding drops them (they are trivially true); a [`Session`] must
    /// keep them so that already-emitted rule bodies stay correct when a
    /// later extension makes the atom derivable.
    pub keep_unpossible_neg: bool,
}

/// Phase-2 parallelism is only worth its spawn cost on real programs.
const PAR_MIN_RULES: usize = 4;
const PAR_MIN_ATOMS: u32 = 256;

/// A predicate signature: interned name + arity.
type Sig = (SymId, u32);

// ---------------------------------------------------------------------------
// Compiled patterns: variables as dense slots, predicates as interned sigs.
// ---------------------------------------------------------------------------

/// A compiled term pattern.
#[derive(Debug, Clone)]
enum Pat {
    /// Fully ground, arithmetic-free subterm: compared with `==`.
    Ground(Term),
    /// Variable slot.
    Var(u32),
    /// Compound with a variable or arithmetic inside.
    Func(String, Vec<Pat>),
    /// Arithmetic subterm: evaluated, never structurally unified.
    BinOp(ArithOp, Box<Pat>, Box<Pat>),
}

/// A compiled atom pattern.
#[derive(Debug, Clone)]
struct CAtom {
    /// Predicate name (for constructing ground atoms).
    pred: String,
    /// Interned signature (for index lookups).
    sig: Sig,
    pats: Vec<Pat>,
    /// The exact atom when every argument is ground and arithmetic-free.
    /// Session extension uses it to replace a windowed delta join with a
    /// single arena lookup — the common case once accumulated slice deltas
    /// are all ground rules.
    ground: Option<Atom>,
}

/// A compiled body literal.
#[derive(Debug, Clone)]
enum CLit {
    /// Positive atom; `probe` is the statically-bound argument position the
    /// plan decided to index on (None = full signature scan).
    Pos { atom: CAtom, probe: Option<u32> },
    /// Default-negated atom (ground-checked during joins, decided at emit).
    Neg(CAtom),
    /// Builtin comparison; `=` with an unbound variable side binds it.
    Cmp(CmpOp, Pat, Pat),
}

/// A compiled choice element.
#[derive(Debug, Clone)]
struct CElement {
    atom: CAtom,
    /// Condition in join order (planned with the rule body's bindings).
    cond_plan: Vec<CLit>,
    /// Condition in source order (emission mirrors the reference grounder).
    cond_src: Vec<CLit>,
}

/// A compiled rule head.
#[derive(Debug, Clone)]
enum CHead {
    Atom(CAtom),
    Choice {
        lower: Option<u32>,
        upper: Option<u32>,
        elements: Vec<CElement>,
    },
    None,
}

/// A rule compiled to slot patterns with a static join plan.
#[derive(Debug, Clone)]
struct CRule {
    head: CHead,
    /// Body in join order.
    body_plan: Vec<CLit>,
    /// Body in source order (emission order of `pos`/`neg` ids).
    body_src: Vec<CLit>,
    /// Variable names by slot (error messages only).
    names: Vec<String>,
    n_slots: usize,
    /// Every positive literal place and its signature, in plan order —
    /// cached at compile time so schedule construction and session
    /// extension never re-walk the plans.
    reads: Vec<(Place, Sig)>,
}

/// A compiled `#minimize` element (its own slot space).
#[derive(Debug, Clone)]
struct CMinElement {
    weight: Pat,
    terms: Vec<Pat>,
    cond_plan: Vec<CLit>,
    cond_src: Vec<CLit>,
    names: Vec<String>,
    n_slots: usize,
}

#[derive(Default)]
struct Vars {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Vars {
    fn slot(&mut self, v: &str) -> u32 {
        if let Some(&s) = self.map.get(v) {
            return s;
        }
        let s = self.names.len() as u32;
        self.map.insert(v.to_owned(), s);
        self.names.push(v.to_owned());
        s
    }
}

fn has_binop(t: &Term) -> bool {
    match t {
        Term::BinOp(..) => true,
        Term::Func(_, args) => args.iter().any(has_binop),
        _ => false,
    }
}

fn compile_term(t: &Term, vars: &mut Vars) -> Pat {
    if t.is_ground() && !has_binop(t) {
        return Pat::Ground(t.clone());
    }
    match t {
        Term::Var(v) => Pat::Var(vars.slot(v)),
        Term::Func(f, args) => Pat::Func(
            f.clone(),
            args.iter().map(|a| compile_term(a, vars)).collect(),
        ),
        Term::BinOp(op, a, b) => Pat::BinOp(
            *op,
            Box::new(compile_term(a, vars)),
            Box::new(compile_term(b, vars)),
        ),
        // Int/Const/Str are ground and arithmetic-free: handled above.
        Term::Int(_) | Term::Const(_) | Term::Str(_) => unreachable!("ground scalar"),
    }
}

fn compile_atom(a: &Atom, vars: &mut Vars, syms: &mut SymbolTable) -> CAtom {
    let pats: Vec<Pat> = a.args.iter().map(|t| compile_term(t, vars)).collect();
    CAtom {
        pred: a.pred.clone(),
        sig: (syms.intern(&a.pred), a.args.len() as u32),
        ground: pats
            .iter()
            .all(|p| matches!(p, Pat::Ground(_)))
            .then(|| a.clone()),
        pats,
    }
}

fn compile_lit(l: &Literal, vars: &mut Vars, syms: &mut SymbolTable) -> CLit {
    match l {
        Literal::Pos(a) => CLit::Pos {
            atom: compile_atom(a, vars, syms),
            probe: None,
        },
        Literal::Neg(a) => CLit::Neg(compile_atom(a, vars, syms)),
        Literal::Cmp(op, lhs, rhs) => {
            CLit::Cmp(*op, compile_term(lhs, vars), compile_term(rhs, vars))
        }
    }
}

fn pat_slots(p: &Pat, out: &mut HashSet<u32>) {
    match p {
        Pat::Ground(_) => {}
        Pat::Var(s) => {
            out.insert(*s);
        }
        Pat::Func(_, args) => {
            for a in args {
                pat_slots(a, out);
            }
        }
        Pat::BinOp(_, a, b) => {
            pat_slots(a, out);
            pat_slots(b, out);
        }
    }
}

fn lit_slots(l: &CLit, out: &mut HashSet<u32>) {
    match l {
        CLit::Pos { atom, .. } | CLit::Neg(atom) => {
            for p in &atom.pats {
                pat_slots(p, out);
            }
        }
        CLit::Cmp(_, a, b) => {
            pat_slots(a, out);
            pat_slots(b, out);
        }
    }
}

/// True if every slot of the pattern is in `bound`.
fn pat_bound(p: &Pat, bound: &HashSet<u32>) -> bool {
    match p {
        Pat::Ground(_) => true,
        Pat::Var(s) => bound.contains(s),
        Pat::Func(_, args) => args.iter().all(|a| pat_bound(a, bound)),
        Pat::BinOp(_, a, b) => pat_bound(a, bound) && pat_bound(b, bound),
    }
}

fn lit_bound(l: &CLit, bound: &HashSet<u32>) -> bool {
    let mut s = HashSet::new();
    lit_slots(l, &mut s);
    s.iter().all(|v| bound.contains(v))
}

/// Order compiled literals for joining: evaluable comparisons first,
/// binding `=` next, ground negatives, then the positive literal with the
/// most statically-bound argument positions (selectivity proxy); probe
/// positions are fixed at placement time. `bound` carries bindings in
/// (e.g. a choice-element condition planned under the rule body) and
/// collects the slots bound by the planned literals.
fn plan(mut remaining: Vec<CLit>, bound: &mut HashSet<u32>) -> Vec<CLit> {
    let mut out = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // 1. Any evaluable comparison (all slots bound).
        if let Some(i) = remaining
            .iter()
            .position(|l| matches!(l, CLit::Cmp(..)) && lit_bound(l, bound))
        {
            out.push(remaining.remove(i));
            continue;
        }
        // 2. An `=` that binds one new slot from bound terms.
        if let Some(i) = remaining.iter().position(|l| {
            if let CLit::Cmp(CmpOp::Eq, a, b) = l {
                for (x, y) in [(a, b), (b, a)] {
                    if let Pat::Var(s) = x {
                        if !bound.contains(s) && pat_bound(y, bound) {
                            return true;
                        }
                    }
                }
            }
            false
        }) {
            let lit = remaining.remove(i);
            lit_slots(&lit, bound);
            out.push(lit);
            continue;
        }
        // 3. A grounded negative literal.
        if let Some(i) = remaining
            .iter()
            .position(|l| matches!(l, CLit::Neg(_)) && lit_bound(l, bound))
        {
            out.push(remaining.remove(i));
            continue;
        }
        // 4. The positive literal with the most bound argument positions.
        let mut best: Option<(usize, usize)> = None;
        for (i, l) in remaining.iter().enumerate() {
            if let CLit::Pos { atom, .. } = l {
                let score = atom.pats.iter().filter(|p| pat_bound(p, bound)).count();
                if best.is_none_or(|(bs, _)| score > bs) {
                    best = Some((score, i));
                }
            }
        }
        if let Some((_, i)) = best {
            let mut lit = remaining.remove(i);
            if let CLit::Pos { atom, probe } = &mut lit {
                *probe = atom
                    .pats
                    .iter()
                    .position(|p| pat_bound(p, bound))
                    .map(|p| p as u32);
            }
            lit_slots(&lit, bound);
            out.push(lit);
            continue;
        }
        // 5. Nothing else applies: flush (safety was already checked).
        out.append(&mut remaining);
    }
    out
}

fn compile_rule(r: &Rule, syms: &mut SymbolTable) -> CRule {
    let mut vars = Vars::default();
    let body_src: Vec<CLit> = r
        .body
        .iter()
        .map(|l| compile_lit(l, &mut vars, syms))
        .collect();
    let mut bound: HashSet<u32> = HashSet::new();
    let body_plan = plan(body_src.clone(), &mut bound);
    let head = match &r.head {
        Head::Atom(a) => CHead::Atom(compile_atom(a, &mut vars, syms)),
        Head::None => CHead::None,
        Head::Choice {
            lower,
            upper,
            elements,
        } => CHead::Choice {
            lower: *lower,
            upper: *upper,
            elements: elements
                .iter()
                .map(|el| {
                    let cond_src: Vec<CLit> = el
                        .condition
                        .iter()
                        .map(|l| compile_lit(l, &mut vars, syms))
                        .collect();
                    let mut eb = bound.clone();
                    let cond_plan = plan(cond_src.clone(), &mut eb);
                    CElement {
                        atom: compile_atom(&el.atom, &mut vars, syms),
                        cond_plan,
                        cond_src,
                    }
                })
                .collect(),
        },
    };
    let mut rule = CRule {
        head,
        body_plan,
        body_src,
        n_slots: vars.names.len(),
        names: vars.names,
        reads: Vec::new(),
    };
    rule.reads = rule.read_places();
    rule
}

// ---------------------------------------------------------------------------
// Slot substitutions with trail-based undo.
// ---------------------------------------------------------------------------

struct Frame {
    slots: Vec<Option<Term>>,
    trail: Vec<u32>,
}

impl Frame {
    fn new(n_slots: usize) -> Self {
        Frame {
            slots: vec![None; n_slots],
            trail: Vec::new(),
        }
    }

    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn bind(&mut self, slot: u32, t: Term) {
        self.slots[slot as usize] = Some(t);
        self.trail.push(slot);
    }

    fn undo_to(&mut self, mark: usize) {
        for &s in &self.trail[mark..] {
            self.slots[s as usize] = None;
        }
        self.trail.truncate(mark);
    }
}

/// Apply the frame to a pattern and evaluate arithmetic — the compiled
/// equivalent of `apply(t, θ).eval()`.
fn eval_pat(p: &Pat, frame: &Frame, names: &[String]) -> Result<Term, AspError> {
    match p {
        Pat::Ground(t) => Ok(t.clone()),
        Pat::Var(s) => frame.slots[*s as usize].clone().ok_or_else(|| {
            AspError::BadArithmetic(format!("unbound variable {}", names[*s as usize]))
        }),
        Pat::Func(f, args) => Ok(Term::Func(
            f.clone(),
            args.iter()
                .map(|a| eval_pat(a, frame, names))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Pat::BinOp(op, a, b) => {
            let a = eval_pat(a, frame, names)?;
            let b = eval_pat(b, frame, names)?;
            match (&a, &b) {
                (Term::Int(x), Term::Int(y)) => Ok(Term::Int(op.apply(*x, *y)?)),
                _ => Err(AspError::BadArithmetic(format!("{a} {op} {b}"))),
            }
        }
    }
}

/// Unify a pattern with a ground term, binding slots through the trail.
/// On mismatch the caller undoes to its mark.
fn unify_pat(p: &Pat, g: &Term, frame: &mut Frame, names: &[String]) -> Result<bool, AspError> {
    match p {
        Pat::Ground(t) => Ok(t == g),
        Pat::Var(s) => match &frame.slots[*s as usize] {
            Some(b) => Ok(b == g),
            None => {
                frame.bind(*s, g.clone());
                Ok(true)
            }
        },
        Pat::Func(f, args) => match g {
            Term::Func(gf, gargs) if gf == f && gargs.len() == args.len() => {
                for (pa, ga) in args.iter().zip(gargs) {
                    if !unify_pat(pa, ga, frame, names)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        },
        Pat::BinOp(..) => Ok(eval_pat(p, frame, names)? == *g),
    }
}

/// Fully ground an atom pattern under a frame, evaluating arithmetic.
fn ground_catom(a: &CAtom, frame: &Frame, names: &[String]) -> Result<Atom, AspError> {
    let args = a
        .pats
        .iter()
        .map(|p| eval_pat(p, frame, names))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Atom::new(a.pred.clone(), args))
}

// ---------------------------------------------------------------------------
// Possible-atom arena with demand-registered multi-argument indexes.
// ---------------------------------------------------------------------------

/// Append-only arena of possible ground atoms with per-signature candidate
/// lists and per-`(sig, arg-position)` hash indexes. Candidate lists hold
/// ascending arena ids, so a semi-naive delta window is a binary-searched
/// subslice. Index positions are registered up front (from the join plans)
/// and maintained incrementally, keeping lookups allocation-free and the
/// whole structure `Sync` for parallel Phase-2 joins.
#[derive(Default)]
struct PossibleSet {
    atoms: Vec<Atom>,
    index: HashMap<Atom, u32>,
    by_sig: HashMap<Sig, Vec<u32>>,
    by_arg: HashMap<(SymId, u32, u32), HashMap<Term, Vec<u32>>>,
    /// Which argument positions carry an index, per signature.
    registered: HashMap<Sig, Vec<u32>>,
}

impl PossibleSet {
    fn register(&mut self, sig: Sig, pos: u32) {
        let positions = self.registered.entry(sig).or_default();
        if positions.contains(&pos) {
            return;
        }
        positions.push(pos);
        // Backfill: a session extension can register a probe position after
        // atoms of the signature already exist. Arena ids in `by_sig` are
        // ascending, so the rebuilt `by_arg` lists stay window-sliceable.
        if let Some(ids) = self.by_sig.get(&sig) {
            let index = self.by_arg.entry((sig.0, sig.1, pos)).or_default();
            for &id in ids {
                index
                    .entry(self.atoms[id as usize].args[pos as usize].clone())
                    .or_default()
                    .push(id);
            }
        }
    }

    fn insert(&mut self, sig: Sig, atom: Atom) -> bool {
        if self.index.contains_key(&atom) {
            return false;
        }
        let id = self.atoms.len() as u32;
        if let Some(positions) = self.registered.get(&sig) {
            for &p in positions {
                self.by_arg
                    .entry((sig.0, sig.1, p))
                    .or_default()
                    .entry(atom.args[p as usize].clone())
                    .or_default()
                    .push(id);
            }
        }
        self.by_sig.entry(sig).or_default().push(id);
        self.index.insert(atom.clone(), id);
        self.atoms.push(atom);
        true
    }

    fn contains(&self, atom: &Atom) -> bool {
        self.index.contains_key(atom)
    }

    /// The arena id of an exact atom, if it is possible.
    fn arena_id(&self, atom: &Atom) -> Option<u32> {
        self.index.get(atom).copied()
    }

    fn atom(&self, id: u32) -> &Atom {
        &self.atoms[id as usize]
    }

    fn len(&self) -> u32 {
        self.atoms.len() as u32
    }

    fn candidates(&self, sig: Sig) -> &[u32] {
        self.by_sig.get(&sig).map_or(&[], Vec::as_slice)
    }

    /// Candidates narrowed by a ground value at an indexed position.
    fn candidates_at(&self, sig: Sig, pos: u32, val: &Term) -> &[u32] {
        self.by_arg
            .get(&(sig.0, sig.1, pos))
            .and_then(|m| m.get(val))
            .map_or(&[], Vec::as_slice)
    }
}

/// Can a delta-windowed join at `place` produce anything? Empty windows
/// never can; a fully ground read literal only can when its exact atom was
/// interned inside the window — one arena lookup instead of a join over
/// every new atom of the predicate.
fn place_hits_window(
    possible: &PossibleSet,
    rule: &CRule,
    place: Place,
    sig: Sig,
    lo: u32,
    hi: u32,
) -> bool {
    if window(possible.candidates(sig), lo, hi).is_empty() {
        return false;
    }
    match &rule.read_atom(place).ground {
        Some(atom) => possible
            .arena_id(atom)
            .is_some_and(|id| (lo..hi).contains(&id)),
        None => true,
    }
}

/// The `[lo, hi)` arena-id window of an ascending candidate list.
fn window(list: &[u32], lo: u32, hi: u32) -> &[u32] {
    let a = list.partition_point(|&id| id < lo);
    let b = list.partition_point(|&id| id < hi);
    &list[a..b]
}

// ---------------------------------------------------------------------------
// The join: indexed nested loops over compiled plans.
// ---------------------------------------------------------------------------

/// Join the planned literals from `at` onward against the possible set,
/// invoking `cb` once per complete frame. `delta` restricts one literal
/// (by plan index) to an arena-id window — the semi-naive rule variant.
fn join(
    possible: &PossibleSet,
    lits: &[CLit],
    at: usize,
    delta: Option<(usize, (u32, u32))>,
    frame: &mut Frame,
    names: &[String],
    cb: &mut dyn FnMut(&mut Frame) -> Result<(), AspError>,
) -> Result<(), AspError> {
    let Some(lit) = lits.get(at) else {
        return cb(frame);
    };
    match lit {
        CLit::Pos { atom, probe } => {
            let base: &[u32] = match probe {
                // A probe that fails to evaluate (e.g. arithmetic on a
                // symbol) falls back to the full scan: if no candidate
                // exists the reference grounder never errors either.
                Some(p) => match eval_pat(&atom.pats[*p as usize], frame, names) {
                    Ok(v) => possible.candidates_at(atom.sig, *p, &v),
                    Err(_) => possible.candidates(atom.sig),
                },
                None => possible.candidates(atom.sig),
            };
            let cands = match delta {
                Some((i, (lo, hi))) if i == at => window(base, lo, hi),
                _ => base,
            };
            for &c in cands {
                let mark = frame.mark();
                let g = possible.atom(c);
                let mut ok = true;
                for (pa, ga) in atom.pats.iter().zip(&g.args) {
                    if !unify_pat(pa, ga, frame, names)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    join(possible, lits, at + 1, delta, frame, names, cb)?;
                }
                frame.undo_to(mark);
            }
            Ok(())
        }
        CLit::Neg(atom) => {
            // Negation is decided at emission; here the atom must merely be
            // ground (arithmetic errors propagate, as in the reference).
            let _ = ground_catom(atom, frame, names)?;
            join(possible, lits, at + 1, delta, frame, names, cb)
        }
        CLit::Cmp(op, l, r) => {
            if *op == CmpOp::Eq {
                // Binding equality: X = expr (either side).
                if let Pat::Var(s) = l {
                    if frame.slots[*s as usize].is_none() {
                        let v = eval_pat(r, frame, names)?;
                        let mark = frame.mark();
                        frame.bind(*s, v);
                        join(possible, lits, at + 1, delta, frame, names, cb)?;
                        frame.undo_to(mark);
                        return Ok(());
                    }
                }
                if let Pat::Var(s) = r {
                    if frame.slots[*s as usize].is_none() {
                        let v = eval_pat(l, frame, names)?;
                        let mark = frame.mark();
                        frame.bind(*s, v);
                        join(possible, lits, at + 1, delta, frame, names, cb)?;
                        frame.undo_to(mark);
                        return Ok(());
                    }
                }
            }
            let lv = eval_pat(l, frame, names)?;
            let rv = eval_pat(r, frame, names)?;
            if op.eval(&lv, &rv) {
                join(possible, lits, at + 1, delta, frame, names, cb)?;
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Predicate dependency graph, SCC condensation, component schedule.
// ---------------------------------------------------------------------------

/// Where a recursive positive literal sits in a rule: in the body plan or
/// in a choice element's condition plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    Body(usize),
    Elem(usize, usize),
}

impl CRule {
    fn head_sigs(&self) -> Vec<Sig> {
        match &self.head {
            CHead::Atom(a) => vec![a.sig],
            CHead::Choice { elements, .. } => elements.iter().map(|e| e.atom.sig).collect(),
            CHead::None => Vec::new(),
        }
    }

    /// The positive literal's compiled atom at a read place.
    fn read_atom(&self, place: Place) -> &CAtom {
        let lit = match place {
            Place::Body(i) => &self.body_plan[i],
            Place::Elem(e, i) => match &self.head {
                CHead::Choice { elements, .. } => &elements[e].cond_plan[i],
                CHead::Atom(_) | CHead::None => {
                    unreachable!("element place on a non-choice head")
                }
            },
        };
        match lit {
            CLit::Pos { atom, .. } => atom,
            CLit::Neg(_) | CLit::Cmp(..) => unreachable!("read place names a positive literal"),
        }
    }

    /// Every positive literal place and its signature, in plan order.
    fn read_places(&self) -> Vec<(Place, Sig)> {
        let mut out = Vec::new();
        for (i, l) in self.body_plan.iter().enumerate() {
            if let CLit::Pos { atom, .. } = l {
                out.push((Place::Body(i), atom.sig));
            }
        }
        if let CHead::Choice { elements, .. } = &self.head {
            for (e, el) in elements.iter().enumerate() {
                for (i, l) in el.cond_plan.iter().enumerate() {
                    if let CLit::Pos { atom, .. } = l {
                        out.push((Place::Elem(e, i), atom.sig));
                    }
                }
            }
        }
        out
    }
}

/// Tarjan's algorithm over the signature dependency graph. Returns the
/// component index of every node, with components numbered in topological
/// order (producers before consumers along body → head edges).
fn condense(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    struct T<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: u32,
        comps: Vec<Vec<usize>>,
    }
    impl T<'_> {
        fn connect(&mut self, v: usize) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for &w in &self.adj[v] {
                match self.index[w] {
                    None => {
                        self.connect(w);
                        self.low[v] = self.low[v].min(self.low[w]);
                    }
                    Some(wi) if self.on_stack[w] => {
                        self.low[v] = self.low[v].min(wi);
                    }
                    Some(_) => {}
                }
            }
            if Some(self.low[v]) == self.index[v] {
                let mut comp = Vec::new();
                while let Some(w) = self.stack.pop() {
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.comps.push(comp);
            }
        }
    }
    let mut t = T {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        comps: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.connect(v);
        }
    }
    // Tarjan emits successors first; reverse for producers-first order.
    t.comps.reverse();
    let mut comp_of = vec![0usize; n];
    for (c, comp) in t.comps.iter().enumerate() {
        for &v in comp {
            comp_of[v] = c;
        }
    }
    (comp_of, t.comps.len())
}

// ---------------------------------------------------------------------------
// Phase 1: stratified semi-naive possible-atom fixpoint.
// ---------------------------------------------------------------------------

/// Evaluate one rule (optionally as the delta variant at `place`) and push
/// every derivable head atom into `buf`.
fn derive_heads(
    rule: &CRule,
    possible: &PossibleSet,
    delta: Option<(Place, (u32, u32))>,
    buf: &mut Vec<(Sig, Atom)>,
) -> Result<(), AspError> {
    let body_delta = match delta {
        Some((Place::Body(i), w)) => Some((i, w)),
        _ => None,
    };
    let names = &rule.names;
    let mut frame = Frame::new(rule.n_slots);
    join(
        possible,
        &rule.body_plan,
        0,
        body_delta,
        &mut frame,
        names,
        &mut |fr| {
            match &rule.head {
                CHead::Atom(a) => buf.push((a.sig, ground_catom(a, fr, names)?)),
                CHead::None => {}
                CHead::Choice { elements, .. } => {
                    for (e, el) in elements.iter().enumerate() {
                        let ed = match delta {
                            // A body delta re-derives every element; an
                            // element delta only concerns its own element.
                            Some((Place::Elem(de, i), w)) => {
                                if de != e {
                                    continue;
                                }
                                Some((i, w))
                            }
                            _ => None,
                        };
                        let mark = fr.mark();
                        join(possible, &el.cond_plan, 0, ed, fr, names, &mut |fr2| {
                            buf.push((el.atom.sig, ground_catom(&el.atom, fr2, names)?));
                            Ok(())
                        })?;
                        fr.undo_to(mark);
                    }
                }
            }
            Ok(())
        },
    )
}

/// Compute the possible-atom fixpoint component by component.
fn possible_fixpoint(crules: &[CRule], possible: &mut PossibleSet) -> Result<(), AspError> {
    // Dense node ids for every signature read or written by a rule.
    let mut node_of: HashMap<Sig, usize> = HashMap::new();
    let node = |map: &mut HashMap<Sig, usize>, sig: Sig| -> usize {
        let n = map.len();
        *map.entry(sig).or_insert(n)
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for r in crules {
        let heads: Vec<usize> = r
            .head_sigs()
            .into_iter()
            .map(|s| node(&mut node_of, s))
            .collect();
        for &(_, sig) in &r.reads {
            let from = node(&mut node_of, sig);
            for &to in &heads {
                edges.push((from, to));
            }
        }
    }
    let n = node_of.len();
    let mut adj = vec![Vec::new(); n];
    for (from, to) in edges {
        adj[from].push(to);
    }
    let (comp_of, n_comps) = condense(n, &adj);

    // A rule belongs to the earliest component among its head signatures:
    // every signature it reads lives in that component or earlier, and any
    // atom it writes into a later component is simply derived early.
    let mut comp_rules: Vec<Vec<usize>> = vec![Vec::new(); n_comps];
    for (ri, r) in crules.iter().enumerate() {
        if let Some(c) = r.head_sigs().iter().map(|s| comp_of[node_of[s]]).min() {
            comp_rules[c].push(ri);
        }
    }

    let mut buf: Vec<(Sig, Atom)> = Vec::new();
    for (c, rules) in comp_rules.iter().enumerate() {
        if rules.is_empty() {
            continue;
        }
        let comp_start = possible.len();
        // One full evaluation pass seeds the component.
        for &ri in rules {
            derive_heads(&crules[ri], possible, None, &mut buf)?;
            for (sig, a) in buf.drain(..) {
                possible.insert(sig, a);
            }
        }
        // Delta variants: one per recursive positive literal place.
        let places: Vec<(usize, Place)> = rules
            .iter()
            .flat_map(|&ri| {
                crules[ri]
                    .reads
                    .iter()
                    .copied()
                    .filter(|(_, sig)| comp_of[node_of[sig]] == c)
                    .map(move |(place, _)| (ri, place))
            })
            .collect();
        if places.is_empty() {
            continue;
        }
        let mut lo = comp_start;
        loop {
            let hi = possible.len();
            if lo == hi {
                break;
            }
            for &(ri, place) in &places {
                derive_heads(&crules[ri], possible, Some((place, (lo, hi))), &mut buf)?;
                for (sig, a) in buf.drain(..) {
                    possible.insert(sig, a);
                }
            }
            lo = hi;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Phase 2: parallel instantiation, sequential source-order emission.
// ---------------------------------------------------------------------------

type Snapshot = Vec<Option<Term>>;

/// All complete top-level substitutions of a rule, in candidate order.
fn instances(rule: &CRule, possible: &PossibleSet) -> Result<Vec<Snapshot>, AspError> {
    let mut out = Vec::new();
    let mut frame = Frame::new(rule.n_slots);
    join(
        possible,
        &rule.body_plan,
        0,
        None,
        &mut frame,
        &rule.names,
        &mut |fr| {
            out.push(fr.slots.clone());
            Ok(())
        },
    )?;
    Ok(out)
}

/// Per-rule instance lists, computed on worker threads when the program is
/// large enough. Contiguous rule shards keep results indexed by rule, so
/// the emitted program is identical for every thread count.
fn shard_instances(
    crules: &[CRule],
    possible: &PossibleSet,
    threads: usize,
) -> Vec<Result<Vec<Snapshot>, AspError>> {
    if threads <= 1 || crules.len() < PAR_MIN_RULES || possible.len() < PAR_MIN_ATOMS {
        return crules.iter().map(|r| instances(r, possible)).collect();
    }
    let chunk = crules.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = crules
            .chunks(chunk)
            .map(|shard| {
                s.spawn(move || {
                    shard
                        .iter()
                        .map(|r| instances(r, possible))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("grounder worker panicked"))
            .collect()
    })
}

/// Ground the positive/negative atoms of a compiled literal list (in source
/// order) under a complete frame. Mirrors the reference `ground_condition`:
/// `alive` is false when a positive atom is underivable; negative literals
/// over underivable atoms are trivially true and dropped.
fn ground_condition(
    lits: &[CLit],
    frame: &Frame,
    names: &[String],
    possible: &PossibleSet,
    keep_unpossible_neg: bool,
    out: &mut GroundProgram,
) -> Result<(Vec<AtomId>, Vec<AtomId>, bool), AspError> {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for lit in lits {
        match lit {
            CLit::Pos { atom, .. } => {
                let g = ground_catom(atom, frame, names)?;
                if !possible.contains(&g) {
                    return Ok((pos, neg, false));
                }
                pos.push(out.intern(g));
            }
            CLit::Neg(atom) => {
                let g = ground_catom(atom, frame, names)?;
                if keep_unpossible_neg || possible.contains(&g) {
                    neg.push(out.intern(g));
                }
            }
            CLit::Cmp(op, l, r) => {
                let lv = eval_pat(l, frame, names)?;
                let rv = eval_pat(r, frame, names)?;
                if !op.eval(&lv, &rv) {
                    return Ok((pos, neg, false));
                }
            }
        }
    }
    Ok((pos, neg, true))
}

fn push_rule(out: &mut GroundProgram, seen: &mut HashSet<GroundRule>, rule: GroundRule) -> bool {
    if seen.insert(rule.clone()) {
        out.rules.push(rule);
        return true;
    }
    false
}

fn emit_rule(
    cfg: &Config<'_>,
    rule: &CRule,
    frame: &mut Frame,
    possible: &PossibleSet,
    out: &mut GroundProgram,
    seen: &mut HashSet<GroundRule>,
) -> Result<(), AspError> {
    let names = &rule.names;
    let keep = cfg.keep_unpossible_neg;
    let (body_pos, body_neg, alive) =
        ground_condition(&rule.body_src, frame, names, possible, keep, out)?;
    if !alive {
        return Ok(());
    }
    match &rule.head {
        CHead::Atom(a) => {
            let ga = ground_catom(a, frame, names)?;
            let is_assumable = body_pos.is_empty()
                && body_neg.is_empty()
                && cfg
                    .assumable
                    .iter()
                    .any(|(p, n)| *p == ga.pred && *n == ga.args.len());
            let head = out.intern(ga);
            let inserted = push_rule(
                out,
                seen,
                GroundRule {
                    head: if is_assumable {
                        GroundHead::Choice(head)
                    } else {
                        GroundHead::Atom(head)
                    },
                    pos: body_pos,
                    neg: body_neg,
                },
            );
            if inserted && is_assumable {
                out.assumable.push(head);
            }
        }
        CHead::None => {
            push_rule(
                out,
                seen,
                GroundRule {
                    head: GroundHead::None,
                    pos: body_pos,
                    neg: body_neg,
                },
            );
        }
        CHead::Choice {
            lower,
            upper,
            elements,
        } => {
            let mut card_elems: Vec<CardElement> = Vec::new();
            for el in elements {
                let mut exts: Vec<Snapshot> = Vec::new();
                let mark = frame.mark();
                join(possible, &el.cond_plan, 0, None, frame, names, &mut |fr| {
                    exts.push(fr.slots.clone());
                    Ok(())
                })?;
                frame.undo_to(mark);
                for sigma in exts {
                    let f2 = Frame {
                        slots: sigma,
                        trail: Vec::new(),
                    };
                    let atom = out.intern(ground_catom(&el.atom, &f2, names)?);
                    let (gpos, gneg, galive) =
                        ground_condition(&el.cond_src, &f2, names, possible, keep, out)?;
                    if !galive {
                        continue;
                    }
                    let mut pos = body_pos.clone();
                    pos.extend(gpos.iter().copied());
                    let mut neg = body_neg.clone();
                    neg.extend(gneg.iter().copied());
                    push_rule(
                        out,
                        seen,
                        GroundRule {
                            head: GroundHead::Choice(atom),
                            pos,
                            neg,
                        },
                    );
                    if lower.is_some() || upper.is_some() {
                        card_elems.push(CardElement {
                            atom,
                            guard_pos: gpos,
                            guard_neg: gneg,
                        });
                    }
                }
            }
            if lower.is_some() || upper.is_some() {
                let n = card_elems.len() as u32;
                out.cards.push(CardConstraint {
                    pos: body_pos,
                    neg: body_neg,
                    elements: card_elems,
                    lower: lower.unwrap_or(0),
                    upper: upper.unwrap_or(n),
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Entry point and resident sessions.
// ---------------------------------------------------------------------------

/// Ground a program with the semi-naive engine. Observationally identical
/// to the reference grounder (same atoms, rules, cards, minimize literals,
/// shows, and assumables), pinned by differential proptests.
pub(crate) fn ground(program: &Program, cfg: &Config<'_>) -> Result<GroundProgram, AspError> {
    Ok(Session::new(program, cfg)?.out)
}

/// Statistics of one [`GroundSession::extend`](crate::GroundSession::extend) call.
#[derive(Debug, Clone, Default)]
pub struct ExtendStats {
    /// Ground atoms interned by this extension (the per-slice growth a
    /// horizon sweep checks against).
    pub new_atoms: usize,
    /// Ground rule instances added by this extension.
    pub new_rules: usize,
    /// Ids of the revoked (previously deferred) atoms: they just received
    /// their real defining rules, so learned nogoods mentioning them must
    /// be dropped on transfer.
    pub revoked: Vec<AtomId>,
    /// A pre-existing atom *other than a revoked defer* gained a new
    /// defining rule. Its old completion nogood is stale, and stale
    /// resolvents need not mention the atom — the caller must discard all
    /// learned solver state instead of filtering it.
    pub dirty: bool,
}

fn compile_min_elements(
    elements: &[crate::ast::MinimizeElement],
    syms: &mut SymbolTable,
) -> Vec<CMinElement> {
    elements
        .iter()
        .map(|el| {
            let mut vars = Vars::default();
            let cond_src: Vec<CLit> = el
                .condition
                .iter()
                .map(|l| compile_lit(l, &mut vars, syms))
                .collect();
            let mut bound = HashSet::new();
            let cond_plan = plan(cond_src.clone(), &mut bound);
            CMinElement {
                weight: compile_term(&el.weight, &mut vars),
                terms: el
                    .terms
                    .iter()
                    .map(|t| compile_term(t, &mut vars))
                    .collect(),
                cond_plan,
                cond_src,
                n_slots: vars.names.len(),
                names: vars.names,
            }
        })
        .collect()
}

/// Register every probe position of the given rules and minimize groups.
fn register_probes<'a>(
    possible: &mut PossibleSet,
    crules: &[CRule],
    cmin_groups: impl Iterator<Item = &'a Vec<CMinElement>>,
) {
    let register_plan = |possible: &mut PossibleSet, plan: &[CLit]| {
        for l in plan {
            if let CLit::Pos {
                atom,
                probe: Some(p),
            } = l
            {
                possible.register(atom.sig, *p);
            }
        }
    };
    for r in crules {
        register_plan(possible, &r.body_plan);
        if let CHead::Choice { elements, .. } = &r.head {
            for el in elements {
                register_plan(possible, &el.cond_plan);
            }
        }
    }
    for group in cmin_groups {
        for el in group {
            register_plan(possible, &el.cond_plan);
        }
    }
}

fn has_bounded_choice(r: &Rule) -> bool {
    matches!(
        &r.head,
        Head::Choice { lower, upper, .. } if lower.is_some() || upper.is_some()
    )
}

/// A resident grounding session: the compiled rule set, symbol table,
/// possible-atom arena, dedup set, and ground program survive across
/// [`Session::extend`] calls, so a program delta (new time slices of a
/// temporal unrolling, say) is ground semi-naively against the existing
/// state instead of from scratch.
pub(crate) struct Session {
    max_instances: usize,
    assumable: Vec<(String, usize)>,
    keep_unpossible_neg: bool,
    syms: SymbolTable,
    crules: Vec<CRule>,
    cmins: Vec<(i64, Vec<CMinElement>)>,
    possible: PossibleSet,
    seen: HashSet<GroundRule>,
    pub(crate) out: GroundProgram,
    bounded_choice: bool,
}

impl Session {
    /// Ground `program` and retain all intermediate state. With
    /// `cfg.keep_unpossible_neg == false` this is exactly the one-shot
    /// [`ground`] pipeline (which delegates here).
    pub(crate) fn new(program: &Program, cfg: &Config<'_>) -> Result<Session, AspError> {
        let rules: Vec<&Rule> = program.rules().collect();
        for r in &rules {
            r.check_safety()?;
        }
        let mut syms = SymbolTable::new();
        let crules: Vec<CRule> = rules.iter().map(|r| compile_rule(r, &mut syms)).collect();
        let bounded_choice = rules.iter().any(|r| has_bounded_choice(r));

        // Compile #minimize elements up front so their probes register too.
        let mut cmins: Vec<(i64, Vec<CMinElement>)> = Vec::new();
        for stmt in &program.statements {
            if let Statement::Minimize { priority, elements } = stmt {
                cmins.push((*priority, compile_min_elements(elements, &mut syms)));
            }
        }

        // Register every probe position before the first insert, so the
        // argument indexes are maintained incrementally from the start.
        let mut possible = PossibleSet::default();
        register_probes(&mut possible, &crules, cmins.iter().map(|(_, g)| g));

        // Phase 1: stratified semi-naive possible-atom fixpoint.
        possible_fixpoint(&crules, &mut possible)?;

        // Phase 2: parallel instantiation, sequential source-order emission.
        let snaps = shard_instances(&crules, &possible, cfg.threads);
        let mut out = GroundProgram::new();
        let mut seen: HashSet<GroundRule> = HashSet::new();
        for (rule, snap) in crules.iter().zip(snaps) {
            let mut frame = Frame::new(rule.n_slots);
            for slots in snap? {
                frame.slots = slots;
                frame.trail.clear();
                emit_rule(cfg, rule, &mut frame, &possible, &mut out, &mut seen)?;
                if out.rules.len() > cfg.max_instances {
                    return Err(AspError::GroundingBudget {
                        limit: cfg.max_instances,
                    });
                }
            }
        }

        // Phase 3: projections, then optimization statements.
        for stmt in &program.statements {
            if let Statement::Show { pred, arity } = stmt {
                out.shows.push((pred.clone(), *arity));
            }
        }
        let mut session = Session {
            max_instances: cfg.max_instances,
            assumable: cfg.assumable.to_vec(),
            keep_unpossible_neg: cfg.keep_unpossible_neg,
            syms,
            crules,
            cmins,
            possible,
            seen,
            out,
            bounded_choice,
        };
        session.recompute_minimize()?;
        Ok(session)
    }

    /// The ground program in its current state.
    pub(crate) fn program(&self) -> &GroundProgram {
        &self.out
    }

    /// Ground a program delta on top of the session: `revoke` lists atoms
    /// whose bare choice rules (`{ a }.`, empty body, single element) are
    /// retracted — the frontier defers now receiving real definitions —
    /// and `delta` holds the new statements. Atom ids are stable: the
    /// ground program is extended in place, never rebuilt.
    pub(crate) fn extend(
        &mut self,
        delta: &Program,
        revoke: &[Atom],
    ) -> Result<ExtendStats, AspError> {
        let new_rules: Vec<&Rule> = delta.rules().collect();
        for r in &new_rules {
            r.check_safety()?;
        }
        if self.bounded_choice || new_rules.iter().any(|r| has_bounded_choice(r)) {
            return Err(AspError::Internal(
                "session extension cannot patch cardinality-bounded choice rules".into(),
            ));
        }

        // Compile the delta against the session's symbol table and register
        // its probes (with backfill over already-present atoms).
        let new_crules: Vec<CRule> = new_rules
            .iter()
            .map(|r| compile_rule(r, &mut self.syms))
            .collect();
        let mut new_cmins: Vec<(i64, Vec<CMinElement>)> = Vec::new();
        for stmt in &delta.statements {
            if let Statement::Minimize { priority, elements } = stmt {
                new_cmins.push((*priority, compile_min_elements(elements, &mut self.syms)));
            }
        }
        register_probes(
            &mut self.possible,
            &new_crules,
            new_cmins.iter().map(|(_, g)| g),
        );

        // Retract the revoked defers before emitting anything new.
        let mut revoked_ids: Vec<AtomId> = Vec::with_capacity(revoke.len());
        for atom in revoke {
            let Some(id) = self.out.lookup(atom) else {
                return Err(AspError::Internal(format!(
                    "revoked atom `{atom}` is not in the session program"
                )));
            };
            let target = GroundRule {
                head: GroundHead::Choice(id),
                pos: Vec::new(),
                neg: Vec::new(),
            };
            if !self.seen.remove(&target) {
                return Err(AspError::Internal(format!(
                    "revoked atom `{atom}` has no bare choice rule to retract"
                )));
            }
            self.out.rules.retain(|r| *r != target);
            self.out.assumable.retain(|&a| a != id);
            revoked_ids.push(id);
        }

        let atom_watermark = self.out.atom_count() as u32;
        let rules_low = self.out.rules.len();
        let possible_low = self.possible.len();

        // Phase 1 (delta): seed with a full pass over the new rules, then
        // run an unstratified semi-naive loop over *all* rules, windowed to
        // the atoms added since `possible_low`. The possible fixpoint
        // ignores negation, so dropping the SCC schedule loses nothing but
        // scheduling quality — and the delta windows keep it cheap.
        let mut buf: Vec<(Sig, Atom)> = Vec::new();
        for rule in &new_crules {
            derive_heads(rule, &self.possible, None, &mut buf)?;
            for (sig, a) in buf.drain(..) {
                self.possible.insert(sig, a);
            }
        }
        let mut lo = possible_low;
        loop {
            let hi = self.possible.len();
            if lo == hi {
                break;
            }
            for rule in self.crules.iter().chain(new_crules.iter()) {
                for &(place, sig) in &rule.reads {
                    if !place_hits_window(&self.possible, rule, place, sig, lo, hi) {
                        continue;
                    }
                    derive_heads(rule, &self.possible, Some((place, (lo, hi))), &mut buf)?;
                    for (s, a) in buf.drain(..) {
                        self.possible.insert(s, a);
                    }
                }
            }
            lo = hi;
        }

        // Phase 2 (delta): new rules instantiate fully; old rules re-join
        // only through windows over the atoms this extension added. The
        // `seen` set absorbs the overlap between delta anchors.
        let hi = self.possible.len();
        {
            let Session {
                ref assumable,
                ref crules,
                ref possible,
                ref mut out,
                ref mut seen,
                max_instances,
                keep_unpossible_neg,
                ..
            } = *self;
            let cfg = Config {
                max_instances,
                assumable,
                threads: 1,
                keep_unpossible_neg,
            };
            let emit_all = |rule: &CRule,
                            out: &mut GroundProgram,
                            seen: &mut HashSet<GroundRule>|
             -> Result<(), AspError> {
                let mut frame = Frame::new(rule.n_slots);
                for slots in instances(rule, possible)? {
                    frame.slots = slots;
                    frame.trail.clear();
                    emit_rule(&cfg, rule, &mut frame, possible, out, seen)?;
                    if out.rules.len() > max_instances {
                        return Err(AspError::GroundingBudget {
                            limit: max_instances,
                        });
                    }
                }
                Ok(())
            };
            for rule in &new_crules {
                emit_all(rule, out, seen)?;
            }
            if hi > possible_low {
                for rule in crules {
                    // Body-literal deltas re-join through one window each;
                    // an element-condition delta falls back to a full
                    // re-instantiation (deduped), since `emit_rule` grounds
                    // elements from the body frame.
                    let mut body_deltas: Vec<usize> = Vec::new();
                    let mut elem_hit = false;
                    for &(place, sig) in &rule.reads {
                        if !place_hits_window(possible, rule, place, sig, possible_low, hi) {
                            continue;
                        }
                        match place {
                            Place::Body(i) => body_deltas.push(i),
                            Place::Elem(..) => elem_hit = true,
                        }
                    }
                    if elem_hit {
                        emit_all(rule, out, seen)?;
                        continue;
                    }
                    for i in body_deltas {
                        let mut frame = Frame::new(rule.n_slots);
                        join(
                            possible,
                            &rule.body_plan,
                            0,
                            Some((i, (possible_low, hi))),
                            &mut frame,
                            &rule.names,
                            &mut |fr| {
                                emit_rule(&cfg, rule, fr, possible, out, seen)?;
                                if out.rules.len() > max_instances {
                                    return Err(AspError::GroundingBudget {
                                        limit: max_instances,
                                    });
                                }
                                Ok(())
                            },
                        )?;
                    }
                }
            }
        }

        // Phase 3: append new projections, adopt the delta rules, and
        // recompute minimize literals wholesale (set semantics make the
        // rebuild order-insensitive; atom ids are already interned).
        for stmt in &delta.statements {
            if let Statement::Show { pred, arity } = stmt {
                if !self.out.shows.contains(&(pred.clone(), *arity)) {
                    self.out.shows.push((pred.clone(), *arity));
                }
            }
        }
        self.crules.extend(new_crules);
        self.cmins.extend(new_cmins);
        self.recompute_minimize()?;

        // A new rule whose head already existed (and is not a revoked
        // defer) invalidates that atom's completion nogood — and stale
        // resolvents need not mention the atom, so the caller must drop
        // all learned state, not filter it.
        let mut dirty = false;
        for r in &self.out.rules[rules_low..] {
            let head = match r.head {
                GroundHead::Atom(h) | GroundHead::Choice(h) => h,
                GroundHead::None => continue,
            };
            if head.0 < atom_watermark && !revoked_ids.contains(&head) {
                dirty = true;
                break;
            }
        }
        Ok(ExtendStats {
            new_atoms: self.out.atom_count() - atom_watermark as usize,
            new_rules: self.out.rules.len() - rules_low,
            revoked: revoked_ids,
            dirty,
        })
    }

    /// Rebuild `out.minimize` from every compiled minimize statement.
    fn recompute_minimize(&mut self) -> Result<(), AspError> {
        let mut minimize: BTreeMap<i64, Vec<MinimizeLit>> = BTreeMap::new();
        let Session {
            ref cmins,
            ref possible,
            ref mut out,
            keep_unpossible_neg,
            ..
        } = *self;
        for (priority, group) in cmins {
            for el in group {
                let mut found: Vec<Snapshot> = Vec::new();
                let mut frame = Frame::new(el.n_slots);
                join(
                    possible,
                    &el.cond_plan,
                    0,
                    None,
                    &mut frame,
                    &el.names,
                    &mut |fr| {
                        found.push(fr.slots.clone());
                        Ok(())
                    },
                )?;
                for slots in found {
                    let f = Frame {
                        slots,
                        trail: Vec::new(),
                    };
                    let w = eval_pat(&el.weight, &f, &el.names)?;
                    let Term::Int(weight) = w else {
                        return Err(AspError::BadArithmetic(format!(
                            "minimize weight `{w}` is not an integer"
                        )));
                    };
                    let tuple = el
                        .terms
                        .iter()
                        .map(|t| eval_pat(t, &f, &el.names))
                        .collect::<Result<Vec<_>, _>>()?;
                    let (pos, neg, alive) = ground_condition(
                        &el.cond_src,
                        &f,
                        &el.names,
                        possible,
                        keep_unpossible_neg,
                        out,
                    )?;
                    if alive {
                        minimize.entry(*priority).or_default().push(MinimizeLit {
                            weight,
                            tuple,
                            pos,
                            neg,
                        });
                    }
                }
            }
        }
        // Higher priorities first.
        out.minimize = minimize.into_iter().rev().collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    fn both(src: &str) -> (GroundProgram, GroundProgram) {
        let p = parse(src).unwrap();
        let semi = Grounder::new().ground(&p).unwrap();
        let reference = Grounder::new_reference().ground(&p).unwrap();
        (semi, reference)
    }

    /// Canonical rendering: sorted atom strings and sorted rule renderings.
    fn canon(g: &GroundProgram) -> (Vec<String>, Vec<String>) {
        let mut atoms: Vec<String> = g.atoms().map(|(_, a)| a.to_string()).collect();
        atoms.sort();
        let mut rules: Vec<String> = g
            .rules
            .iter()
            .map(|r| {
                let head = match r.head {
                    GroundHead::Atom(h) => g.atom(h).to_string(),
                    GroundHead::Choice(h) => format!("{{{}}}", g.atom(h)),
                    GroundHead::None => String::new(),
                };
                let pos: Vec<String> = r.pos.iter().map(|&p| g.atom(p).to_string()).collect();
                let neg: Vec<String> = r.neg.iter().map(|&n| g.atom(n).to_string()).collect();
                format!("{head} :- {}; not {}", pos.join(","), neg.join(","))
            })
            .collect();
        rules.sort();
        (atoms, rules)
    }

    #[test]
    fn transitive_closure_matches_reference() {
        let (semi, reference) = both(
            "edge(a,b). edge(b,c). edge(c,d). edge(d,a). \
             path(X,Y) :- edge(X,Y). \
             path(X,Z) :- edge(X,Y), path(Y,Z).",
        );
        assert_eq!(canon(&semi), canon(&reference));
        assert_eq!(
            semi.atoms().filter(|(_, a)| a.pred == "path").count(),
            16,
            "full closure over the 4-cycle"
        );
    }

    #[test]
    fn non_first_argument_joins_match_reference() {
        // The join variable sits in the *second* argument position — the
        // reference can only scan, the indexed engine probes `by_arg`.
        let (semi, reference) = both(
            "obs(a, 1). obs(b, 2). obs(c, 2). lim(1). lim(2). \
             hit(X, T) :- lim(T), obs(X, T).",
        );
        assert_eq!(canon(&semi), canon(&reference));
        assert_eq!(semi.atoms().filter(|(_, a)| a.pred == "hit").count(), 3);
    }

    #[test]
    fn choice_negation_minimize_match_reference() {
        let (semi, reference) = both(
            "item(a). item(b). cost(a, 3). cost(b, 5). \
             1 { pick(X) : item(X) } 1. \
             blocked(X) :- item(X), not pick(X). \
             #minimize { C,X : pick(X), cost(X, C) }.",
        );
        assert_eq!(canon(&semi), canon(&reference));
        assert_eq!(semi.cards.len(), reference.cards.len());
        assert_eq!(semi.minimize.len(), reference.minimize.len());
        assert_eq!(semi.minimize[0].1.len(), 2);
    }

    #[test]
    fn mutual_recursion_across_one_component() {
        let (semi, reference) = both(
            "base(1). base(2). \
             even(0). \
             odd(Y) :- even(X), base(B), Y = X + B, Y < 6, B = 1. \
             even(Y) :- odd(X), Y = X + 1, Y < 6.",
        );
        assert_eq!(canon(&semi), canon(&reference));
    }

    #[test]
    fn thread_counts_produce_identical_programs() {
        // Enough rules and atoms to clear the parallelism guard.
        let mut src = String::from("n(1..400).\n");
        for k in 0..6 {
            src.push_str(&format!("p{k}(X) :- n(X), X > {k}.\n"));
        }
        let p = parse(&src).unwrap();
        let single = Grounder::new().with_threads(1).ground(&p).unwrap();
        let multi = Grounder::new().with_threads(4).ground(&p).unwrap();
        assert_eq!(
            single.atoms().map(|(_, a)| a.clone()).collect::<Vec<_>>(),
            multi.atoms().map(|(_, a)| a.clone()).collect::<Vec<_>>(),
        );
        assert_eq!(single.rules, multi.rules);
        assert_eq!(single.cards, multi.cards);
        assert_eq!(single.minimize, multi.minimize);
        assert_eq!(single.assumable, multi.assumable);
    }

    #[test]
    fn assumable_facts_match_reference() {
        let p = parse("flag(a). flag(b). on(X) :- flag(X), not off(X). { off(a) }.").unwrap();
        let semi = Grounder::new().assumable("flag", 1).ground(&p).unwrap();
        let reference = Grounder::new_reference()
            .assumable("flag", 1)
            .ground(&p)
            .unwrap();
        assert_eq!(canon(&semi), canon(&reference));
        let mut sa: Vec<String> = semi
            .assumable
            .iter()
            .map(|&i| semi.atom(i).to_string())
            .collect();
        let mut ra: Vec<String> = reference
            .assumable
            .iter()
            .map(|&i| reference.atom(i).to_string())
            .collect();
        sa.sort();
        ra.sort();
        assert_eq!(sa, ra);
    }

    #[test]
    fn budget_is_enforced_like_the_reference() {
        let p = parse("n(1..100). p(X) :- n(X).").unwrap();
        assert!(matches!(
            Grounder::with_budget(10).ground(&p),
            Err(AspError::GroundingBudget { limit: 10 })
        ));
    }
}
