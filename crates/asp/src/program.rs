//! Propositional (ground) program representation.
//!
//! Ground atoms are interned to dense [`AtomId`]s; rules reference atoms by
//! id only. This is the interface between the [grounder](crate::ground) and
//! the [solver](crate::solve).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::ast::{Atom, Term};

/// Dense identifier of an interned ground atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The id as an index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The head of a ground rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroundHead {
    /// Normal atom head.
    Atom(AtomId),
    /// Choice support: the atom may be freely chosen when the body holds.
    /// Cardinality bounds are represented separately as [`CardConstraint`]s.
    Choice(AtomId),
    /// Integrity constraint (head ⊥).
    None,
}

/// A ground rule `head :- pos, not neg.`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroundRule {
    /// Head.
    pub head: GroundHead,
    /// Positive body atoms.
    pub pos: Vec<AtomId>,
    /// Negative body atoms (`not a`).
    pub neg: Vec<AtomId>,
}

/// One element of a ground cardinality constraint: the element counts as
/// *held* when `atom` is true and every guard literal holds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CardElement {
    /// The element atom.
    pub atom: AtomId,
    /// Positive guard atoms (the element's grounded condition).
    pub guard_pos: Vec<AtomId>,
    /// Negative guard atoms.
    pub guard_neg: Vec<AtomId>,
}

/// Cardinality bounds over the elements of a grounded choice rule:
/// when the (ground) body holds, the number of held elements must lie in
/// `[lower, upper]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CardConstraint {
    /// Positive body atoms of the owning choice rule instance.
    pub pos: Vec<AtomId>,
    /// Negative body atoms.
    pub neg: Vec<AtomId>,
    /// The countable elements.
    pub elements: Vec<CardElement>,
    /// Lower bound (0 if absent).
    pub lower: u32,
    /// Upper bound (`elements.len()` if absent).
    pub upper: u32,
}

/// A grounded `#minimize` element: `weight` accrues when the condition holds.
/// Elements with identical `(weight, tuple)` keys count **once** per model
/// (set semantics, as in clingo).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimizeLit {
    /// Weight added to the objective when the condition holds.
    pub weight: i64,
    /// Distinguishing tuple.
    pub tuple: Vec<Term>,
    /// Positive condition atoms.
    pub pos: Vec<AtomId>,
    /// Negative condition atoms.
    pub neg: Vec<AtomId>,
}

/// A complete ground program.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundProgram {
    atoms: Vec<Atom>,
    #[serde(skip)]
    index: HashMap<Atom, AtomId>,
    /// Ground rules.
    pub rules: Vec<GroundRule>,
    /// Cardinality constraints from bounded choice rules.
    pub cards: Vec<CardConstraint>,
    /// Minimize elements grouped by priority, **higher priority first**.
    pub minimize: Vec<(i64, Vec<MinimizeLit>)>,
    /// `#show` projections (predicate, arity); empty = show everything.
    pub shows: Vec<(String, usize)>,
    /// Atoms emitted as assumable (choice-supported facts of the
    /// predicates marked via `Grounder::assumable`) — the handles a caller
    /// pins per query with assumption literals.
    #[serde(default)]
    pub assumable: Vec<AtomId>,
}

impl GroundProgram {
    /// An empty ground program.
    #[must_use]
    pub fn new() -> Self {
        GroundProgram::default()
    }

    /// Intern a ground atom, returning its id.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the atom is ground.
    pub fn intern(&mut self, atom: Atom) -> AtomId {
        debug_assert!(atom.is_ground(), "interning non-ground atom {atom}");
        if let Some(&id) = self.index.get(&atom) {
            return id;
        }
        let id = AtomId(self.atoms.len() as u32);
        self.index.insert(atom.clone(), id);
        self.atoms.push(atom);
        id
    }

    /// Look up an already-interned atom.
    #[must_use]
    pub fn lookup(&self, atom: &Atom) -> Option<AtomId> {
        self.index.get(atom).copied()
    }

    /// The atom for an id.
    #[must_use]
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.atoms[id.index()]
    }

    /// Number of interned atoms.
    #[must_use]
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Iterate `(id, atom)` pairs.
    pub fn atoms(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (AtomId(i as u32), a))
    }

    /// True if an atom should be displayed under the `#show` projection.
    #[must_use]
    pub fn shown(&self, id: AtomId) -> bool {
        if self.shows.is_empty() {
            return true;
        }
        let a = self.atom(id);
        self.shows
            .iter()
            .any(|(p, n)| *p == a.pred && *n == a.args.len())
    }

    /// Rebuild the internal index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), AtomId(i as u32)))
            .collect();
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            match r.head {
                GroundHead::Atom(h) => write!(f, "{}", self.atom(h))?,
                GroundHead::Choice(h) => write!(f, "{{ {} }}", self.atom(h))?,
                GroundHead::None => {}
            }
            if !r.pos.is_empty() || !r.neg.is_empty() {
                write!(f, " :- ")?;
                let mut first = true;
                for &p in &r.pos {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.atom(p))?;
                    first = false;
                }
                for &n in &r.neg {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "not {}", self.atom(n))?;
                    first = false;
                }
            }
            writeln!(f, ".")?;
        }
        for c in &self.cards {
            writeln!(
                f,
                "% card [{}..{}] over {} elements ({} body atoms)",
                c.lower,
                c.upper,
                c.elements.len(),
                c.pos.len() + c.neg.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut g = GroundProgram::new();
        let a = Atom::new("p", vec![Term::Int(1)]);
        let id1 = g.intern(a.clone());
        let id2 = g.intern(a.clone());
        assert_eq!(id1, id2);
        assert_eq!(g.atom_count(), 1);
        assert_eq!(g.lookup(&a), Some(id1));
        assert_eq!(g.atom(id1), &a);
    }

    #[test]
    fn show_projection_filters() {
        let mut g = GroundProgram::new();
        let p = g.intern(Atom::new("p", vec![Term::Int(1)]));
        let q = g.intern(Atom::prop("q"));
        assert!(g.shown(p) && g.shown(q), "no projection shows everything");
        g.shows.push(("p".into(), 1));
        assert!(g.shown(p));
        assert!(!g.shown(q));
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut g = GroundProgram::new();
        let a = Atom::prop("x");
        let id = g.intern(a.clone());
        g.index.clear();
        assert_eq!(g.lookup(&a), None);
        g.rebuild_index();
        assert_eq!(g.lookup(&a), Some(id));
    }

    #[test]
    fn display_renders_rules() {
        let mut g = GroundProgram::new();
        let p = g.intern(Atom::prop("p"));
        let q = g.intern(Atom::prop("q"));
        g.rules.push(GroundRule {
            head: GroundHead::Atom(p),
            pos: vec![q],
            neg: vec![],
        });
        g.rules.push(GroundRule {
            head: GroundHead::None,
            pos: vec![],
            neg: vec![p],
        });
        let text = g.to_string();
        assert!(text.contains("p :- q."));
        assert!(text.contains(" :- not p."));
    }
}
