//! Programmatic program construction.
//!
//! The modeling and EPA crates generate ASP encodings directly as syntax
//! trees; [`ProgramBuilder`] provides a compact, misuse-resistant API for
//! that (no string formatting, no re-parsing).
//!
//! # Example
//!
//! ```
//! use cpsrisk_asp::{ProgramBuilder, Term};
//!
//! let mut b = ProgramBuilder::new();
//! b.fact("component", ["tank"]);
//! b.fact("fault", ["f1"]);
//! b.rule("suspect", ["C", "F"])
//!     .pos("component", ["C"])
//!     .pos("fault", ["F"])
//!     .neg("cleared", ["C", "F"])
//!     .done();
//! let models = b.finish().solve()?;
//! assert!(models[0].contains_str("suspect(tank,f1)"));
//! # Ok::<(), cpsrisk_asp::AspError>(())
//! ```

use crate::ast::{
    Atom, ChoiceElement, CmpOp, Head, Literal, MinimizeElement, Program, Rule, Statement, Term,
};

/// Incremental builder for a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

/// Convert heterogeneous argument lists (`&str`, `i64`, [`Term`]) to terms.
pub trait IntoTerms {
    /// Convert to a term vector.
    fn into_terms(self) -> Vec<Term>;
}

impl<T: Into<Term>, const N: usize> IntoTerms for [T; N] {
    fn into_terms(self) -> Vec<Term> {
        self.into_iter().map(Into::into).collect()
    }
}

impl IntoTerms for Vec<Term> {
    fn into_terms(self) -> Vec<Term> {
        self
    }
}

impl IntoTerms for () {
    fn into_terms(self) -> Vec<Term> {
        Vec::new()
    }
}

impl ProgramBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Add a ground fact `pred(args).`
    pub fn fact(&mut self, pred: &str, args: impl IntoTerms) -> &mut Self {
        self.program
            .push_rule(Rule::fact(Atom::new(pred, args.into_terms())));
        self
    }

    /// Start a normal rule with head `pred(args)`.
    pub fn rule(&mut self, pred: &str, args: impl IntoTerms) -> RuleBuilder<'_> {
        RuleBuilder {
            builder: self,
            head: Head::Atom(Atom::new(pred, args.into_terms())),
            body: Vec::new(),
        }
    }

    /// Start an integrity constraint `:- body.`
    pub fn constraint(&mut self) -> RuleBuilder<'_> {
        RuleBuilder {
            builder: self,
            head: Head::None,
            body: Vec::new(),
        }
    }

    /// Start a choice rule `lower { elements } upper :- body.`
    pub fn choice(&mut self, lower: Option<u32>, upper: Option<u32>) -> ChoiceBuilder<'_> {
        ChoiceBuilder {
            builder: self,
            lower,
            upper,
            elements: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Add a `#minimize` element at a priority: `weight,tuple : cond`.
    pub fn minimize(
        &mut self,
        priority: i64,
        weight: Term,
        tuple: impl IntoTerms,
        condition: Vec<Literal>,
    ) -> &mut Self {
        let element = MinimizeElement {
            weight,
            terms: tuple.into_terms(),
            condition,
        };
        // Merge into an existing statement at the same priority if present.
        for s in &mut self.program.statements {
            if let Statement::Minimize {
                priority: p,
                elements,
            } = s
            {
                if *p == priority {
                    elements.push(element);
                    return self;
                }
            }
        }
        self.program.statements.push(Statement::Minimize {
            priority,
            elements: vec![element],
        });
        self
    }

    /// Add a `#show pred/arity.` projection.
    pub fn show(&mut self, pred: &str, arity: usize) -> &mut Self {
        self.program.statements.push(Statement::Show {
            pred: pred.into(),
            arity,
        });
        self
    }

    /// Append all statements of an already-built program (e.g. parsed text).
    pub fn append(&mut self, other: Program) -> &mut Self {
        self.program.extend(other);
        self
    }

    /// Finish and return the program.
    #[must_use]
    pub fn finish(self) -> Program {
        self.program
    }

    /// Borrow the program built so far.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Builder for the body of a normal rule or constraint.
#[derive(Debug)]
pub struct RuleBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    head: Head,
    body: Vec<Literal>,
}

impl RuleBuilder<'_> {
    /// Add a positive body literal.
    #[must_use]
    pub fn pos(mut self, pred: &str, args: impl IntoTerms) -> Self {
        self.body
            .push(Literal::Pos(Atom::new(pred, args.into_terms())));
        self
    }

    /// Add a negative body literal (`not pred(args)`).
    #[must_use]
    pub fn neg(mut self, pred: &str, args: impl IntoTerms) -> Self {
        self.body
            .push(Literal::Neg(Atom::new(pred, args.into_terms())));
        self
    }

    /// Add a builtin comparison.
    #[must_use]
    pub fn cmp(mut self, op: CmpOp, lhs: Term, rhs: Term) -> Self {
        self.body.push(Literal::Cmp(op, lhs, rhs));
        self
    }

    /// Finalize the rule into the program.
    pub fn done(self) {
        self.builder.program.push_rule(Rule {
            head: self.head,
            body: self.body,
        });
    }
}

/// Builder for a choice rule.
#[derive(Debug)]
pub struct ChoiceBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    lower: Option<u32>,
    upper: Option<u32>,
    elements: Vec<ChoiceElement>,
    body: Vec<Literal>,
}

impl ChoiceBuilder<'_> {
    /// Add an unconditional element.
    #[must_use]
    pub fn element(mut self, pred: &str, args: impl IntoTerms) -> Self {
        self.elements
            .push(ChoiceElement::plain(Atom::new(pred, args.into_terms())));
        self
    }

    /// Add a conditional element `pred(args) : condition`.
    #[must_use]
    pub fn element_if(mut self, pred: &str, args: impl IntoTerms, condition: Vec<Literal>) -> Self {
        self.elements.push(ChoiceElement {
            atom: Atom::new(pred, args.into_terms()),
            condition,
        });
        self
    }

    /// Add a positive body literal.
    #[must_use]
    pub fn pos(mut self, pred: &str, args: impl IntoTerms) -> Self {
        self.body
            .push(Literal::Pos(Atom::new(pred, args.into_terms())));
        self
    }

    /// Add a negative body literal.
    #[must_use]
    pub fn neg(mut self, pred: &str, args: impl IntoTerms) -> Self {
        self.body
            .push(Literal::Neg(Atom::new(pred, args.into_terms())));
        self
    }

    /// Finalize the choice rule into the program.
    pub fn done(self) {
        self.builder.program.push_rule(Rule {
            head: Head::Choice {
                lower: self.lower,
                upper: self.upper,
                elements: self.elements,
            },
            body: self.body,
        });
    }
}

/// Positive literal helper for conditions.
#[must_use]
pub fn pos(pred: &str, args: impl IntoTerms) -> Literal {
    Literal::Pos(Atom::new(pred, args.into_terms()))
}

/// Negative literal helper for conditions.
#[must_use]
pub fn neg(pred: &str, args: impl IntoTerms) -> Literal {
    Literal::Neg(Atom::new(pred, args.into_terms()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_facts_and_rules() {
        let mut b = ProgramBuilder::new();
        b.fact("p", ["a"]).fact("n", [3i64]);
        b.rule("q", ["X"]).pos("p", ["X"]).done();
        let p = b.finish();
        assert_eq!(p.statements.len(), 3);
        let models = p.solve().unwrap();
        assert!(models[0].contains_str("q(a)"));
        assert!(models[0].contains_str("n(3)"));
    }

    #[test]
    fn builds_choice_and_constraint() {
        let mut b = ProgramBuilder::new();
        b.fact("item", ["a"]).fact("item", ["b"]);
        b.choice(Some(1), Some(1))
            .element_if("pick", ["I"], vec![pos("item", ["I"])])
            .done();
        b.constraint().pos("pick", ["a"]).done();
        let models = b.finish().solve().unwrap();
        assert_eq!(models.len(), 1);
        assert!(models[0].contains_str("pick(b)"));
    }

    #[test]
    fn builds_minimize_merging_priorities() {
        let mut b = ProgramBuilder::new();
        b.fact("item", ["a"]);
        b.choice(None, None).element("x", ()).done();
        b.minimize(0, Term::Int(2), ["a"], vec![pos("x", ())]);
        b.minimize(0, Term::Int(3), ["b"], vec![pos("x", ())]);
        let p = b.finish();
        let minimize_stmts = p
            .statements
            .iter()
            .filter(|s| matches!(s, Statement::Minimize { .. }))
            .count();
        assert_eq!(minimize_stmts, 1, "same-priority elements merge");
    }

    #[test]
    fn append_merges_parsed_text() {
        let mut b = ProgramBuilder::new();
        b.fact("p", ["a"]);
        b.append(crate::parse("q(X) :- p(X).").unwrap());
        let models = b.finish().solve().unwrap();
        assert!(models[0].contains_str("q(a)"));
    }

    #[test]
    fn cmp_literals() {
        let mut b = ProgramBuilder::new();
        b.fact("n", [1i64]).fact("n", [2i64]).fact("n", [3i64]);
        b.rule("big", ["X"])
            .pos("n", ["X"])
            .cmp(CmpOp::Gt, Term::var("X"), Term::Int(1))
            .done();
        let models = b.finish().solve().unwrap();
        assert!(!models[0].contains_str("big(1)"));
        assert!(models[0].contains_str("big(2)"));
        assert!(models[0].contains_str("big(3)"));
    }
}
