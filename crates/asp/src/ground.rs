//! Grounder: instantiates a non-ground [`Program`] into a [`GroundProgram`].
//!
//! The grounder first computes a superset of the derivable ground atoms (the
//! *possible set*) by a fixpoint over the rules with negation ignored, then
//! emits ground rule instances by joining positive body literals against the
//! possible set. Negative literals over atoms that can never be derived are
//! trivially true and dropped; builtin comparisons and arithmetic are
//! evaluated during instantiation.
//!
//! Two engines share this interface. [`Grounder::new`] selects the
//! semi-naive engine (`crate::seminaive`): stratified delta evaluation over
//! the predicate dependency graph, multi-argument hash indexes, slot-based
//! substitutions, and `CPSRISK_THREADS`-parallel instantiation.
//! [`Grounder::new_reference`] retains the naive engine in this module —
//! a global re-join fixpoint with first-argument narrowing — as the
//! differential-testing baseline, mirroring `Solver::new_reference`.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::num::NonZeroUsize;

use crate::ast::{Atom, ChoiceElement, CmpOp, Head, Literal, Program, Rule, Statement, Term};
use crate::error::AspError;
use crate::intern::{SymId, SymbolTable};
use crate::program::{
    AtomId, CardConstraint, CardElement, GroundHead, GroundProgram, GroundRule, MinimizeLit,
};

type Subst = BTreeMap<String, Term>;

/// Which evaluation strategy a [`Grounder`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Stratified semi-naive delta evaluation with argument indexes and
    /// parallel instantiation (the default).
    SemiNaive,
    /// The retained naive fixpoint in this module (differential baseline).
    Reference,
}

/// Grounder with a configurable instance budget.
#[derive(Debug, Clone)]
pub struct Grounder {
    /// Maximum number of ground rule instances before aborting.
    pub max_instances: usize,
    /// Predicate signatures whose *facts* become assumable atoms: instead
    /// of baking `p(c).` in as a fact, the grounder emits a choice-supported
    /// atom and records it in [`GroundProgram::assumable`], so a solver can
    /// pin it true or false per query via assumption literals.
    assumable: Vec<(String, usize)>,
    /// Apply the backward slice before grounding (see
    /// [`slice_program`](crate::analysis::slice_program)): statements that
    /// cannot influence a `#show`n predicate, a constraint, a `#minimize`
    /// statement, or an assumable signature are dropped up front.
    slicing: bool,
    engine: Engine,
    /// Worker threads for semi-naive instantiation; `None` resolves from
    /// `CPSRISK_THREADS`, then available parallelism.
    threads: Option<usize>,
}

impl Default for Grounder {
    fn default() -> Self {
        Grounder {
            max_instances: 2_000_000,
            assumable: Vec::new(),
            slicing: false,
            engine: Engine::SemiNaive,
            threads: None,
        }
    }
}

/// Worker-thread default: `CPSRISK_THREADS`, then available parallelism.
fn default_threads() -> usize {
    std::env::var("CPSRISK_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Predicted grounding sizes below this instantiate sequentially: sharding
/// a few thousand instances across workers costs more in thread spawns and
/// cache transfer than the instantiation itself.
const PAR_SPAWN_FLOOR: f64 = 10_000.0;

/// Index of possible ground atoms by predicate signature, with a secondary
/// index on the first argument (a big win for the `state(c, S, T)`-style
/// patterns the behavioural encodings produce).
///
/// Atoms are stored once in an arena and referenced by dense index;
/// signatures are keyed by interned `(SymId, arity)` pairs so lookups on
/// the join hot path hash two machine words instead of allocating a
/// `String` (and a cloned `Term`) per probe.
#[derive(Default)]
struct PossibleSet {
    syms: SymbolTable,
    /// Arena of all possible atoms, in insertion order.
    atoms: Vec<Atom>,
    /// Membership / dedup index over the arena.
    index: HashMap<Atom, u32>,
    by_sig: HashMap<(SymId, u32), Vec<u32>>,
    by_first: HashMap<(SymId, u32), HashMap<Term, Vec<u32>>>,
}

impl PossibleSet {
    fn insert(&mut self, atom: Atom) -> bool {
        if self.index.contains_key(&atom) {
            return false;
        }
        let id = self.atoms.len() as u32;
        let sig = (self.syms.intern(&atom.pred), atom.args.len() as u32);
        if let Some(first) = atom.args.first() {
            self.by_first
                .entry(sig)
                .or_default()
                .entry(first.clone())
                .or_default()
                .push(id);
        }
        self.by_sig.entry(sig).or_default().push(id);
        self.index.insert(atom.clone(), id);
        self.atoms.push(atom);
        true
    }

    fn contains(&self, atom: &Atom) -> bool {
        self.index.contains_key(atom)
    }

    fn atom(&self, id: u32) -> &Atom {
        &self.atoms[id as usize]
    }

    fn candidates(&self, pred: &str, arity: usize) -> &[u32] {
        self.syms
            .get(pred)
            .and_then(|s| self.by_sig.get(&(s, arity as u32)))
            .map_or(&[], Vec::as_slice)
    }

    /// Candidates narrowed by a ground first argument.
    fn candidates_first(&self, pred: &str, arity: usize, first: &Term) -> &[u32] {
        self.syms
            .get(pred)
            .and_then(|s| self.by_first.get(&(s, arity as u32)))
            .and_then(|m| m.get(first))
            .map_or(&[], Vec::as_slice)
    }
}

impl Grounder {
    /// A grounder with default limits, running the semi-naive engine.
    #[must_use]
    pub fn new() -> Self {
        Grounder::default()
    }

    /// A grounder running the retained naive reference engine. Produces
    /// the same ground program as [`Grounder::new`] (pinned by differential
    /// proptests); kept as the baseline for correctness and benchmarks.
    #[must_use]
    pub fn new_reference() -> Self {
        Grounder {
            engine: Engine::Reference,
            ..Grounder::default()
        }
    }

    /// A grounder with a custom instance budget.
    #[must_use]
    pub fn with_budget(max_instances: usize) -> Self {
        Grounder {
            max_instances,
            ..Grounder::default()
        }
    }

    /// Pin the number of worker threads for semi-naive instantiation
    /// (overriding `CPSRISK_THREADS`). The ground program is identical for
    /// every thread count; `1` forces a fully sequential run.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Mark a predicate signature as *assumable*: every **fact** of that
    /// signature is emitted as a choice-supported ground atom (listed in
    /// [`GroundProgram::assumable`]) instead of an unconditional fact.
    /// Rules with non-empty bodies are unaffected. Left unassumed, such an
    /// atom is free (the solver branches on it); fixed via
    /// [`Lit`](crate::solve::Lit) assumptions it behaves exactly like the
    /// fact being present or absent — without re-grounding.
    #[must_use]
    pub fn assumable(mut self, pred: &str, arity: usize) -> Self {
        self.assumable.push((pred.to_owned(), arity));
        self
    }

    /// Enable (or disable) sound backward slicing: before grounding, drop
    /// every statement that cannot influence a `#show`n predicate, a
    /// constraint, a `#minimize` statement, or an assumable signature (the
    /// signatures registered via [`Grounder::assumable`] are the slice
    /// roots). Sliced grounding preserves the model count, the shown
    /// projection of every model, and all optimization costs — only
    /// unobservable atoms disappear from the models. Off by default;
    /// programs without a `#show` directive are never sliced (everything
    /// is observable).
    #[must_use]
    pub fn with_slicing(mut self, on: bool) -> Self {
        self.slicing = on;
        self
    }

    /// Ground a program.
    ///
    /// # Errors
    ///
    /// * [`AspError::UnsafeRule`] for rules whose variables cannot be bound,
    /// * [`AspError::BadArithmetic`] for invalid arithmetic,
    /// * [`AspError::GroundingBudget`] if the instance budget is exceeded.
    pub fn ground(&self, program: &Program) -> Result<GroundProgram, AspError> {
        let sliced;
        let program = if self.slicing {
            let roots: Vec<String> = self.assumable.iter().map(|(p, _)| p.clone()).collect();
            let slice = crate::analysis::slice_program(program, &roots);
            if slice.dropped.is_empty() {
                program
            } else {
                sliced = slice.apply(program);
                &sliced
            }
        } else {
            program
        };
        match self.engine {
            Engine::SemiNaive => crate::seminaive::ground(
                program,
                &crate::seminaive::Config {
                    max_instances: self.max_instances,
                    assumable: &self.assumable,
                    threads: self.effective_threads(program),
                    keep_unpossible_neg: false,
                },
            ),
            Engine::Reference => self.ground_reference(program),
        }
    }

    /// Resolve the worker-thread count for `program`. The configured count
    /// is clamped to the machine's parallelism — oversubscribing the
    /// CPU-bound instantiation shards buys nothing but scheduler thrash —
    /// and drops to one when [`predict_sizes`](crate::analysis::predict_sizes)
    /// puts the grounding below the spawn-overhead floor.
    fn effective_threads(&self, program: &Program) -> usize {
        let requested = self.threads.unwrap_or_else(default_threads);
        let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        let threads = requested.min(cores);
        if threads > 1 && crate::analysis::predict_sizes(program).total < PAR_SPAWN_FLOOR {
            return 1;
        }
        threads
    }

    /// Ground a program into a resident [`GroundSession`] that can later be
    /// [`extend`](Grounder::extend)ed with program deltas. Runs the
    /// semi-naive engine regardless of the configured engine (the reference
    /// grounder has no incremental mode); slicing is not applied, since a
    /// slice computed now could wrongly drop rules a later delta reaches.
    ///
    /// Unlike one-shot grounding, a session keeps negative body literals
    /// over not-yet-possible atoms (interned, left undefined — semantically
    /// identical for the solver), so already-emitted rules stay correct if
    /// an extension later makes such an atom derivable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grounder::ground`].
    pub fn session(&self, program: &Program) -> Result<GroundSession, AspError> {
        crate::seminaive::Session::new(
            program,
            &crate::seminaive::Config {
                max_instances: self.max_instances,
                assumable: &self.assumable,
                threads: self.effective_threads(program),
                keep_unpossible_neg: true,
            },
        )
        .map(|inner| GroundSession { inner })
    }

    /// Extend a session with a program delta: convenience forwarding of
    /// [`GroundSession::extend`], so the grounder owns the whole
    /// ground-then-extend lifecycle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GroundSession::extend`].
    pub fn extend(
        &self,
        session: &mut GroundSession,
        delta: &Program,
        revoke: &[Atom],
    ) -> Result<ExtendStats, AspError> {
        session.extend(delta, revoke)
    }

    /// The retained naive engine: global re-join fixpoint, first-argument
    /// narrowing, `String`-keyed substitutions.
    fn ground_reference(&self, program: &Program) -> Result<GroundProgram, AspError> {
        let rules: Vec<&Rule> = program.rules().collect();
        for r in &rules {
            r.check_safety()?;
        }

        // Body plans are instantiation-order invariant: compute once per
        // rule, not once per fixpoint iteration.
        let plans: Vec<Vec<Literal>> = rules.iter().map(|r| plan_body(&r.body)).collect();

        // Phase 1: possible-atom fixpoint (negation ignored).
        let mut possible = PossibleSet::default();
        let mut changed = true;
        while changed {
            changed = false;
            for (rule, plan) in rules.iter().zip(&plans) {
                let mut new_atoms: Vec<Atom> = Vec::new();
                join(&possible, plan, Subst::new(), &mut |theta| {
                    match &rule.head {
                        Head::Atom(a) => {
                            new_atoms.push(ground_atom(a, theta)?);
                        }
                        Head::Choice { elements, .. } => {
                            for el in elements {
                                collect_choice_atoms(&possible, el, theta, &mut new_atoms)?;
                            }
                        }
                        Head::None => {}
                    }
                    Ok(())
                })?;
                for a in new_atoms {
                    changed |= possible.insert(a);
                }
            }
        }

        // Phase 2: emit ground instances.
        let mut out = GroundProgram::new();
        let mut seen_rules: HashSet<GroundRule> = HashSet::new();
        for (rule, plan) in rules.iter().zip(&plans) {
            let mut instances: Vec<Subst> = Vec::new();
            join(&possible, plan, Subst::new(), &mut |theta| {
                instances.push(theta.clone());
                Ok(())
            })?;
            for theta in instances {
                self.emit_rule(rule, &theta, &possible, &mut out, &mut seen_rules)?;
                if out.rules.len() > self.max_instances {
                    return Err(AspError::GroundingBudget {
                        limit: self.max_instances,
                    });
                }
            }
        }

        // Phase 3: optimization statements and projections.
        let mut minimize: BTreeMap<i64, Vec<MinimizeLit>> = BTreeMap::new();
        for stmt in &program.statements {
            match stmt {
                Statement::Minimize { priority, elements } => {
                    for el in elements {
                        let plan = plan_body(&el.condition);
                        let mut found: Vec<Subst> = Vec::new();
                        join(&possible, &plan, Subst::new(), &mut |theta| {
                            found.push(theta.clone());
                            Ok(())
                        })?;
                        for theta in found {
                            let w = apply(&el.weight, &theta).eval()?;
                            let Term::Int(weight) = w else {
                                return Err(AspError::BadArithmetic(format!(
                                    "minimize weight `{w}` is not an integer"
                                )));
                            };
                            let tuple = el
                                .terms
                                .iter()
                                .map(|t| apply(t, &theta).eval())
                                .collect::<Result<Vec<_>, _>>()?;
                            let (pos, neg, alive) =
                                ground_condition(&el.condition, &theta, &possible, &mut out)?;
                            if alive {
                                minimize.entry(*priority).or_default().push(MinimizeLit {
                                    weight,
                                    tuple,
                                    pos,
                                    neg,
                                });
                            }
                        }
                    }
                }
                Statement::Show { pred, arity } => out.shows.push((pred.clone(), *arity)),
                Statement::Rule(_) => {}
            }
        }
        // Higher priorities first.
        out.minimize = minimize.into_iter().rev().collect();
        Ok(out)
    }

    fn emit_rule(
        &self,
        rule: &Rule,
        theta: &Subst,
        possible: &PossibleSet,
        out: &mut GroundProgram,
        seen: &mut HashSet<GroundRule>,
    ) -> Result<(), AspError> {
        let (body_pos, body_neg, alive) = ground_condition(&rule.body, theta, possible, out)?;
        if !alive {
            return Ok(());
        }
        match &rule.head {
            Head::Atom(a) => {
                let ga = ground_atom(a, theta)?;
                let is_assumable = body_pos.is_empty()
                    && body_neg.is_empty()
                    && self
                        .assumable
                        .iter()
                        .any(|(p, n)| *p == ga.pred && *n == ga.args.len());
                let head = out.intern(ga);
                let inserted = push_rule(
                    out,
                    seen,
                    GroundRule {
                        head: if is_assumable {
                            GroundHead::Choice(head)
                        } else {
                            GroundHead::Atom(head)
                        },
                        pos: body_pos,
                        neg: body_neg,
                    },
                );
                if inserted && is_assumable {
                    out.assumable.push(head);
                }
            }
            Head::None => {
                push_rule(
                    out,
                    seen,
                    GroundRule {
                        head: GroundHead::None,
                        pos: body_pos,
                        neg: body_neg,
                    },
                );
            }
            Head::Choice {
                lower,
                upper,
                elements,
            } => {
                let mut card_elems: Vec<CardElement> = Vec::new();
                for el in elements {
                    let plan = plan_body(&el.condition);
                    let mut exts: Vec<Subst> = Vec::new();
                    join(possible, &plan, theta.clone(), &mut |sigma| {
                        exts.push(sigma.clone());
                        Ok(())
                    })?;
                    for sigma in exts {
                        let atom = out.intern(ground_atom(&el.atom, &sigma)?);
                        let (gpos, gneg, galive) =
                            ground_condition(&el.condition, &sigma, possible, out)?;
                        if !galive {
                            continue;
                        }
                        let mut pos = body_pos.clone();
                        pos.extend(gpos.iter().copied());
                        let mut neg = body_neg.clone();
                        neg.extend(gneg.iter().copied());
                        push_rule(
                            out,
                            seen,
                            GroundRule {
                                head: GroundHead::Choice(atom),
                                pos,
                                neg,
                            },
                        );
                        if lower.is_some() || upper.is_some() {
                            card_elems.push(CardElement {
                                atom,
                                guard_pos: gpos,
                                guard_neg: gneg,
                            });
                        }
                    }
                }
                if lower.is_some() || upper.is_some() {
                    let n = card_elems.len() as u32;
                    out.cards.push(CardConstraint {
                        pos: body_pos,
                        neg: body_neg,
                        elements: card_elems,
                        lower: lower.unwrap_or(0),
                        upper: upper.unwrap_or(n),
                    });
                }
            }
        }
        Ok(())
    }
}

fn push_rule(out: &mut GroundProgram, seen: &mut HashSet<GroundRule>, rule: GroundRule) -> bool {
    if seen.insert(rule.clone()) {
        out.rules.push(rule);
        return true;
    }
    false
}

pub use crate::seminaive::ExtendStats;

/// A resident grounding session produced by [`Grounder::session`].
///
/// The session retains the compiled rules, symbol table, possible-atom
/// arena, and the [`GroundProgram`] itself across [`extend`] calls, so each
/// delta only grounds the genuinely new instances — the semi-naive windows
/// restrict old rules to joins that touch at least one new atom. Atom ids
/// are stable (the ground program is mutated in place, never rebuilt),
/// which is what lets solver state survive alongside.
///
/// [`extend`]: GroundSession::extend
pub struct GroundSession {
    inner: crate::seminaive::Session,
}

impl GroundSession {
    /// The ground program in its current state. Re-solve (or re-build a
    /// solver over) this after every extension.
    #[must_use]
    pub fn program(&self) -> &GroundProgram {
        self.inner.program()
    }

    /// Ground a program delta on top of the session.
    ///
    /// `revoke` names atoms whose *bare choice rules* (`{ a }.` with an
    /// empty body, emitted verbatim in an earlier delta) are retracted —
    /// the temporal frontier defers that this delta replaces with real
    /// definitions. Bare choice rules contribute no completion nogoods,
    /// so retracting one keeps the solver's nogood set monotone.
    ///
    /// # Errors
    ///
    /// * [`AspError::Internal`] if a revoked atom is unknown or has no bare
    ///   choice rule, or if the session (or delta) contains a
    ///   cardinality-bounded choice rule — an old `CardConstraint` gaining
    ///   elements cannot be patched soundly.
    /// * Otherwise the same conditions as [`Grounder::ground`].
    pub fn extend(&mut self, delta: &Program, revoke: &[Atom]) -> Result<ExtendStats, AspError> {
        self.inner.extend(delta, revoke)
    }
}

/// Ground the positive/negative atoms of a literal list under a complete
/// substitution. Returns `(pos, neg, alive)`; `alive` is false when the
/// instance can never fire (a positive atom is underivable) — negative
/// literals over underivable atoms are trivially true and dropped.
fn ground_condition(
    body: &[Literal],
    theta: &Subst,
    possible: &PossibleSet,
    out: &mut GroundProgram,
) -> Result<(Vec<AtomId>, Vec<AtomId>, bool), AspError> {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for lit in body {
        match lit {
            Literal::Pos(a) => {
                let g = ground_atom(a, theta)?;
                if !possible.contains(&g) {
                    return Ok((pos, neg, false));
                }
                pos.push(out.intern(g));
            }
            Literal::Neg(a) => {
                let g = ground_atom(a, theta)?;
                if possible.contains(&g) {
                    neg.push(out.intern(g));
                }
            }
            Literal::Cmp(op, l, r) => {
                let l = apply(l, theta).eval()?;
                let r = apply(r, theta).eval()?;
                if !op.eval(&l, &r) {
                    return Ok((pos, neg, false));
                }
            }
        }
    }
    Ok((pos, neg, true))
}

fn collect_choice_atoms(
    possible: &PossibleSet,
    el: &ChoiceElement,
    theta: &Subst,
    new_atoms: &mut Vec<Atom>,
) -> Result<(), AspError> {
    let plan = plan_body(&el.condition);
    let mut exts: Vec<Subst> = Vec::new();
    join(possible, &plan, theta.clone(), &mut |sigma| {
        exts.push(sigma.clone());
        Ok(())
    })?;
    for sigma in exts {
        new_atoms.push(ground_atom(&el.atom, &sigma)?);
    }
    Ok(())
}

/// Apply a substitution to a term (no evaluation).
fn apply(t: &Term, theta: &Subst) -> Term {
    match t {
        Term::Var(v) => theta.get(v).cloned().unwrap_or_else(|| t.clone()),
        Term::Func(f, args) => {
            Term::Func(f.clone(), args.iter().map(|a| apply(a, theta)).collect())
        }
        Term::BinOp(op, a, b) => {
            Term::BinOp(*op, Box::new(apply(a, theta)), Box::new(apply(b, theta)))
        }
        _ => t.clone(),
    }
}

/// Fully ground an atom under a substitution, evaluating arithmetic.
fn ground_atom(a: &Atom, theta: &Subst) -> Result<Atom, AspError> {
    let args = a
        .args
        .iter()
        .map(|t| apply(t, theta).eval())
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Atom::new(a.pred.clone(), args))
}

/// Order body literals so that every builtin is evaluable when reached and
/// `X = expr` assignments bind before use.
fn plan_body(body: &[Literal]) -> Vec<Literal> {
    let mut remaining: Vec<Literal> = body.to_vec();
    let mut bound: HashSet<String> = HashSet::new();
    let mut out = Vec::with_capacity(body.len());
    while !remaining.is_empty() {
        // 1. Any evaluable comparison (all vars bound).
        if let Some(i) = remaining
            .iter()
            .position(|l| matches!(l, Literal::Cmp(..)) && lit_vars_bound(l, &bound))
        {
            out.push(remaining.remove(i));
            continue;
        }
        // 2. An `=` that binds one new variable from bound terms.
        if let Some(i) = remaining.iter().position(|l| {
            if let Literal::Cmp(CmpOp::Eq, a, b) = l {
                for (x, y) in [(a, b), (b, a)] {
                    if let Term::Var(v) = x {
                        if !bound.contains(v) && term_vars_bound(y, &bound) {
                            return true;
                        }
                    }
                }
            }
            false
        }) {
            let lit = remaining.remove(i);
            add_lit_vars(&lit, &mut bound);
            out.push(lit);
            continue;
        }
        // 3. A grounded negative literal.
        if let Some(i) = remaining
            .iter()
            .position(|l| matches!(l, Literal::Neg(_)) && lit_vars_bound(l, &bound))
        {
            out.push(remaining.remove(i));
            continue;
        }
        // 4. The first positive literal.
        if let Some(i) = remaining.iter().position(|l| matches!(l, Literal::Pos(_))) {
            let lit = remaining.remove(i);
            add_lit_vars(&lit, &mut bound);
            out.push(lit);
            continue;
        }
        // 5. Nothing else applies: flush (safety was already checked).
        out.append(&mut remaining);
    }
    out
}

/// True if every variable of `t` is in `bound` — the allocation-free
/// replacement for collecting a `BTreeSet` per check.
fn term_vars_bound(t: &Term, bound: &HashSet<String>) -> bool {
    match t {
        Term::Var(v) => bound.contains(v),
        Term::Func(_, args) => args.iter().all(|a| term_vars_bound(a, bound)),
        Term::BinOp(_, a, b) => term_vars_bound(a, bound) && term_vars_bound(b, bound),
        Term::Int(_) | Term::Const(_) | Term::Str(_) => true,
    }
}

fn lit_vars_bound(l: &Literal, bound: &HashSet<String>) -> bool {
    match l {
        Literal::Pos(a) | Literal::Neg(a) => a.args.iter().all(|t| term_vars_bound(t, bound)),
        Literal::Cmp(_, x, y) => term_vars_bound(x, bound) && term_vars_bound(y, bound),
    }
}

fn add_term_vars(t: &Term, bound: &mut HashSet<String>) {
    match t {
        Term::Var(v) => {
            bound.insert(v.clone());
        }
        Term::Func(_, args) => {
            for a in args {
                add_term_vars(a, bound);
            }
        }
        Term::BinOp(_, a, b) => {
            add_term_vars(a, bound);
            add_term_vars(b, bound);
        }
        Term::Int(_) | Term::Const(_) | Term::Str(_) => {}
    }
}

fn add_lit_vars(l: &Literal, bound: &mut HashSet<String>) {
    match l {
        Literal::Pos(a) | Literal::Neg(a) => {
            for t in &a.args {
                add_term_vars(t, bound);
            }
        }
        Literal::Cmp(_, x, y) => {
            add_term_vars(x, bound);
            add_term_vars(y, bound);
        }
    }
}

/// Nested-loop join of the planned literals against the possible set,
/// invoking `cb` once per complete substitution.
fn join(
    possible: &PossibleSet,
    plan: &[Literal],
    theta: Subst,
    cb: &mut dyn FnMut(&Subst) -> Result<(), AspError>,
) -> Result<(), AspError> {
    let Some((first, rest)) = plan.split_first() else {
        return cb(&theta);
    };
    match first {
        Literal::Pos(a) => {
            // Narrow by the first argument when it is ground under θ.
            let first_arg = a.args.first().map(|t| apply(t, &theta));
            let cands = match &first_arg {
                Some(t) if t.is_ground() && !matches!(t, Term::BinOp(..)) => {
                    possible.candidates_first(&a.pred, a.args.len(), t)
                }
                _ => possible.candidates(&a.pred, a.args.len()),
            };
            for &cand in cands {
                if let Some(theta2) = unify_atom(a, possible.atom(cand), &theta)? {
                    join(possible, rest, theta2, cb)?;
                }
            }
            Ok(())
        }
        Literal::Neg(a) => {
            // During instantiation the negative literal never *fails* an
            // instance (its truth is decided at solve time), except when the
            // atom is certainly underivable — handled at emission. It must
            // however be ground here.
            let _ = ground_atom(a, &theta)?;
            join(possible, rest, theta, cb)
        }
        Literal::Cmp(op, l, r) => {
            let la = apply(l, &theta);
            let ra = apply(r, &theta);
            if *op == CmpOp::Eq {
                // Binding equality: X = expr (either side). `theta` is
                // owned, so the binding extends it in place — no clone.
                if let Term::Var(v) = &la {
                    if !theta.contains_key(v) {
                        let val = ra.eval()?;
                        let mut theta = theta;
                        theta.insert(v.clone(), val);
                        return join(possible, rest, theta, cb);
                    }
                }
                if let Term::Var(v) = &ra {
                    if !theta.contains_key(v) {
                        let val = la.eval()?;
                        let mut theta = theta;
                        theta.insert(v.clone(), val);
                        return join(possible, rest, theta, cb);
                    }
                }
            }
            let lv = la.eval()?;
            let rv = ra.eval()?;
            if op.eval(&lv, &rv) {
                join(possible, rest, theta, cb)?;
            }
            Ok(())
        }
    }
}

/// Unify a (possibly non-ground) atom pattern with a ground atom, extending
/// the substitution. Returns the extended substitution on success.
fn unify_atom(pattern: &Atom, ground: &Atom, theta: &Subst) -> Result<Option<Subst>, AspError> {
    if pattern.pred != ground.pred || pattern.args.len() != ground.args.len() {
        return Ok(None);
    }
    let mut theta = theta.clone();
    for (p, g) in pattern.args.iter().zip(&ground.args) {
        if !unify_term(p, g, &mut theta)? {
            return Ok(None);
        }
    }
    Ok(Some(theta))
}

fn unify_term(p: &Term, g: &Term, theta: &mut Subst) -> Result<bool, AspError> {
    match p {
        Term::Var(v) => {
            if let Some(bound) = theta.get(v) {
                Ok(bound == g)
            } else {
                theta.insert(v.clone(), g.clone());
                Ok(true)
            }
        }
        Term::Int(_) | Term::Const(_) | Term::Str(_) => Ok(p == g),
        Term::Func(f, args) => match g {
            Term::Func(gf, gargs) if gf == f && gargs.len() == args.len() => {
                for (pa, ga) in args.iter().zip(gargs) {
                    if !unify_term(pa, ga, theta)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(false),
        },
        Term::BinOp(..) => {
            // Arithmetic patterns must be ground after substitution.
            let inst = apply(p, theta);
            if inst.is_ground() {
                Ok(inst.eval()? == *g)
            } else {
                Err(AspError::BadArithmetic(format!(
                    "arithmetic pattern `{inst}` with unbound variables"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn ground_src(src: &str) -> GroundProgram {
        Grounder::new().ground(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn grounds_facts_and_rules() {
        let g = ground_src("p(a). p(b). q(X) :- p(X).");
        // Two facts + two rule instances.
        assert_eq!(g.rules.len(), 4);
        assert_eq!(g.atom_count(), 4);
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let g = ground_src(
            "edge(a,b). edge(b,c). edge(c,d). \
             path(X,Y) :- edge(X,Y). \
             path(X,Z) :- edge(X,Y), path(Y,Z).",
        );
        let path_atoms: Vec<String> = g
            .atoms()
            .filter(|(_, a)| a.pred == "path")
            .map(|(_, a)| a.to_string())
            .collect();
        assert!(path_atoms.contains(&"path(a,d)".to_string()));
        assert_eq!(path_atoms.len(), 6); // ab bc cd ac bd ad
    }

    #[test]
    fn negative_literals_over_underivable_atoms_are_dropped() {
        let g = ground_src("p :- not q.");
        assert_eq!(g.rules.len(), 1);
        assert!(
            g.rules[0].neg.is_empty(),
            "`not q` with underivable q is dropped"
        );
    }

    #[test]
    fn negative_literals_over_derivable_atoms_are_kept() {
        let g = ground_src("{ q }. p :- not q.");
        let p_rule = g
            .rules
            .iter()
            .find(|r| matches!(r.head, GroundHead::Atom(h) if g.atom(h).pred == "p"))
            .unwrap();
        assert_eq!(p_rule.neg.len(), 1);
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let g = ground_src("n(1..4). big(X) :- n(X), X > 2. double(Y) :- n(X), Y = X * 2.");
        let bigs: Vec<String> = g
            .atoms()
            .filter(|(_, a)| a.pred == "big")
            .map(|(_, a)| a.to_string())
            .collect();
        assert_eq!(bigs, vec!["big(3)", "big(4)"]);
        let doubles: Vec<String> = g
            .atoms()
            .filter(|(_, a)| a.pred == "double")
            .map(|(_, a)| a.to_string())
            .collect();
        assert_eq!(
            doubles,
            vec!["double(2)", "double(4)", "double(6)", "double(8)"]
        );
    }

    #[test]
    fn choice_rules_with_conditions_ground_per_instance() {
        let g = ground_src("item(a). item(b). { pick(X) : item(X) } 1.");
        let picks = g.atoms().filter(|(_, a)| a.pred == "pick").count();
        assert_eq!(picks, 2);
        assert_eq!(g.cards.len(), 1);
        assert_eq!(g.cards[0].elements.len(), 2);
        assert_eq!(g.cards[0].upper, 1);
        assert_eq!(g.cards[0].lower, 0);
    }

    #[test]
    fn unbounded_choice_has_no_card_constraint() {
        let g = ground_src("item(a). { pick(X) : item(X) }.");
        assert!(g.cards.is_empty());
    }

    #[test]
    fn minimize_statements_ground() {
        let g = ground_src(
            "item(a). item(b). cost(a, 3). cost(b, 5). \
             { pick(X) : item(X) }. \
             #minimize { C,X : pick(X), cost(X, C) }.",
        );
        assert_eq!(g.minimize.len(), 1);
        let (prio, lits) = &g.minimize[0];
        assert_eq!(*prio, 0);
        assert_eq!(lits.len(), 2);
        let weights: Vec<i64> = lits.iter().map(|l| l.weight).collect();
        assert!(weights.contains(&3) && weights.contains(&5));
    }

    #[test]
    fn minimize_priorities_sorted_high_first() {
        let g = ground_src("a. b. { x }. #minimize { 1@1 : x }. #minimize { 2@5 : x }.");
        let prios: Vec<i64> = g.minimize.iter().map(|(p, _)| *p).collect();
        assert_eq!(prios, vec![5, 1]);
    }

    #[test]
    fn eq_binds_on_either_side() {
        // `X = expr` and `expr = X` both bind the free variable, on both
        // engines (the reference path extends θ in place, no clone).
        for src in [
            "q(1). q(2). p(X) :- q(Y), X = Y + 1.",
            "q(1). q(2). p(X) :- q(Y), Y + 1 = X.",
        ] {
            for g in [
                Grounder::new().ground(&parse(src).unwrap()).unwrap(),
                Grounder::new_reference()
                    .ground(&parse(src).unwrap())
                    .unwrap(),
            ] {
                let ps: Vec<String> = g
                    .atoms()
                    .filter(|(_, a)| a.pred == "p")
                    .map(|(_, a)| a.to_string())
                    .collect();
                assert_eq!(ps, vec!["p(2)", "p(3)"], "source: {src}");
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let g = Grounder::with_budget(10);
        let p = parse("n(1..100). p(X) :- n(X).").unwrap();
        assert!(matches!(
            g.ground(&p),
            Err(AspError::GroundingBudget { limit: 10 })
        ));
    }

    #[test]
    fn duplicate_instances_are_deduped() {
        let g = ground_src("p(a). q :- p(a). q :- p(a).");
        let q_rules = g
            .rules
            .iter()
            .filter(|r| matches!(r.head, GroundHead::Atom(h) if g.atom(h).pred == "q"))
            .count();
        assert_eq!(q_rules, 1);
    }

    #[test]
    fn dead_instances_with_underivable_positive_body_are_dropped() {
        let g = ground_src("p :- q. r.");
        // Rule `p :- q` never instantiates because q is underivable.
        assert_eq!(g.rules.len(), 1);
    }

    #[test]
    fn slicing_drops_unobservable_rules_but_keeps_models() {
        let src = "p(a). q(b). shadow(X) :- q(X). r(X) :- p(X). \
                   { c }. :- c, not r(a). #show r/1.";
        let program = parse(src).unwrap();
        let full = Grounder::new().ground(&program).unwrap();
        let sliced = Grounder::new().with_slicing(true).ground(&program).unwrap();
        assert!(sliced.rules.len() < full.rules.len());
        assert!(!sliced.atoms().any(|(_, a)| a.pred == "shadow"));
        let shown = |g: &GroundProgram| {
            let mut out: Vec<String> = crate::solve::Solver::new(g)
                .enumerate(&crate::solve::SolveOptions::default())
                .unwrap()
                .models
                .iter()
                .map(|m| {
                    let mut v: Vec<String> = m.shown.iter().map(ToString::to_string).collect();
                    v.sort();
                    v.join(" ")
                })
                .collect();
            out.sort();
            out
        };
        assert_eq!(shown(&full), shown(&sliced));
    }

    #[test]
    fn slicing_without_show_is_a_no_op() {
        let program = parse("p(a). q(b). r(X) :- p(X).").unwrap();
        let full = Grounder::new().ground(&program).unwrap();
        let sliced = Grounder::new().with_slicing(true).ground(&program).unwrap();
        assert_eq!(full.rules.len(), sliced.rules.len());
    }

    #[test]
    fn listing_one_grounds() {
        let g = ground_src(
            "component(ew). fault(f4). mitigation(f4, m1). mitigation(f4, m2). \
             { active_mitigation(ew, m1) }. \
             potential_fault(C, F) :- component(C), fault(F), \
                 mitigation(F, M), not active_mitigation(C, M).",
        );
        // Two instances: via m1 (kept `not` literal) and via m2 (dropped literal).
        let pf_rules: Vec<&GroundRule> = g
            .rules
            .iter()
            .filter(
                |r| matches!(r.head, GroundHead::Atom(h) if g.atom(h).pred == "potential_fault"),
            )
            .collect();
        assert_eq!(pf_rules.len(), 2);
        assert!(pf_rules.iter().any(|r| r.neg.len() == 1));
        assert!(pf_rules.iter().any(|r| r.neg.is_empty()));
    }
}
