//! Semantic program analysis: dependency structure, grounding-size
//! prediction, and sound backward slicing.
//!
//! Three cooperating passes over a parsed (and optionally ground) program:
//!
//! * [`deps`] — the predicate dependency graph, SCC stratification,
//!   positive-loop detection, and tightness classification. The ground
//!   certificate [`deps::ground_tight`] is what lets
//!   [`Solver`](crate::solve::Solver) skip the unfounded-set closure
//!   (Fages' theorem: on tight programs, supported models are stable
//!   models).
//! * [`size`] — grounding-size prediction by abstract interpretation:
//!   per-predicate domain-size bounds propagated through rule bodies
//!   (shared variables join, so each variable is counted once) down to a
//!   per-rule instantiation estimate. Backs lint codes `A009` (predicted
//!   grounding explosion) and `A010` (predicate never derivable).
//! * [`slice`] — sound backward slicing: the rules relevant to
//!   constraints, `#minimize`, `#show`n predicates, and assumable
//!   signatures; [`Grounder`](crate::ground::Grounder) can drop the rest
//!   before grounding (see `Grounder::with_slicing`).

pub mod deps;
pub mod size;
pub mod slice;

pub use deps::{analyze_dependencies, ground_tight, DepAnalysis};
pub use size::{predict_sizes, PredBound, RuleEstimate, SizePrediction, EXPLOSION_THRESHOLD};
pub use slice::{slice_program, Slice};
