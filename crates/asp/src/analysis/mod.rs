//! Semantic program analysis: dependency structure, grounding-size
//! prediction, and sound backward slicing.
//!
//! Three cooperating passes over a parsed (and optionally ground) program:
//!
//! * [`deps`] — the predicate dependency graph, SCC stratification,
//!   positive-loop detection, and tightness classification. The ground
//!   certificate [`deps::ground_tight`] is what lets
//!   [`Solver`](crate::solve::Solver) skip the unfounded-set closure
//!   (Fages' theorem: on tight programs, supported models are stable
//!   models).
//! * [`size`] — grounding-size prediction by abstract interpretation:
//!   per-predicate domain-size bounds propagated through rule bodies
//!   (shared variables join, so each variable is counted once) down to a
//!   per-rule instantiation estimate. Backs lint codes `A009` (predicted
//!   grounding explosion) and `A010` (predicate never derivable).
//! * [`mod@slice`] — sound backward slicing: the rules relevant to
//!   constraints, `#minimize`, `#show`n predicates, and assumable
//!   signatures; [`Grounder`](crate::ground::Grounder) can drop the rest
//!   before grounding (see `Grounder::with_slicing`).
//! * [`wfm`] — the well-founded model: van Gelder's alternating fixpoint
//!   over the ground program, a polynomial-time 3-valued approximation
//!   that soundly bounds every stable model (and, in its conditional
//!   form, every stable model compatible with a set of assumptions).
//! * [`mod@simplify`] — ground-program simplification against the WFM
//!   backbone: true atoms become facts, refuted atoms and dead rules
//!   vanish, and the tightness certificate is re-derived on the result.

pub mod deps;
pub mod simplify;
pub mod size;
pub mod slice;
pub mod wfm;

pub use deps::{analyze_dependencies, ground_tight, DepAnalysis};
pub use simplify::{simplify, simplify_with, SimplifyResult};
pub use size::{predict_sizes, PredBound, RuleEstimate, SizePrediction, EXPLOSION_THRESHOLD};
pub use slice::{slice_program, Slice};
pub use wfm::{well_founded, well_founded_with, Truth, WfmResult};
