//! Well-founded model analysis — a polynomial-time static verdict engine.
//!
//! [`well_founded`] computes van Gelder's alternating fixpoint over a
//! [`GroundProgram`]: the certainly-true set `T` grows and the
//! possibly-true set `P` shrinks until both stabilize, yielding a sound
//! 3-valued approximation of **every** stable model — an atom reported
//! [`Truth::True`] is in every answer set, one reported [`Truth::False`]
//! is in none, and only [`Truth::Undefined`] atoms need search. Choice
//! atoms (and therefore assumables, which are choice-supported facts) are
//! never certainly derived, so nondeterminism surfaces as `Undefined`
//! rather than as unsoundness.
//!
//! Each half-step is a least-model computation over a reduct, reusing the
//! semi-naive worklist scheme of
//! [`check::least_model_of_reduct`](crate::check::least_model_of_reduct):
//! CSR positive-occurrence lists, per-rule missing counters, and a
//! derivation stack — every body literal is visited O(1) times per
//! half-step, and the alternation converges in at most `atom_count`
//! rounds (two or three in practice).
//!
//! [`well_founded_with`] is the assumption-aware conditional variant: the
//! assumed literals are pinned before the fixpoint, so the result
//! approximates the stable models *satisfying the assumptions*. When the
//! conditional WFM is total and consistent, its true set **is** the unique
//! answer set under those assumptions — the static fast path the EPA
//! scenario sweeps use to answer verdict queries without search.

use crate::program::{AtomId, CardConstraint, GroundHead, GroundProgram};
use crate::solve::Lit;

/// Three-valued truth under the well-founded semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// In every stable model.
    True,
    /// In no stable model.
    False,
    /// Not decided by the polynomial approximation.
    Undefined,
}

/// The well-founded model of a ground program (possibly conditioned on
/// assumptions), as produced by [`well_founded`] / [`well_founded_with`].
#[derive(Debug, Clone)]
pub struct WfmResult {
    truth: Vec<Truth>,
    /// Atoms certainly in every stable model.
    pub true_count: usize,
    /// Atoms certainly in no stable model.
    pub false_count: usize,
    /// The approximation proves there is no stable model at all: an
    /// integrity constraint (or cardinality bound, or an assumed-false
    /// atom) is violated by the certain part alone.
    pub inconsistent: bool,
}

impl WfmResult {
    /// The 3-valued verdict for one atom.
    #[must_use]
    pub fn value(&self, id: AtomId) -> Truth {
        self.truth[id.index()]
    }

    /// Is the atom certainly in every stable model?
    #[must_use]
    pub fn is_true(&self, id: AtomId) -> bool {
        self.truth[id.index()] == Truth::True
    }

    /// Is the atom certainly in no stable model?
    #[must_use]
    pub fn is_false(&self, id: AtomId) -> bool {
        self.truth[id.index()] == Truth::False
    }

    /// Number of atoms in the program.
    #[must_use]
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True when the program has no atoms at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Atoms left undefined by the approximation.
    #[must_use]
    pub fn undefined_count(&self) -> usize {
        self.len() - self.true_count - self.false_count
    }

    /// Every atom is decided: the WFM is 2-valued. A total, consistent
    /// WFM's true set is the unique stable model.
    #[must_use]
    pub fn total(&self) -> bool {
        self.undefined_count() == 0
    }

    /// Fraction of atoms decided (`1.0` for the empty program).
    #[must_use]
    pub fn decided_fraction(&self) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        (self.true_count + self.false_count) as f64 / self.truth.len() as f64
    }

    /// The certainly-true atoms, in id order.
    pub fn true_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.truth
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Truth::True)
            .map(|(i, _)| AtomId(i as u32))
    }

    /// The certainly-false atoms, in id order.
    pub fn false_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.truth
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Truth::False)
            .map(|(i, _)| AtomId(i as u32))
    }
}

/// The unconditional well-founded model: no atoms pinned, choice atoms and
/// assumables free.
#[must_use]
pub fn well_founded(program: &GroundProgram) -> WfmResult {
    well_founded_with(program, &[])
}

/// The conditional well-founded model under `assumptions`: assumed-true
/// atoms join the certain set as facts, assumed-false atoms are removed
/// from every derivation. Sound w.r.t. the stable models that satisfy the
/// assumptions; `inconsistent` is set when the certain part alone
/// contradicts a constraint, a cardinality bound, or an assumed-false atom
/// (no such model exists). Later assumptions on the same atom win, and a
/// directly contradictory pair marks the result inconsistent.
#[must_use]
pub fn well_founded_with(program: &GroundProgram, assumptions: &[Lit]) -> WfmResult {
    let n_atoms = program.atom_count();
    let rules = &program.rules;

    // CSR positive-occurrence lists, shared by every half-step.
    let mut off = vec![0u32; n_atoms + 1];
    for r in rules {
        for &p in &r.pos {
            off[p.index() + 1] += 1;
        }
    }
    for i in 0..n_atoms {
        off[i + 1] += off[i];
    }
    let mut occ = vec![0u32; off[n_atoms] as usize];
    let mut cursor = off.clone();
    for (ri, r) in rules.iter().enumerate() {
        for &p in &r.pos {
            occ[cursor[p.index()] as usize] = ri as u32;
            cursor[p.index()] += 1;
        }
    }

    let mut assumed_true = vec![false; n_atoms];
    let mut assumed_false = vec![false; n_atoms];
    let mut contradictory = false;
    for l in assumptions {
        let i = l.atom.index();
        if l.positive {
            contradictory |= assumed_false[i];
            assumed_true[i] = true;
            assumed_false[i] = false;
        } else {
            contradictory |= assumed_true[i];
            assumed_false[i] = true;
            assumed_true[i] = false;
        }
    }

    // One monotone half-step: the least set closed under the rules, where
    // `certain` selects the underestimate (choice heads never fire; `not
    // n` holds iff n is outside `opposite`, the current possible set) or
    // the overestimate (choice heads fire; `not n` holds iff n is outside
    // `opposite`, the current certain set). Assumed-true atoms always
    // join; assumed-false atoms never fire as heads in the overestimate —
    // in the underestimate they still derive, so a forced assumed-false
    // atom is caught as an inconsistency afterwards.
    let gamma = |certain: bool, opposite: &[bool]| -> Vec<bool> {
        let mut derived = vec![false; n_atoms];
        let mut missing: Vec<u32> = rules.iter().map(|r| r.pos.len() as u32).collect();
        let mut stack: Vec<u32> = Vec::new();
        let push = |a: usize, derived: &mut Vec<bool>, stack: &mut Vec<u32>| {
            if !derived[a] {
                derived[a] = true;
                stack.push(a as u32);
            }
        };
        for (a, &t) in assumed_true.iter().enumerate() {
            if t {
                push(a, &mut derived, &mut stack);
            }
        }
        let fire = |ri: usize, derived: &mut Vec<bool>, stack: &mut Vec<u32>| {
            let r = &rules[ri];
            let h = match r.head {
                GroundHead::Atom(h) => h,
                GroundHead::Choice(h) if !certain => h,
                _ => return,
            };
            if !certain && assumed_false[h.index()] {
                return;
            }
            if r.neg.iter().any(|n| opposite[n.index()]) {
                return;
            }
            push(h.index(), derived, stack);
        };
        for ri in (0..rules.len()).filter(|&ri| missing[ri] == 0) {
            fire(ri, &mut derived, &mut stack);
        }
        while let Some(a) = stack.pop() {
            for i in off[a as usize]..off[a as usize + 1] {
                let ri = occ[i as usize] as usize;
                missing[ri] -= 1;
                if missing[ri] == 0 {
                    fire(ri, &mut derived, &mut stack);
                }
            }
        }
        derived
    };

    // Alternate: T_0 = assumed-true; P = Γ_over(T); T' = Γ_under(P); the
    // under-approximation grows monotonically, so the loop terminates in
    // at most `n_atoms + 1` rounds.
    let mut certain = assumed_true.clone();
    let mut possible;
    loop {
        possible = gamma(false, &certain);
        let next = gamma(true, &possible);
        if next == certain {
            break;
        }
        certain = next;
    }

    let mut truth = vec![Truth::Undefined; n_atoms];
    let mut true_count = 0;
    let mut false_count = 0;
    for i in 0..n_atoms {
        if certain[i] {
            truth[i] = Truth::True;
            true_count += 1;
        } else if !possible[i] {
            truth[i] = Truth::False;
            false_count += 1;
        }
    }

    // An assumed-false atom the certain derivation forces true means no
    // stable model satisfies the assumptions.
    let mut inconsistent = contradictory || (0..n_atoms).any(|i| assumed_false[i] && certain[i]);
    // A constraint whose body is certainly satisfied (positives certainly
    // true, negatives certainly false) rules out every stable model.
    let certainly = |pos: &[AtomId], neg: &[AtomId]| {
        pos.iter().all(|p| certain[p.index()]) && neg.iter().all(|n| !possible[n.index()])
    };
    inconsistent |= rules
        .iter()
        .any(|r| matches!(r.head, GroundHead::None) && certainly(&r.pos, &r.neg));
    inconsistent |= program.cards.iter().any(|c| {
        card_refuted(c, &certainly, |id| {
            (certain[id.index()], possible[id.index()])
        })
    });

    WfmResult {
        truth,
        true_count,
        false_count,
        inconsistent,
    }
}

/// Conservative cardinality refutation: with the body certainly satisfied,
/// the certainly-held element count already exceeds the upper bound, or
/// even counting every possibly-held element cannot reach the lower bound.
fn card_refuted(
    c: &CardConstraint,
    certainly: &impl Fn(&[AtomId], &[AtomId]) -> bool,
    value: impl Fn(AtomId) -> (bool, bool),
) -> bool {
    if !certainly(&c.pos, &c.neg) {
        return false;
    }
    let mut held_certain = 0u32;
    let mut held_possible = 0u32;
    for e in &c.elements {
        let (atom_certain, atom_possible) = value(e.atom);
        let guard_certain = certainly(&e.guard_pos, &e.guard_neg);
        // The guard possibly holds unless a positive guard is certainly
        // false or a negative guard certainly true.
        let guard_possible =
            e.guard_pos.iter().all(|p| value(*p).1) && e.guard_neg.iter().all(|n| !value(*n).0);
        if atom_certain && guard_certain {
            held_certain += 1;
        }
        if atom_possible && guard_possible {
            held_possible += 1;
        }
    }
    held_certain > c.upper || held_possible < c.lower
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    fn ground(src: &str) -> GroundProgram {
        Grounder::new().ground(&parse(src).unwrap()).unwrap()
    }

    fn value(g: &GroundProgram, w: &WfmResult, name: &str) -> Truth {
        let id = g
            .atoms()
            .find(|(_, a)| a.to_string() == name)
            .unwrap_or_else(|| panic!("atom {name} not interned"))
            .0;
        w.value(id)
    }

    #[test]
    fn stratified_programs_are_total() {
        let g = ground("p. q :- p. r :- q, not s.");
        let w = well_founded(&g);
        assert!(w.total());
        assert!(!w.inconsistent);
        assert_eq!(value(&g, &w, "p"), Truth::True);
        assert_eq!(value(&g, &w, "q"), Truth::True);
        assert_eq!(value(&g, &w, "r"), Truth::True);
        assert!((w.decided_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn positive_loops_are_unfounded() {
        // The loop's only support (`b :- not f`) is refuted by the fact
        // `f`, so the grounder keeps the rules but nothing founds them.
        let g = ground("f. a :- b. b :- a. b :- not f. { x }. p :- x, not a.");
        let w = well_founded(&g);
        assert_eq!(value(&g, &w, "f"), Truth::True);
        assert_eq!(value(&g, &w, "a"), Truth::False, "no external support");
        assert_eq!(value(&g, &w, "b"), Truth::False);
        assert_eq!(value(&g, &w, "x"), Truth::Undefined, "free choice");
        assert_eq!(value(&g, &w, "p"), Truth::Undefined, "follows the choice");
    }

    #[test]
    fn even_negation_loops_stay_undefined() {
        let g = ground("a :- not b. b :- not a. c.");
        let w = well_founded(&g);
        assert_eq!(value(&g, &w, "a"), Truth::Undefined);
        assert_eq!(value(&g, &w, "b"), Truth::Undefined);
        assert_eq!(value(&g, &w, "c"), Truth::True);
        assert_eq!(w.undefined_count(), 2);
    }

    #[test]
    fn choice_atoms_and_their_consequences_are_undefined() {
        let g = ground("{ m }. blocked :- m. alarm :- not blocked.");
        let w = well_founded(&g);
        assert_eq!(value(&g, &w, "m"), Truth::Undefined);
        assert_eq!(value(&g, &w, "blocked"), Truth::Undefined);
        assert_eq!(value(&g, &w, "alarm"), Truth::Undefined);
    }

    #[test]
    fn certainly_violated_constraint_is_inconsistent() {
        let w = well_founded(&ground("p. :- p."));
        assert!(w.inconsistent);
        // A constraint guarded by an undefined atom is not refuted.
        let w = well_founded(&ground("{ x }. p :- x. :- p."));
        assert!(!w.inconsistent);
    }

    #[test]
    fn unreachable_lower_bound_is_inconsistent() {
        // The only element can never hold, but the bound demands one.
        let g = ground("f. dead :- live. live :- dead. live :- not f. 1 { pick : dead } 1.");
        let w = well_founded(&g);
        assert!(w.inconsistent, "lower bound 1 over impossible elements");
    }

    #[test]
    fn conditional_wfm_pins_assumptions_and_detects_refutation() {
        let g = ground("{ m }. blocked :- m. alarm :- not blocked.");
        let m = g.atoms().find(|(_, a)| a.to_string() == "m").unwrap().0;
        let w_on = well_founded_with(&g, &[Lit::pos(m)]);
        assert_eq!(value(&g, &w_on, "blocked"), Truth::True);
        assert_eq!(value(&g, &w_on, "alarm"), Truth::False);
        assert!(w_on.total() && !w_on.inconsistent);
        let w_off = well_founded_with(&g, &[Lit::neg(m)]);
        assert_eq!(value(&g, &w_off, "blocked"), Truth::False);
        assert_eq!(value(&g, &w_off, "alarm"), Truth::True);
        assert!(w_off.total() && !w_off.inconsistent);

        // Assuming a forced atom false is inconsistent.
        let g = ground("p.");
        let p = g.atoms().next().unwrap().0;
        assert!(well_founded_with(&g, &[Lit::neg(p)]).inconsistent);
        // So is a directly contradictory assumption pair.
        assert!(well_founded_with(&g, &[Lit::pos(p), Lit::neg(p)]).inconsistent);
    }

    #[test]
    fn conditional_total_wfm_is_the_unique_model() {
        // Pinning every choice atom makes the WFM total — the EPA sweep
        // fast path.
        let g = ground("{ f }. { m }. bad :- f, not m. ok :- not bad.");
        let f = g.atoms().find(|(_, a)| a.to_string() == "f").unwrap().0;
        let m = g.atoms().find(|(_, a)| a.to_string() == "m").unwrap().0;
        let w = well_founded_with(&g, &[Lit::pos(f), Lit::neg(m)]);
        assert!(w.total() && !w.inconsistent);
        assert_eq!(value(&g, &w, "bad"), Truth::True);
        assert_eq!(value(&g, &w, "ok"), Truth::False);
        let names: Vec<String> = w.true_atoms().map(|id| g.atom(id).to_string()).collect();
        assert_eq!(
            names,
            ["f", "bad"],
            "the unique stable model under f, not m"
        );
    }
}
