//! Dependency analysis: predicate dependency graph, SCC stratification,
//! positive-loop detection, and tightness classification.
//!
//! Two levels of precision:
//!
//! * **Predicate level** ([`analyze_dependencies`]): cheap, source-based.
//!   A program with no predicate-level positive loop is tight however it
//!   grounds, but the converse fails — `holds(F, T+1) :- holds(F, T)` is
//!   predicate-recursive yet every unrolling is acyclic.
//! * **Atom level** ([`ground_tight`]): exact on the ground program. This
//!   is the certificate [`Solver`](crate::solve::Solver) consumes to skip
//!   the unfounded-set closure (Fages' theorem).

use std::collections::{BTreeSet, HashMap};

use crate::ast::{Head, Literal, Program, Statement};
use crate::program::{GroundHead, GroundProgram};

/// Every `head -> body` predicate dependency, with negation marking.
/// Choice-element conditions count as body dependencies of the element.
#[must_use]
pub fn dependency_edges(program: &Program) -> Vec<(String, String, bool)> {
    let mut edges = Vec::new();
    for stmt in &program.statements {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        let mut heads: Vec<String> = Vec::new();
        match &rule.head {
            Head::Atom(a) => heads.push(a.pred.clone()),
            Head::Choice { elements, .. } => {
                for e in elements {
                    heads.push(e.atom.pred.clone());
                    for lit in &e.condition {
                        push_edge(&mut edges, &e.atom.pred, lit);
                    }
                }
            }
            Head::None => {}
        }
        for h in &heads {
            for lit in &rule.body {
                push_edge(&mut edges, h, lit);
            }
        }
    }
    edges
}

fn push_edge(edges: &mut Vec<(String, String, bool)>, head: &str, lit: &Literal) {
    match lit {
        Literal::Pos(a) => edges.push((head.to_owned(), a.pred.clone(), false)),
        Literal::Neg(a) => edges.push((head.to_owned(), a.pred.clone(), true)),
        Literal::Cmp(..) => {}
    }
}

/// Iterative Tarjan SCC; returns the component id of every node.
///
/// Component ids come out in **reverse topological order** of the
/// condensation: for an edge `u -> v` between different components,
/// `comp[v] < comp[u]` — ascending ids visit dependencies first.
#[must_use]
pub fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let (mut index, mut comp_count) = (0usize, 0usize);
    let mut idx = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut comp = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    // Explicit call stack: (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if idx[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                idx[v] = index;
                low[v] = index;
                index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*child) {
                *child += 1;
                if idx[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                if low[v] == idx[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comp
}

/// Predicate-level dependency structure of a non-ground program.
#[derive(Debug, Clone)]
pub struct DepAnalysis {
    /// Every predicate appearing in a rule head or body, sorted.
    pub preds: Vec<String>,
    /// Component id per predicate (parallel to `preds`); ascending ids
    /// visit dependencies before dependents.
    pub comp: Vec<usize>,
    /// Members of each strongly connected component, in component-id
    /// order; members sorted by name.
    pub components: Vec<Vec<String>>,
    /// Stratum per component (0 = bottom). Meaningful when `stratified`;
    /// negative edges inside a component make the labelling partial.
    pub strata: Vec<usize>,
    /// Number of strata (`max stratum + 1`; 0 for an empty program).
    pub stratum_count: usize,
    /// No component contains an internal negative edge.
    pub stratified: bool,
    /// Components with an internal positive edge — predicate-level
    /// recursion (includes self-loops).
    pub positive_loops: Vec<Vec<String>>,
    /// Components with both an internal positive **and** an internal
    /// negative edge: non-tight loops through negation (lint `A011`).
    pub neg_positive_loops: Vec<Vec<String>>,
    /// No positive loop at the predicate level. Sufficient (not
    /// necessary) for ground tightness — see [`ground_tight`] for the
    /// exact certificate.
    pub pred_tight: bool,
}

/// Compute the predicate dependency graph, its SCCs in dependency order,
/// the stratification, and the loop/tightness classification.
#[must_use]
pub fn analyze_dependencies(program: &Program) -> DepAnalysis {
    let edges = dependency_edges(program);
    let mut pred_set: BTreeSet<&str> = BTreeSet::new();
    for (h, b, _) in &edges {
        pred_set.insert(h);
        pred_set.insert(b);
    }
    // Predicates that only appear as facts still belong to the vertex set.
    for stmt in &program.statements {
        if let Statement::Rule(rule) = stmt {
            match &rule.head {
                Head::Atom(a) => {
                    pred_set.insert(&a.pred);
                }
                Head::Choice { elements, .. } => {
                    for e in elements {
                        pred_set.insert(&e.atom.pred);
                    }
                }
                Head::None => {}
            }
        }
    }
    let preds: Vec<String> = pred_set.iter().map(|s| (*s).to_owned()).collect();
    let index: HashMap<&str, usize> = preds
        .iter()
        .enumerate()
        .map(|(i, p)| (p.as_str(), i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); preds.len()];
    for (h, b, _) in &edges {
        adj[index[h.as_str()]].push(index[b.as_str()]);
    }
    let comp = tarjan_scc(&adj);
    let comp_count = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut components: Vec<Vec<String>> = vec![Vec::new(); comp_count];
    for (i, &c) in comp.iter().enumerate() {
        components[c].push(preds[i].clone());
    }

    // Internal edge classification per component.
    let mut has_pos = vec![false; comp_count];
    let mut has_neg = vec![false; comp_count];
    let mut strata = vec![0usize; comp_count];
    let mut stratified = true;
    for (h, b, neg) in &edges {
        let (ch, cb) = (comp[index[h.as_str()]], comp[index[b.as_str()]]);
        if ch == cb {
            if *neg {
                has_neg[ch] = true;
                stratified = false;
            } else {
                has_pos[ch] = true;
            }
        }
    }
    // Strata over the condensation: dependencies carry lower component
    // ids, so one ascending sweep reaches the fixpoint.
    for (h, b, neg) in &edges {
        let (ch, cb) = (comp[index[h.as_str()]], comp[index[b.as_str()]]);
        if ch != cb {
            strata[ch] = strata[ch].max(strata[cb] + usize::from(*neg));
        }
    }
    let stratum_count = strata.iter().copied().max().map_or(0, |m| m + 1);

    let positive_loops: Vec<Vec<String>> = (0..comp_count)
        .filter(|&c| has_pos[c])
        .map(|c| components[c].clone())
        .collect();
    let neg_positive_loops: Vec<Vec<String>> = (0..comp_count)
        .filter(|&c| has_pos[c] && has_neg[c])
        .map(|c| components[c].clone())
        .collect();
    let pred_tight = positive_loops.is_empty();
    DepAnalysis {
        preds,
        comp,
        components,
        strata,
        stratum_count,
        stratified,
        positive_loops,
        neg_positive_loops,
        pred_tight,
    }
}

/// Is the ground program *tight* — is the atom-level positive dependency
/// graph (rule head to positive body atoms, over normal and choice rules)
/// acyclic?
///
/// On a tight program every supported model is stable (Fages' theorem),
/// so the solver's incremental support accounting reaches exactly the
/// unfounded-set fixpoint and the closure can be skipped.
#[must_use]
pub fn ground_tight(g: &GroundProgram) -> bool {
    let n = g.atom_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    for r in &g.rules {
        let h = match r.head {
            GroundHead::Atom(h) | GroundHead::Choice(h) => h,
            GroundHead::None => continue,
        };
        for &p in &r.pos {
            adj[h.index()].push(p.0);
            indeg[p.index()] += 1;
        }
    }
    // Kahn's algorithm: the graph is acyclic iff every node drains.
    let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut drained = 0usize;
    while let Some(v) = queue.pop() {
        drained += 1;
        for &w in &adj[v as usize] {
            let w = w as usize;
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w as u32);
            }
        }
    }
    drained == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    fn analyze(src: &str) -> DepAnalysis {
        analyze_dependencies(&parse(src).unwrap())
    }

    #[test]
    fn stratified_program_gets_layered_strata() {
        let a = analyze("p(a). q(X) :- p(X). r(X) :- q(X), not s(X). s(b).");
        assert!(a.stratified);
        assert!(a.pred_tight);
        assert!(a.positive_loops.is_empty());
        // r sits strictly above s (negative edge) and above q.
        let comp_of = |name: &str| a.comp[a.preds.iter().position(|p| p == name).unwrap()];
        assert!(a.strata[comp_of("r")] > a.strata[comp_of("s")]);
        assert!(a.strata[comp_of("r")] > a.strata[comp_of("q")]);
        assert_eq!(a.strata[comp_of("p")], 0);
        assert!(a.stratum_count >= 2);
    }

    #[test]
    fn positive_recursion_is_a_loop_but_stratified() {
        let a = analyze("e(a,b). e(X,Z) :- e(X,Y), e(Y,Z).");
        assert!(a.stratified);
        assert!(!a.pred_tight);
        assert_eq!(a.positive_loops, vec![vec!["e".to_owned()]]);
        assert!(a.neg_positive_loops.is_empty(), "no negation in the loop");
    }

    #[test]
    fn negation_cycle_breaks_stratification() {
        let a = analyze("a :- not b. b :- not a.");
        assert!(!a.stratified);
        assert!(a.pred_tight, "even loops have no positive edge");
        assert!(a.neg_positive_loops.is_empty());
    }

    #[test]
    fn non_tight_loop_through_negation_is_classified() {
        let a = analyze("a :- a, not b. b :- not a.");
        assert!(!a.stratified);
        assert!(!a.pred_tight);
        assert_eq!(
            a.neg_positive_loops,
            vec![vec!["a".to_owned(), "b".to_owned()]]
        );
    }

    #[test]
    fn components_come_out_dependencies_first() {
        let a = analyze("p(a). q(X) :- p(X). r(X) :- q(X).");
        let comp_of = |name: &str| a.comp[a.preds.iter().position(|p| p == name).unwrap()];
        assert!(comp_of("p") < comp_of("q"));
        assert!(comp_of("q") < comp_of("r"));
    }

    #[test]
    fn ground_tightness_is_atom_level() {
        // Predicate-recursive but every ground instance steps forward in
        // time: ground-tight.
        let temporal = "time(0). time(1). time(2). holds(0). \
                        holds(T) :- holds(S), time(T), time(S), T = S + 1.";
        let g = Grounder::new().ground(&parse(temporal).unwrap()).unwrap();
        assert!(ground_tight(&g));
        let a = analyze(temporal);
        assert!(!a.pred_tight, "predicate level over-approximates");

        // A genuine ground positive loop (seeded through a choice so the
        // grounder cannot drop it as underivable).
        let loopy = Grounder::new()
            .ground(&parse("{ x }. a :- x. a :- b. b :- a.").unwrap())
            .unwrap();
        assert!(!ground_tight(&loopy));

        // Self-supporting choice counts too.
        let choice = Grounder::new()
            .ground(&parse("{ a }. { a } :- a.").unwrap())
            .unwrap();
        assert!(!ground_tight(&choice));
    }
}
