//! Grounding-size prediction by abstract interpretation.
//!
//! Every predicate argument position carries an upper bound on the number
//! of distinct values it can hold; every predicate carries a bound on its
//! distinct ground atoms. Fact predicates are counted exactly; derived
//! predicates get their bounds from a monotone fixpoint over the rules:
//! the domain of a variable is the minimum bound over the positive body
//! positions it occurs in (a shared variable joins, so it is counted
//! once), `V = expr` bindings inherit the bound of the expression's
//! variables, and a rule's instantiation estimate is the product of its
//! variable domains.
//!
//! On top of the domains sits a functional-dependency analysis: an
//! argument position is *functional* when its value is fixed by the
//! values of the remaining positions — `inflow(tank, rate)` with one
//! rate per tank, or a temporal state predicate whose level is a
//! function of (tank, step). Fact signatures are checked exactly by
//! projection counting; derived signatures are checked by a greatest
//! fixpoint over their (single) defining rule. Variables bound at a
//! functional position of a joined literal then stop multiplying the
//! instantiation estimate, which is what keeps recursive state
//! predicates from saturating to the universe.
//!
//! Bounds are heuristic upper estimates, not certificates — they back the
//! *advisory* lints `A009` (predicted grounding explosion) and `A010`
//! (predicate never derivable; a zero bound is only ever produced when no
//! rule can fire, so that one is sound) plus the predicted-vs-actual
//! report of `cpsrisk analyze`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ast::{CmpOp, Head, Literal, Program, Statement, Term};

/// Rules predicted to ground into more instances than this trigger `A009`.
pub const EXPLOSION_THRESHOLD: f64 = 1_000_000.0;

/// All bounds saturate here; a saturated bound means "could not converge,
/// assume huge".
const SIZE_CAP: f64 = 1e12;

/// Upper bounds for one predicate signature.
#[derive(Debug, Clone, PartialEq)]
pub struct PredBound {
    /// Predicate name.
    pub pred: String,
    /// Arity of this signature.
    pub arity: usize,
    /// Upper bound on distinct ground atoms of the predicate.
    pub atoms: f64,
    /// Per-argument-position upper bound on distinct values.
    pub args: Vec<f64>,
    /// The predicate appears in some rule head (facts included).
    pub defined: bool,
}

/// Predicted ground instances for one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleEstimate {
    /// Index into `Program::statements` (aligned with
    /// `SpannedProgram::statement_spans`).
    pub stmt: usize,
    /// Predicted number of ground instances of this statement.
    pub instances: f64,
}

/// The full prediction: per-predicate bounds and per-statement estimates.
#[derive(Debug, Clone)]
pub struct SizePrediction {
    /// Bounds per predicate signature, sorted by `(pred, arity)`.
    pub preds: Vec<PredBound>,
    /// Instantiation estimates for every rule and `#minimize` statement.
    pub rules: Vec<RuleEstimate>,
    /// Sum of all statement estimates (saturating).
    pub total: f64,
}

impl SizePrediction {
    /// Bound for a signature, if it appears in the program.
    #[must_use]
    pub fn bound(&self, pred: &str, arity: usize) -> Option<&PredBound> {
        self.preds
            .iter()
            .find(|b| b.pred == pred && b.arity == arity)
    }
}

/// Saturating product/sum helpers: everything is clamped to [`SIZE_CAP`].
fn sat(x: f64) -> f64 {
    if x.is_finite() && x < SIZE_CAP {
        x
    } else {
        SIZE_CAP
    }
}

#[derive(Clone, PartialEq)]
struct Bounds {
    atoms: Vec<f64>,
    args: Vec<Vec<f64>>,
}

struct Ctx<'p> {
    program: &'p Program,
    sigs: Vec<(String, usize)>,
    index: HashMap<(String, usize), usize>,
    defined: Vec<bool>,
    /// Distinct ground (sub)terms in the program: the Herbrand-universe
    /// estimate that caps any single argument position.
    universe: f64,
    facts: Bounds,
    /// Fact statements already counted exactly in `facts`.
    is_fact: Vec<bool>,
    /// `functional[s][j]`: position `j` of signature `s` holds at most
    /// one value for each combination of the other positions. Heuristic
    /// for derived signatures (distinct defining rules are assumed not to
    /// collide on the key), so it feeds estimates only, never `A010`.
    functional: Vec<Vec<bool>>,
}

/// Predict per-predicate domain sizes and per-rule instantiation counts.
#[must_use]
pub fn predict_sizes(program: &Program) -> SizePrediction {
    let ctx = build_ctx(program);
    let nsigs = ctx.sigs.len();
    let mut cur = ctx.facts.clone();
    // Enough headroom for temporal chains, whose argument bounds grow by
    // a constant per step until the time domain caps them.
    let max_iter = (2 * nsigs + 8).max(64);
    let mut converged = false;
    for _ in 0..max_iter {
        let next = step(&ctx, &cur);
        if next == cur {
            converged = true;
            break;
        }
        cur = next;
    }
    if !converged {
        // Force-saturate whatever is still moving; one more monotone step
        // folds the saturated bounds into their dependents.
        let next = step(&ctx, &cur);
        for s in 0..nsigs {
            if next.atoms[s] != cur.atoms[s] || next.args[s] != cur.args[s] {
                let arity = ctx.sigs[s].1;
                cur.atoms[s] = sat(ctx.universe.powi(arity.max(1) as i32));
                for a in &mut cur.args[s] {
                    *a = ctx.universe;
                }
            } else {
                cur.atoms[s] = next.atoms[s];
                cur.args[s] = next.args[s].clone();
            }
        }
        cur = step(&ctx, &cur);
    }

    let mut rules = Vec::new();
    let mut total = 0.0f64;
    for (si, stmt) in program.statements.iter().enumerate() {
        let instances = match stmt {
            Statement::Rule(_) if ctx.is_fact[si] => 1.0,
            Statement::Rule(rule) => estimate_rule(&ctx, &cur, rule),
            Statement::Minimize { elements, .. } => {
                let mut est = 0.0f64;
                for e in elements {
                    let doms = domains(&ctx, &cur, &e.condition);
                    let cond: Vec<&Literal> = e.condition.iter().collect();
                    let det = determined_vars(&ctx, &cond);
                    let mut vars = BTreeSet::new();
                    for lit in &e.condition {
                        literal_vars(lit, &mut vars);
                    }
                    e.weight.collect_vars(&mut vars);
                    for t in &e.terms {
                        t.collect_vars(&mut vars);
                    }
                    est = sat(est + free_product(&vars, &det, &doms, ctx.universe));
                }
                est
            }
            Statement::Show { .. } => continue,
        };
        rules.push(RuleEstimate {
            stmt: si,
            instances,
        });
        total = sat(total + instances);
    }

    let preds = ctx
        .sigs
        .iter()
        .enumerate()
        .map(|(s, (pred, arity))| PredBound {
            pred: pred.clone(),
            arity: *arity,
            atoms: cur.atoms[s],
            args: cur.args[s].clone(),
            defined: ctx.defined[s],
        })
        .collect();
    SizePrediction {
        preds,
        rules,
        total,
    }
}

fn build_ctx(program: &Program) -> Ctx<'_> {
    let mut sig_set: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut defined_set: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut ground_terms: BTreeSet<String> = BTreeSet::new();
    let mut each_atom = |atom: &crate::ast::Atom, is_head: bool| {
        let sig = (atom.pred.clone(), atom.args.len());
        if is_head {
            defined_set.insert(sig.clone());
        }
        sig_set.insert(sig);
    };
    let body_atom = |lit: &Literal| match lit {
        Literal::Pos(a) | Literal::Neg(a) => Some(a.clone()),
        Literal::Cmp(..) => None,
    };
    for stmt in &program.statements {
        match stmt {
            Statement::Rule(rule) => {
                match &rule.head {
                    Head::Atom(a) => each_atom(a, true),
                    Head::Choice { elements, .. } => {
                        for e in elements {
                            each_atom(&e.atom, true);
                            for lit in &e.condition {
                                if let Some(a) = body_atom(lit) {
                                    each_atom(&a, false);
                                }
                            }
                        }
                    }
                    Head::None => {}
                }
                for lit in &rule.body {
                    if let Some(a) = body_atom(lit) {
                        each_atom(&a, false);
                    }
                }
            }
            Statement::Minimize { elements, .. } => {
                for e in elements {
                    for lit in &e.condition {
                        if let Some(a) = body_atom(lit) {
                            each_atom(&a, false);
                        }
                    }
                }
            }
            Statement::Show { .. } => {}
        }
        collect_ground_subterms(stmt, &mut ground_terms);
    }
    let sigs: Vec<(String, usize)> = sig_set.into_iter().collect();
    let index: HashMap<(String, usize), usize> = sigs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), i))
        .collect();
    let defined: Vec<bool> = sigs.iter().map(|s| defined_set.contains(s)).collect();
    let universe = ground_terms.len().max(1) as f64;

    // Count fact predicates exactly: distinct tuples and per-position
    // distinct values.
    let mut tuples: Vec<BTreeSet<String>> = vec![BTreeSet::new(); sigs.len()];
    let mut rows: Vec<Vec<Vec<String>>> = vec![Vec::new(); sigs.len()];
    let mut values: Vec<Vec<BTreeSet<String>>> = sigs
        .iter()
        .map(|(_, arity)| vec![BTreeSet::new(); *arity])
        .collect();
    let mut is_fact = vec![false; program.statements.len()];
    for (si, stmt) in program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        let Head::Atom(a) = &rule.head else {
            continue;
        };
        if !rule.body.is_empty() || !a.is_ground() {
            continue;
        }
        is_fact[si] = true;
        let s = index[&(a.pred.clone(), a.args.len())];
        if tuples[s].insert(format!("{:?}", a.args)) {
            rows[s].push(a.args.iter().map(|t| format!("{t:?}")).collect());
        }
        for (i, t) in a.args.iter().enumerate() {
            values[s][i].insert(format!("{t:?}"));
        }
    }
    let facts = Bounds {
        atoms: tuples.iter().map(|t| t.len() as f64).collect(),
        args: values
            .iter()
            .map(|v| v.iter().map(|s| s.len() as f64).collect())
            .collect(),
    };
    let functional = functional_positions(program, &sigs, &index, &is_fact, &rows);
    Ctx {
        program,
        sigs,
        index,
        defined,
        universe,
        facts,
        is_fact,
        functional,
    }
}

/// Compute the per-signature functional-position flags.
///
/// * Arity-0/1 signatures never carry a flag (a position "functional in
///   the other positions" of an arity-1 signature would claim a single
///   atom, which recursion routinely violates).
/// * Fact signatures are checked exactly: position `j` is functional iff
///   the tuples have as many distinct projections-without-`j` as tuples.
/// * Derived signatures keep a flag only when at most one non-fact rule
///   defines them (two rules could derive the same key with different
///   values) and that rule provably maps each key to one value, checked
///   by a greatest fixpoint: start optimistic, strike a position whose
///   head term is not functionally determined by the other head
///   positions under the current flags.
/// * Choice heads are nondeterministic, so they clear every flag.
fn functional_positions(
    program: &Program,
    sigs: &[(String, usize)],
    index: &HashMap<(String, usize), usize>,
    is_fact: &[bool],
    fact_rows: &[Vec<Vec<String>>],
) -> Vec<Vec<bool>> {
    let mut fd: Vec<Vec<bool>> = sigs
        .iter()
        .map(|(_, arity)| vec![*arity >= 2; *arity])
        .collect();
    for (s, rows) in fact_rows.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        for (j, flag) in fd[s].iter_mut().enumerate() {
            if !*flag {
                continue;
            }
            let mut keys: BTreeSet<Vec<&String>> = BTreeSet::new();
            for row in rows {
                keys.insert(
                    row.iter()
                        .enumerate()
                        .filter(|&(i, _)| i != j)
                        .map(|(_, v)| v)
                        .collect(),
                );
            }
            *flag = keys.len() == rows.len();
        }
    }
    // Count defining rules per signature; choice heads poison outright.
    let mut rule_heads: Vec<usize> = vec![0; sigs.len()];
    let mut rules: Vec<(usize, &crate::ast::Rule)> = Vec::new();
    for (si, stmt) in program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        if is_fact[si] {
            continue;
        }
        match &rule.head {
            Head::Atom(a) => {
                let s = index[&(a.pred.clone(), a.args.len())];
                rule_heads[s] += 1;
                rules.push((s, rule));
            }
            Head::Choice { elements, .. } => {
                for e in elements {
                    let s = index[&(e.atom.pred.clone(), e.atom.args.len())];
                    fd[s].iter_mut().for_each(|f| *f = false);
                }
            }
            Head::None => {}
        }
    }
    for (s, &n) in rule_heads.iter().enumerate() {
        if n > 1 {
            fd[s].iter_mut().for_each(|f| *f = false);
        }
    }
    // Greatest fixpoint over the single defining rules.
    loop {
        let mut changed = false;
        for &(s, rule) in &rules {
            let Head::Atom(a) = &rule.head else {
                continue;
            };
            for j in 0..a.args.len() {
                if !fd[s][j] {
                    continue;
                }
                let mut seed = BTreeSet::new();
                for (i, t) in a.args.iter().enumerate() {
                    if i != j {
                        t.collect_vars(&mut seed);
                    }
                }
                let det = fd_closure(seed, &all_positive_literals(rule), &fd, index);
                let mut need = BTreeSet::new();
                a.args[j].collect_vars(&mut need);
                if !need.is_subset(&det) {
                    fd[s][j] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return fd;
        }
    }
}

/// Closure of the variables functionally determined by `seed`, under the
/// rule's positive literals: `V = expr` binds `V` once `expr` is
/// determined (and inverts through `+`/`-` when only one variable is
/// left open), and a literal whose position `j` is functional binds the
/// variable there once the other positions are determined.
fn fd_closure(
    seed: BTreeSet<String>,
    lits: &[&Literal],
    fd: &[Vec<bool>],
    index: &HashMap<(String, usize), usize>,
) -> BTreeSet<String> {
    let mut det = seed;
    loop {
        let mut changed = false;
        for lit in lits {
            match lit {
                Literal::Cmp(CmpOp::Eq, l, r) => {
                    for (a, b) in [(l, r), (r, l)] {
                        if let Term::Var(v) = a {
                            if !det.contains(v) {
                                let mut bv = BTreeSet::new();
                                b.collect_vars(&mut bv);
                                if bv.is_subset(&det) {
                                    det.insert(v.clone());
                                    changed = true;
                                }
                            }
                        }
                        let mut av = BTreeSet::new();
                        a.collect_vars(&mut av);
                        if av.is_subset(&det) {
                            let mut bv = BTreeSet::new();
                            b.collect_vars(&mut bv);
                            let open: Vec<&String> =
                                bv.iter().filter(|v| !det.contains(*v)).collect();
                            if let [v] = open[..] {
                                if solves_uniquely(b, v) {
                                    det.insert(v.clone());
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                Literal::Pos(atom) => {
                    let Some(&s) = index.get(&(atom.pred.clone(), atom.args.len())) else {
                        continue;
                    };
                    for (j, t) in atom.args.iter().enumerate() {
                        if !fd[s][j] {
                            continue;
                        }
                        let Term::Var(v) = t else { continue };
                        if det.contains(v) {
                            continue;
                        }
                        let mut others = BTreeSet::new();
                        for (i, ti) in atom.args.iter().enumerate() {
                            if i != j {
                                ti.collect_vars(&mut others);
                            }
                        }
                        if others.is_subset(&det) {
                            det.insert(v.clone());
                            changed = true;
                        }
                    }
                }
                Literal::Neg(_) | Literal::Cmp(..) => {}
            }
        }
        if !changed {
            return det;
        }
    }
}

/// `expr = c` has at most one solution for `v`: `v` occurs exactly once
/// and only under `+`/`-` (affine with coefficient ±1).
fn solves_uniquely(t: &Term, v: &str) -> bool {
    fn occurs(t: &Term, v: &str) -> bool {
        let mut vars = BTreeSet::new();
        t.collect_vars(&mut vars);
        vars.contains(v)
    }
    match t {
        Term::Var(name) => name == v,
        Term::BinOp(op, l, r) => {
            if !matches!(op, crate::ast::ArithOp::Add | crate::ast::ArithOp::Sub) {
                return false;
            }
            match (occurs(l, v), occurs(r, v)) {
                (true, false) => solves_uniquely(l, v),
                (false, true) => solves_uniquely(r, v),
                _ => false,
            }
        }
        _ => false,
    }
}

/// One monotone step: recompute every bound as facts plus the sum of rule
/// head contributions under the current bounds.
fn step(ctx: &Ctx<'_>, cur: &Bounds) -> Bounds {
    let mut next = ctx.facts.clone();
    for (si, stmt) in ctx.program.statements.iter().enumerate() {
        let Statement::Rule(rule) = stmt else {
            continue;
        };
        if ctx.is_fact[si] {
            continue;
        }
        let lits = all_positive_literals(rule);
        let doms = domains(ctx, cur, lits.clone());
        let det = determined_vars(ctx, &lits);
        let mut body_vars = BTreeSet::new();
        for lit in &rule.body {
            literal_vars(lit, &mut body_vars);
        }
        let body_lits: Vec<&Literal> = rule.body.iter().collect();
        match &rule.head {
            Head::Atom(a) => {
                let mut vars = body_vars.clone();
                a.collect_vars(&mut vars);
                let inst = if body_derivable(ctx, cur, &body_lits) {
                    free_product(&vars, &det, &doms, ctx.universe)
                } else {
                    0.0
                };
                contribute(ctx, &mut next, a, inst, &doms);
            }
            Head::Choice { elements, .. } => {
                for e in elements {
                    let mut vars = body_vars.clone();
                    e.atom.collect_vars(&mut vars);
                    let mut lits = body_lits.clone();
                    for lit in &e.condition {
                        literal_vars(lit, &mut vars);
                        lits.push(lit);
                    }
                    let inst = if body_derivable(ctx, cur, &lits) {
                        free_product(&vars, &det, &doms, ctx.universe)
                    } else {
                        0.0
                    };
                    contribute(ctx, &mut next, &e.atom, inst, &doms);
                }
            }
            Head::None => {}
        }
    }
    // Clamp: a position never holds more distinct values than the
    // universe, and a predicate never more tuples than the product of its
    // position bounds.
    for s in 0..ctx.sigs.len() {
        for a in &mut next.args[s] {
            *a = a.min(ctx.universe);
        }
        let prod = next.args[s].iter().fold(1.0f64, |acc, &a| sat(acc * a));
        if !next.args[s].is_empty() {
            next.atoms[s] = next.atoms[s].min(prod);
        }
        next.atoms[s] = sat(next.atoms[s]);
    }
    next
}

/// Add one rule head's contribution to the accumulating bounds.
fn contribute(
    ctx: &Ctx<'_>,
    next: &mut Bounds,
    head: &crate::ast::Atom,
    instances: f64,
    doms: &BTreeMap<String, f64>,
) {
    let Some(&s) = ctx.index.get(&(head.pred.clone(), head.args.len())) else {
        return;
    };
    let mut tuple_bound = 1.0f64;
    let mut arg_bounds = Vec::with_capacity(head.args.len());
    for t in &head.args {
        let b = term_bound(t, doms, ctx.universe);
        arg_bounds.push(b);
        tuple_bound = sat(tuple_bound * b);
    }
    let contrib = instances.min(tuple_bound);
    next.atoms[s] = sat(next.atoms[s] + contrib);
    for (i, b) in arg_bounds.into_iter().enumerate() {
        next.args[s][i] = sat(next.args[s][i] + b.min(contrib));
    }
}

/// Estimate the ground instances of one (non-fact) rule.
fn estimate_rule(ctx: &Ctx<'_>, cur: &Bounds, rule: &crate::ast::Rule) -> f64 {
    let lits = all_positive_literals(rule);
    let doms = domains(ctx, cur, lits.clone());
    let det = determined_vars(ctx, &lits);
    let body_lits: Vec<&Literal> = rule.body.iter().collect();
    if !body_derivable(ctx, cur, &body_lits) {
        return 0.0;
    }
    let mut vars = BTreeSet::new();
    for lit in &rule.body {
        literal_vars(lit, &mut vars);
    }
    match &rule.head {
        Head::Atom(a) => a.collect_vars(&mut vars),
        Head::None => {}
        Head::Choice { elements, .. } => {
            // The grounder instantiates each element per solution of
            // body × condition: sum the per-element estimates.
            let body_inst = free_product(&vars, &det, &doms, ctx.universe);
            let mut est = 0.0f64;
            for e in elements {
                let mut ev = vars.clone();
                e.atom.collect_vars(&mut ev);
                for lit in &e.condition {
                    literal_vars(lit, &mut ev);
                }
                est = sat(est + free_product(&ev, &det, &doms, ctx.universe));
            }
            return est.max(body_inst);
        }
    }
    free_product(&vars, &det, &doms, ctx.universe)
}

/// A positive literal over a zero-bound predicate can never hold, so any
/// body containing one grounds to nothing.
fn body_derivable(ctx: &Ctx<'_>, cur: &Bounds, lits: &[&Literal]) -> bool {
    lits.iter().all(|lit| match lit {
        Literal::Pos(a) => ctx
            .index
            .get(&(a.pred.clone(), a.args.len()))
            .is_none_or(|&s| cur.atoms[s] > 0.0),
        Literal::Neg(_) | Literal::Cmp(..) => true,
    })
}

/// Variables that do not multiply the instantiation count because each
/// assignment of the remaining (counted) variables fixes them: `V = expr`
/// bindings, plus variables sitting at a functional position of a joined
/// positive literal.
///
/// Determinations must be well-founded: each determined variable tracks
/// the *counted* variables it transitively rests on, and a variable is
/// never allowed to rest on itself — so of a mutually-determined pair
/// (`X = Y + 1` next to `Y = X - 1`) exactly one side stays counted.
fn determined_vars(ctx: &Ctx<'_>, literals: &[&Literal]) -> BTreeSet<String> {
    let mut det: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let expand = |det: &BTreeMap<String, BTreeSet<String>>, supp: &BTreeSet<String>| {
        let mut anc = BTreeSet::new();
        for s in supp {
            match det.get(s) {
                Some(a) => anc.extend(a.iter().cloned()),
                None => {
                    anc.insert(s.clone());
                }
            }
        }
        anc
    };
    // Keeps every stored ancestor set free of determined variables, so
    // the self-support check stays exact as determinations chain up.
    let admit =
        |det: &mut BTreeMap<String, BTreeSet<String>>, name: &String, anc: BTreeSet<String>| {
            if anc.contains(name) {
                return false;
            }
            for a in det.values_mut() {
                if a.remove(name) {
                    a.extend(anc.iter().cloned());
                }
            }
            det.insert(name.clone(), anc);
            true
        };
    loop {
        let mut changed = false;
        for lit in literals {
            match lit {
                Literal::Cmp(CmpOp::Eq, l, r) => {
                    for (v, other) in [(l, r), (r, l)] {
                        let Term::Var(name) = v else { continue };
                        if det.contains_key(name) {
                            continue;
                        }
                        let mut supp = BTreeSet::new();
                        other.collect_vars(&mut supp);
                        if supp.contains(name) {
                            continue;
                        }
                        let anc = expand(&det, &supp);
                        changed |= admit(&mut det, name, anc);
                    }
                }
                Literal::Pos(a) => {
                    let Some(&s) = ctx.index.get(&(a.pred.clone(), a.args.len())) else {
                        continue;
                    };
                    for (j, t) in a.args.iter().enumerate() {
                        if !ctx.functional[s][j] {
                            continue;
                        }
                        let Term::Var(name) = t else { continue };
                        if det.contains_key(name) {
                            continue;
                        }
                        let mut supp = BTreeSet::new();
                        for (i, ti) in a.args.iter().enumerate() {
                            if i != j {
                                ti.collect_vars(&mut supp);
                            }
                        }
                        let anc = expand(&det, &supp);
                        changed |= admit(&mut det, name, anc);
                    }
                }
                Literal::Neg(_) | Literal::Cmp(..) => {}
            }
        }
        if !changed {
            return det.into_keys().collect();
        }
    }
}

/// [`product_over`] restricted to the non-determined variables.
fn free_product(
    vars: &BTreeSet<String>,
    det: &BTreeSet<String>,
    doms: &BTreeMap<String, f64>,
    universe: f64,
) -> f64 {
    let free: BTreeSet<String> = vars.difference(det).cloned().collect();
    product_over(&free, doms, universe)
}

/// Domain bound per variable from the positive literals: the minimum
/// bound over the positions a variable occurs in, refined by `V = expr`
/// bindings.
fn domains<'l>(
    ctx: &Ctx<'_>,
    cur: &Bounds,
    literals: impl IntoIterator<Item = &'l Literal> + Clone,
) -> BTreeMap<String, f64> {
    let mut doms: BTreeMap<String, f64> = BTreeMap::new();
    for lit in literals.clone() {
        if let Literal::Pos(a) = lit {
            let Some(&s) = ctx.index.get(&(a.pred.clone(), a.args.len())) else {
                continue;
            };
            for (i, t) in a.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    let b = cur.args[s][i];
                    let e = doms.entry(v.clone()).or_insert(f64::INFINITY);
                    *e = e.min(b);
                }
            }
        }
    }
    // `V = expr` bindings: the bound of `V` is at most the number of
    // distinct values of `expr`. A couple of passes settle chains.
    for _ in 0..2 {
        for lit in literals.clone() {
            let Literal::Cmp(CmpOp::Eq, l, r) = lit else {
                continue;
            };
            for (v, other) in [(l, r), (r, l)] {
                if let Term::Var(name) = v {
                    let b = term_bound(other, &doms, ctx.universe);
                    let e = doms.entry(name.clone()).or_insert(f64::INFINITY);
                    *e = e.min(b);
                }
            }
        }
    }
    doms
}

/// Distinct-value bound for a term under the variable domains: ground
/// terms are single values, a composite term has at most the product of
/// its variables' domains.
fn term_bound(t: &Term, doms: &BTreeMap<String, f64>, universe: f64) -> f64 {
    if t.is_ground() {
        return 1.0;
    }
    let mut vars = BTreeSet::new();
    t.collect_vars(&mut vars);
    product_over(&vars, doms, universe)
}

fn product_over(vars: &BTreeSet<String>, doms: &BTreeMap<String, f64>, universe: f64) -> f64 {
    let mut p = 1.0f64;
    for v in vars {
        let d = doms.get(v).copied().unwrap_or(f64::INFINITY);
        let d = if d.is_finite() { d } else { universe };
        p = sat(p * d);
    }
    p
}

fn literal_vars(lit: &Literal, out: &mut BTreeSet<String>) {
    match lit {
        Literal::Pos(a) | Literal::Neg(a) => a.collect_vars(out),
        Literal::Cmp(_, l, r) => {
            l.collect_vars(out);
            r.collect_vars(out);
        }
    }
}

/// Positive body literals plus every choice-element condition literal —
/// all the places a variable can be bound.
fn all_positive_literals(rule: &crate::ast::Rule) -> Vec<&Literal> {
    let mut lits: Vec<&Literal> = rule.body.iter().collect();
    if let Head::Choice { elements, .. } = &rule.head {
        for e in elements {
            lits.extend(e.condition.iter());
        }
    }
    lits
}

fn collect_ground_subterms(stmt: &Statement, out: &mut BTreeSet<String>) {
    fn term(t: &Term, out: &mut BTreeSet<String>) {
        if t.is_ground() {
            out.insert(format!("{t:?}"));
        }
        match t {
            Term::Func(_, args) => {
                for a in args {
                    term(a, out);
                }
            }
            Term::BinOp(_, l, r) => {
                term(l, out);
                term(r, out);
            }
            _ => {}
        }
    }
    fn atom(a: &crate::ast::Atom, out: &mut BTreeSet<String>) {
        for t in &a.args {
            term(t, out);
        }
    }
    fn lit(l: &Literal, out: &mut BTreeSet<String>) {
        match l {
            Literal::Pos(a) | Literal::Neg(a) => atom(a, out),
            Literal::Cmp(_, x, y) => {
                term(x, out);
                term(y, out);
            }
        }
    }
    match stmt {
        Statement::Rule(rule) => {
            match &rule.head {
                Head::Atom(a) => atom(a, out),
                Head::Choice { elements, .. } => {
                    for e in elements {
                        atom(&e.atom, out);
                        for l in &e.condition {
                            lit(l, out);
                        }
                    }
                }
                Head::None => {}
            }
            for l in &rule.body {
                lit(l, out);
            }
        }
        Statement::Minimize { elements, .. } => {
            for e in elements {
                term(&e.weight, out);
                for t in &e.terms {
                    term(t, out);
                }
                for l in &e.condition {
                    lit(l, out);
                }
            }
        }
        Statement::Show { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    fn predict(src: &str) -> SizePrediction {
        predict_sizes(&parse(src).unwrap())
    }

    #[test]
    fn fact_predicates_are_counted_exactly() {
        let p = predict("p(a). p(b). p(a). q(a, 1). q(a, 2).");
        let pb = p.bound("p", 1).unwrap();
        assert_eq!(pb.atoms, 2.0, "duplicate fact is one atom");
        assert_eq!(pb.args, vec![2.0]);
        let qb = p.bound("q", 2).unwrap();
        assert_eq!(qb.atoms, 2.0);
        assert_eq!(qb.args, vec![1.0, 2.0]);
    }

    #[test]
    fn shared_variables_join_instead_of_multiplying() {
        let p = predict("p(a). p(b). p(c). q(1). q(2). j(X, Y) :- p(X), q(Y). s(X) :- p(X), p(X).");
        let join = p.bound("j", 2).unwrap();
        assert_eq!(join.atoms, 6.0, "cross product of p and q");
        let shared = p.bound("s", 1).unwrap();
        assert_eq!(shared.atoms, 3.0, "X counted once across both literals");
    }

    #[test]
    fn eq_bindings_tighten_the_domain() {
        let p = predict("n(1). n(2). n(3). next(X, Y) :- n(X), Y = X + 1.");
        let nb = p.bound("next", 2).unwrap();
        assert_eq!(nb.atoms, 3.0, "Y is a function of X");
    }

    #[test]
    fn underivable_predicates_bound_to_zero() {
        let p = predict("a(X) :- b(X). b(X) :- a(X). c(1). d(X) :- c(X).");
        assert_eq!(p.bound("a", 1).unwrap().atoms, 0.0);
        assert_eq!(p.bound("b", 1).unwrap().atoms, 0.0);
        assert_eq!(p.bound("d", 1).unwrap().atoms, 1.0);
    }

    #[test]
    fn recursion_saturates_at_the_universe_instead_of_diverging() {
        let p = predict("e(a, b). e(b, c). e(X, Z) :- e(X, Y), e(Y, Z).");
        let eb = p.bound("e", 2).unwrap();
        // Universe = {a, b, c}: at most 9 edges, never SIZE_CAP.
        assert!(eb.atoms <= 9.0 + 2.0, "bounded by universe^2: {}", eb.atoms);
        assert!(p.total < EXPLOSION_THRESHOLD);
    }

    #[test]
    fn cross_join_over_large_domains_predicts_explosion() {
        let p = predict("num(1..120). big(X, Y, Z) :- num(X), num(Y), num(Z).");
        let big = p.rules.iter().map(|r| r.instances).fold(0.0, f64::max);
        assert!(big >= 120.0 * 120.0 * 120.0, "{big}");
        assert!(big > EXPLOSION_THRESHOLD);
    }

    #[test]
    fn prediction_tracks_actual_grounding_on_a_temporal_chain() {
        let src = "time(0..9). holds(0). holds(T) :- holds(S), time(S), time(T), T = S + 1. \
                   :- holds(T), time(T), T > 5.";
        let p = predict(src);
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let actual = g.rules.len() as f64;
        assert!(
            p.total >= actual / 10.0 && p.total <= actual * 10.0,
            "predicted {} vs actual {actual}",
            p.total
        );
    }

    #[test]
    fn keyed_facts_determine_joined_variables() {
        // owner/2 is a bijection, so both positions are keys: joining
        // owner(X, Y), owner(Z, Y) fixes Y from X and Z from Y.
        let p = predict(
            "owner(a, 1). owner(b, 2). owner(c, 3). p(X, Y, Z) :- owner(X, Y), owner(Z, Y).",
        );
        assert_eq!(p.bound("p", 3).unwrap().atoms, 3.0);
    }

    #[test]
    fn functional_recursion_converges_instead_of_saturating() {
        // The temporal-tank shape: the level is a function of (tank,
        // step), which the fixpoint must discover to keep reading/3 from
        // saturating toward universe^3.
        let src = "time(0..20). tank(a). tank(b). inflow(a, 1). inflow(b, 2). \
                   reading(a, 0, 0). reading(b, 0, 0). \
                   reading(C, L2, U) :- reading(C, L, T), inflow(C, R), L2 = L + R, U = T + 1, time(U). \
                   ahead(C, D, T) :- reading(C, L, T), reading(D, K, T), L > K.";
        let p = predict(src);
        let rb = p.bound("reading", 3).unwrap();
        assert!(
            rb.atoms <= 100.0,
            "reading stays near 2 tanks x 21 steps: {}",
            rb.atoms
        );
        let g = Grounder::new().ground(&parse(src).unwrap()).unwrap();
        let actual = g.rules.len() as f64;
        assert!(
            p.total >= actual / 10.0 && p.total <= actual * 10.0,
            "predicted {} vs actual {actual}",
            p.total
        );
    }

    #[test]
    fn choice_rules_estimate_per_element_expansion() {
        let p = predict("c(1). c(2). c(3). { pick(X) : c(X) }.");
        let pb = p.bound("pick", 1).unwrap();
        assert_eq!(pb.atoms, 3.0);
    }
}
