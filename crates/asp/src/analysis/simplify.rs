//! Ground-program simplification against the well-founded backbone.
//!
//! [`simplify`] fixes the [well-founded model](crate::analysis::wfm) of a
//! [`GroundProgram`] and rewrites the program around it, preserving the
//! stable-model set exactly (pinned by the differential proptests in
//! `tests/consequences_differential.rs`):
//!
//! * WFM-true atoms become facts; every other rule deriving them is
//!   satisfied and dropped.
//! * Rules whose body is certainly false (a WFM-false positive literal or
//!   a WFM-true negative literal) are deleted — this removes every rule
//!   deriving a WFM-false atom, so those atoms vanish from the program.
//! * Certainly-true body literals are deleted from the surviving rules; a
//!   constraint whose body empties out becomes the empty constraint (the
//!   program is inconsistent and the solver reports no models).
//! * Cardinality constraints lose never-holdable elements, certainly-held
//!   elements shift both bounds down, and bounds that become unmeetable
//!   turn into plain integrity constraints; vacuous cards are dropped.
//!
//! Deleting backbone literals removes positive dependency edges, so a
//! program that grounds non-tight can simplify to a tight one — the
//! re-derived certificate ([`SimplifyResult::tight_after`]) then enables
//! the solver's tight fast path where the original program could not.

use crate::program::{
    AtomId, CardConstraint, CardElement, GroundHead, GroundProgram, GroundRule, MinimizeLit,
};

use super::deps::ground_tight;
use super::wfm::{well_founded, WfmResult};

/// The outcome of [`simplify`]: the rewritten program plus the statistics
/// the bench / analyze reports surface.
#[derive(Debug, Clone)]
pub struct SimplifyResult {
    /// The simplified program (same stable models as the input).
    pub program: GroundProgram,
    /// Old-id → new-id mapping; `None` for atoms the simplification
    /// removed (the WFM-false ones).
    pub map: Vec<Option<AtomId>>,
    /// Rules in the input program.
    pub rules_before: usize,
    /// Rules in the simplified program (integrity constraints converted
    /// from cards included).
    pub rules_after: usize,
    /// Atoms fixed true by the backbone.
    pub fixed_true: usize,
    /// Atoms fixed false by the backbone.
    pub fixed_false: usize,
    /// Tightness certificate of the input program.
    pub tight_before: bool,
    /// Tightness certificate re-derived on the simplified program.
    pub tight_after: bool,
}

/// Simplify `program` against its (freshly computed) well-founded model.
#[must_use]
pub fn simplify(program: &GroundProgram) -> SimplifyResult {
    simplify_with(program, &well_founded(program))
}

/// Simplify `program` against an already-computed **unconditional** WFM of
/// the same program (conditional results would bake assumptions into the
/// rewrite and change the model set).
#[must_use]
pub fn simplify_with(program: &GroundProgram, wfm: &WfmResult) -> SimplifyResult {
    let mut out = GroundProgram::new();
    // Keep every atom the WFM does not refute, in id order, so the
    // simplified program's display output stays deterministic.
    let mut map: Vec<Option<AtomId>> = vec![None; program.atom_count()];
    for (id, atom) in program.atoms() {
        if !wfm.is_false(id) {
            map[id.index()] = Some(out.intern(atom.clone()));
        }
    }
    let remap = |ids: &[AtomId], drop_true: bool, map: &[Option<AtomId>]| -> Vec<AtomId> {
        ids.iter()
            .filter(|id| !(drop_true && wfm.is_true(**id)))
            .map(|id| map[id.index()].expect("kept atoms are mapped"))
            .collect()
    };
    // A body literal set is certainly dead when a positive atom is
    // WFM-false or a negative atom is WFM-true.
    let body_dead = |pos: &[AtomId], neg: &[AtomId]| {
        pos.iter().any(|p| wfm.is_false(*p)) || neg.iter().any(|n| wfm.is_true(*n))
    };

    // The backbone, as facts.
    for id in wfm.true_atoms() {
        out.rules.push(GroundRule {
            head: GroundHead::Atom(map[id.index()].expect("true atoms are kept")),
            pos: Vec::new(),
            neg: Vec::new(),
        });
    }

    for r in &program.rules {
        if body_dead(&r.pos, &r.neg) {
            continue;
        }
        let head = match r.head {
            // Satisfied by the backbone fact; WFM-false heads only occur
            // in rules with dead bodies, filtered above.
            GroundHead::Atom(h) | GroundHead::Choice(h) if wfm.is_true(h) => continue,
            GroundHead::Atom(h) => GroundHead::Atom(map[h.index()].expect("head atom kept")),
            GroundHead::Choice(h) => GroundHead::Choice(map[h.index()].expect("head atom kept")),
            GroundHead::None => GroundHead::None,
        };
        out.rules.push(GroundRule {
            head,
            // Certainly-true positives and certainly-false negatives are
            // satisfied in every stable model: delete the literals. (A
            // negative literal over a WFM-false atom refers to an atom the
            // output no longer interns, so the deletion also keeps the
            // remap total.)
            pos: remap(&r.pos, true, &map),
            neg: r
                .neg
                .iter()
                .filter(|n| !wfm.is_false(**n))
                .map(|n| map[n.index()].expect("kept atoms are mapped"))
                .collect(),
        });
    }

    for c in &program.cards {
        if body_dead(&c.pos, &c.neg) {
            continue;
        }
        let pos = remap(&c.pos, true, &map);
        let neg: Vec<AtomId> = c
            .neg
            .iter()
            .filter(|n| !wfm.is_false(**n))
            .map(|n| map[n.index()].expect("kept atoms are mapped"))
            .collect();
        let mut held_certain = 0u32;
        let mut elements = Vec::new();
        for e in &c.elements {
            if wfm.is_false(e.atom) || body_dead(&e.guard_pos, &e.guard_neg) {
                continue; // never held: contributes nothing to any model
            }
            let guard_certain = e.guard_pos.iter().all(|p| wfm.is_true(*p))
                && e.guard_neg.iter().all(|n| wfm.is_false(*n));
            if wfm.is_true(e.atom) && guard_certain {
                held_certain += 1; // held in every model: fold into bounds
                continue;
            }
            elements.push(CardElement {
                atom: map[e.atom.index()].expect("kept atoms are mapped"),
                guard_pos: remap(&e.guard_pos, true, &map),
                guard_neg: e
                    .guard_neg
                    .iter()
                    .filter(|n| !wfm.is_false(**n))
                    .map(|n| map[n.index()].expect("kept atoms are mapped"))
                    .collect(),
            });
        }
        let lower = c.lower.saturating_sub(held_certain);
        if held_certain > c.upper || (elements.len() as u32) < lower {
            // The bounds can no longer be met whenever the body holds:
            // the card degenerates to a plain integrity constraint.
            out.rules.push(GroundRule {
                head: GroundHead::None,
                pos,
                neg,
            });
            continue;
        }
        let upper = c.upper - held_certain;
        if lower == 0 && upper as usize >= elements.len() {
            continue; // vacuous: any held count is within bounds
        }
        out.cards.push(CardConstraint {
            pos,
            neg,
            elements,
            lower,
            upper,
        });
    }

    for (prio, lits) in &program.minimize {
        let kept: Vec<MinimizeLit> = lits
            .iter()
            .filter(|l| !body_dead(&l.pos, &l.neg))
            .map(|l| MinimizeLit {
                weight: l.weight,
                tuple: l.tuple.clone(),
                pos: remap(&l.pos, true, &map),
                neg: l
                    .neg
                    .iter()
                    .filter(|n| !wfm.is_false(**n))
                    .map(|n| map[n.index()].expect("kept atoms are mapped"))
                    .collect(),
            })
            .collect();
        // Kept even when empty so cost vectors keep their shape.
        out.minimize.push((*prio, kept));
    }

    out.shows = program.shows.clone();
    out.assumable = program
        .assumable
        .iter()
        .filter_map(|id| map[id.index()])
        .collect();

    let tight_after = ground_tight(&out);
    SimplifyResult {
        rules_before: program.rules.len(),
        rules_after: out.rules.len(),
        fixed_true: wfm.true_count,
        fixed_false: wfm.false_count,
        tight_before: ground_tight(program),
        tight_after,
        map,
        program: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;
    use crate::solve::{SolveOptions, Solver};

    fn ground(src: &str) -> GroundProgram {
        Grounder::new().ground(&parse(src).unwrap()).unwrap()
    }

    fn models(g: &GroundProgram) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = Solver::new(g)
            .enumerate(&SolveOptions::default())
            .expect("solves")
            .models
            .iter()
            .map(|m| m.atoms.iter().map(ToString::to_string).collect())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn backbone_becomes_facts_and_satisfied_rules_drop() {
        let g = ground("p. q :- p. q :- not m. m :- not q. { x }. r :- x, q.");
        let s = simplify(&g);
        assert!(s.rules_after < s.rules_before, "q's rules are satisfied");
        assert_eq!(s.fixed_true, 2, "p and q");
        assert_eq!(s.fixed_false, 1, "m");
        assert_eq!(models(&s.program), models(&g));
        // The backbone facts survive as facts.
        assert!(s.program.rules.iter().any(|r| r.pos.is_empty()
            && r.neg.is_empty()
            && matches!(r.head, GroundHead::Atom(_))));
    }

    #[test]
    fn false_atoms_vanish_and_tightness_is_rederived() {
        // The a/b loop's only support (`b :- not f`) is refuted by the
        // fact `f`; deleting the dead loop leaves a tight program.
        let g = ground("f. a :- b. b :- a. b :- not f. { x }. p :- x, not a.");
        assert!(!ground_tight(&g));
        let s = simplify(&g);
        assert_eq!(s.fixed_false, 2, "a and b");
        assert!(s.tight_after, "the unfounded loop is gone");
        assert!(!s.tight_before);
        assert!(s.program.atom_count() < g.atom_count());
        assert_eq!(models(&s.program), models(&g));
    }

    #[test]
    fn inconsistent_programs_keep_the_empty_constraint() {
        let g = ground("p. :- p.");
        let s = simplify(&g);
        assert!(s
            .program
            .rules
            .iter()
            .any(|r| matches!(r.head, GroundHead::None) && r.pos.is_empty() && r.neg.is_empty()));
        assert_eq!(models(&s.program), models(&g));
        assert!(models(&s.program).is_empty());
    }

    #[test]
    fn cards_fold_certain_elements_into_bounds() {
        // `a` is a fact with a certain guard: it always counts, so the
        // 1..1 bound over {a, pick} forbids pick.
        let g = ground("a. item(x). 1 { a; pick(I) : item(I) } 1.");
        let s = simplify(&g);
        assert_eq!(models(&s.program), models(&g));
        for c in &s.program.cards {
            assert_eq!((c.lower, c.upper), (0, 0), "bounds shifted by the fact");
        }
    }

    #[test]
    fn choice_programs_round_trip() {
        let g = ground("{ a; b } 1. c :- a. c :- b. d :- not c.");
        let s = simplify(&g);
        assert_eq!(models(&s.program), models(&g));
        assert_eq!(s.fixed_true, 0);
    }

    #[test]
    fn assumables_and_shows_survive() {
        let g = Grounder::new()
            .assumable("f", 0)
            .ground(&parse("f. alarm :- f. #show alarm/0.").unwrap())
            .unwrap();
        let s = simplify(&g);
        assert_eq!(s.program.assumable.len(), g.assumable.len());
        assert_eq!(s.program.shows, g.shows);
    }
}
