//! Sound backward slicing: drop the statements that cannot influence any
//! observable of the program.
//!
//! Observables are the `#show`n predicates, every constraint, every
//! `#minimize` statement, and any extra root predicates the caller names
//! (the grounder passes its assumable signatures). Relevance flows
//! backward from those roots through rule bodies.
//!
//! Dropping a statement is sound only when it cannot change the *model
//! count*, the shown projection of any model, or any optimization cost.
//! Three statement classes therefore never drop:
//!
//! * choice rules — each one is a source of nondeterminism, and once a
//!   predicate has one kept defining statement all of its defining
//!   statements must stay;
//! * rules whose predicate sits in an SCC with an internal *negative*
//!   edge — even loops (`a :- not b. b :- not a.`) multiply the model
//!   count and odd loops (`c :- not c.`) can kill every model;
//! * constraints and `#minimize` — they prune and price models.
//!
//! What remains droppable: rules (and facts) for irrelevant predicates
//! whose SCCs use only positive internal edges. Those predicates have a
//! unique stable extension in every model (the least fixpoint), so
//! removing them deletes atoms from the models without changing how many
//! models there are or what they show.

use std::collections::{BTreeSet, HashMap};

use crate::analysis::deps::{dependency_edges, tarjan_scc};
use crate::ast::{Head, Literal, Program, Statement};

/// The result of slicing: a partition of the statement indices plus the
/// relevant-predicate set that justifies it.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Statement indices (into `Program::statements`) that must stay.
    pub kept: Vec<usize>,
    /// Statement indices that are sound to drop.
    pub dropped: Vec<usize>,
    /// Names of the predicates that can influence an observable.
    pub relevant: BTreeSet<String>,
}

impl Slice {
    /// The sliced program: kept statements, in their original order.
    #[must_use]
    pub fn apply(&self, program: &Program) -> Program {
        let keep: BTreeSet<usize> = self.kept.iter().copied().collect();
        Program {
            statements: program
                .statements
                .iter()
                .enumerate()
                .filter(|(i, _)| keep.contains(i))
                .map(|(_, s)| s.clone())
                .collect(),
        }
    }
}

fn literal_pred(lit: &Literal) -> Option<&str> {
    match lit {
        Literal::Pos(a) | Literal::Neg(a) => Some(&a.pred),
        Literal::Cmp(..) => None,
    }
}

/// Compute the backward slice of `program` with respect to its shows,
/// constraints, `#minimize` statements, and `extra_roots` (predicate
/// names — the grounder passes its assumable signatures here).
///
/// A program with no `#show` directive observes every atom, so nothing
/// can be dropped and the slice keeps all statements.
#[must_use]
pub fn slice_program(program: &Program, extra_roots: &[String]) -> Slice {
    let n = program.statements.len();
    let has_show = program
        .statements
        .iter()
        .any(|s| matches!(s, Statement::Show { .. }));
    if !has_show {
        // No projection: every atom is observable.
        let mut relevant = BTreeSet::new();
        for stmt in &program.statements {
            collect_stmt_preds(stmt, &mut relevant);
        }
        return Slice {
            kept: (0..n).collect(),
            dropped: Vec::new(),
            relevant,
        };
    }

    // Roots of relevance.
    let mut relevant: BTreeSet<String> = extra_roots.iter().cloned().collect();
    for stmt in &program.statements {
        match stmt {
            Statement::Show { pred, .. } => {
                relevant.insert(pred.clone());
            }
            Statement::Minimize { elements, .. } => {
                for e in elements {
                    for lit in &e.condition {
                        if let Some(p) = literal_pred(lit) {
                            relevant.insert(p.to_owned());
                        }
                    }
                }
            }
            Statement::Rule(rule) => match &rule.head {
                // Constraints prune models: their bodies are observable.
                Head::None => {
                    for lit in &rule.body {
                        if let Some(p) = literal_pred(lit) {
                            relevant.insert(p.to_owned());
                        }
                    }
                }
                // Choice rules are kept unconditionally (nondeterminism),
                // which forces everything they mention to stay relevant —
                // including the element predicates themselves, so that
                // *other* rules defining the same predicates stay too.
                Head::Choice { elements, .. } => {
                    for e in elements {
                        relevant.insert(e.atom.pred.clone());
                        for lit in &e.condition {
                            if let Some(p) = literal_pred(lit) {
                                relevant.insert(p.to_owned());
                            }
                        }
                    }
                    for lit in &rule.body {
                        if let Some(p) = literal_pred(lit) {
                            relevant.insert(p.to_owned());
                        }
                    }
                }
                Head::Atom(_) => {}
            },
        }
    }

    // Predicates inside an SCC with an internal negative edge can flip the
    // model count on their own: force them relevant.
    let edges = dependency_edges(program);
    let mut pred_ix: HashMap<&str, usize> = HashMap::new();
    let mut preds: Vec<&str> = Vec::new();
    for (h, b, _) in &edges {
        for p in [h.as_str(), b.as_str()] {
            if !pred_ix.contains_key(p) {
                pred_ix.insert(p, preds.len());
                preds.push(p);
            }
        }
    }
    let mut adj = vec![Vec::new(); preds.len()];
    for (h, b, _) in &edges {
        adj[pred_ix[h.as_str()]].push(pred_ix[b.as_str()]);
    }
    let comp = tarjan_scc(&adj);
    for (h, b, neg) in &edges {
        if *neg && comp[pred_ix[h.as_str()]] == comp[pred_ix[b.as_str()]] {
            relevant.insert(h.clone());
            relevant.insert(b.clone());
        }
    }

    // Backward closure: a relevant head makes its whole body relevant.
    loop {
        let before = relevant.len();
        for stmt in &program.statements {
            let Statement::Rule(rule) = stmt else {
                continue;
            };
            let Head::Atom(a) = &rule.head else {
                continue;
            };
            if !relevant.contains(&a.pred) {
                continue;
            }
            for lit in &rule.body {
                if let Some(p) = literal_pred(lit) {
                    relevant.insert(p.to_owned());
                }
            }
        }
        if relevant.len() == before {
            break;
        }
    }

    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    for (i, stmt) in program.statements.iter().enumerate() {
        let keep = match stmt {
            Statement::Show { .. } | Statement::Minimize { .. } => true,
            Statement::Rule(rule) => match &rule.head {
                Head::None | Head::Choice { .. } => true,
                Head::Atom(a) => relevant.contains(&a.pred),
            },
        };
        if keep {
            kept.push(i);
        } else {
            dropped.push(i);
        }
    }
    Slice {
        kept,
        dropped,
        relevant,
    }
}

fn collect_stmt_preds(stmt: &Statement, out: &mut BTreeSet<String>) {
    match stmt {
        Statement::Rule(rule) => {
            match &rule.head {
                Head::Atom(a) => {
                    out.insert(a.pred.clone());
                }
                Head::Choice { elements, .. } => {
                    for e in elements {
                        out.insert(e.atom.pred.clone());
                        for lit in &e.condition {
                            if let Some(p) = literal_pred(lit) {
                                out.insert(p.to_owned());
                            }
                        }
                    }
                }
                Head::None => {}
            }
            for lit in &rule.body {
                if let Some(p) = literal_pred(lit) {
                    out.insert(p.to_owned());
                }
            }
        }
        Statement::Minimize { elements, .. } => {
            for e in elements {
                for lit in &e.condition {
                    if let Some(p) = literal_pred(lit) {
                        out.insert(p.to_owned());
                    }
                }
            }
        }
        Statement::Show { pred, .. } => {
            out.insert(pred.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn slice(src: &str) -> (Program, Slice) {
        let p = parse(src).unwrap();
        let s = slice_program(&p, &[]);
        (p, s)
    }

    #[test]
    fn no_show_keeps_everything() {
        let (_, s) = slice("p(a). q(b). r(X) :- p(X).");
        assert!(s.dropped.is_empty());
        assert_eq!(s.kept.len(), 3);
    }

    #[test]
    fn irrelevant_facts_and_rules_are_dropped() {
        let (p, s) = slice("p(a). q(b). shadow(X) :- q(X). r(X) :- p(X). #show r/1.");
        assert!(s.relevant.contains("p"));
        assert!(s.relevant.contains("r"));
        assert!(!s.relevant.contains("shadow"));
        // q(b) and shadow/1 go; p(a), the r rule, and the show stay.
        assert_eq!(s.dropped.len(), 2);
        let sliced = s.apply(&p);
        assert_eq!(sliced.statements.len(), 3);
    }

    #[test]
    fn constraints_root_relevance() {
        let (_, s) = slice("p(a). q(X) :- p(X). :- q(a). dead(b). #show p/1.");
        assert!(s.relevant.contains("q"), "constraint body is observable");
        assert!(s.relevant.contains("p"));
        assert!(!s.relevant.contains("dead"));
        assert_eq!(s.dropped.len(), 1);
    }

    #[test]
    fn choice_rules_never_drop() {
        // Dropping `{ c }.` would halve the model count even though c is
        // never shown.
        let (p, s) = slice("{ c }. shown(a). #show shown/1.");
        assert!(s.dropped.is_empty());
        assert!(s.relevant.contains("c"));
        let sliced = s.apply(&p);
        assert_eq!(sliced.statements.len(), p.statements.len());
    }

    #[test]
    fn choice_keeps_sibling_definitions() {
        // trigger forces c when shown holds; dropping it would add models.
        let (_, s) = slice("{ c }. shown(a). c :- shown(a). #show shown/1.");
        assert!(s.dropped.is_empty());
    }

    #[test]
    fn negative_loops_never_drop() {
        let (_, s) = slice("a :- not b. b :- not a. x. #show x/1.");
        assert!(s.dropped.is_empty(), "even loop multiplies model count");
        let (_, s) = slice("c :- not c. x. #show x/1.");
        assert!(s.dropped.is_empty(), "odd loop kills every model");
    }

    #[test]
    fn positive_loops_among_irrelevant_preds_do_drop() {
        let (_, s) = slice("u(X) :- w(X). w(X) :- u(X). x. #show x/1.");
        assert_eq!(s.dropped.len(), 2, "unique all-false extension");
    }

    #[test]
    fn extra_roots_pin_assumable_predicates() {
        let p = parse("scenario(a). helper(X) :- scenario(X). x. #show x/1.").unwrap();
        let without = slice_program(&p, &[]);
        assert_eq!(without.dropped.len(), 2);
        let with = slice_program(&p, &["helper".to_owned()]);
        assert!(with.relevant.contains("scenario"));
        assert!(with.dropped.is_empty());
    }

    #[test]
    fn minimize_roots_relevance() {
        let (_, s) =
            slice("p(a). cost(X, 3) :- p(X). junk(b). #minimize { W : cost(X, W) }. #show p/1.");
        assert!(s.relevant.contains("cost"));
        assert!(!s.relevant.contains("junk"));
        assert_eq!(s.dropped.len(), 1);
    }
}
