//! Proof logging for certified solving.
//!
//! When [`SolveOptions::certify`](crate::solve::SolveOptions) is set, the
//! CDCL engine appends every inference it makes to a [`ProofLog`]: the
//! completion axioms of the translation, the well-founded facts seeded at
//! level 0, every materialized cardinality and unfounded-set antecedent,
//! every learned nogood (RUP-checkable against the live set, in exactly
//! the order the 1UIP reason graph produced them), deletions mirrored
//! from learned-database reduction, per-call assumption markers, and a
//! terminal model line (SAT) or unsatisfiability marker (UNSAT) per solve
//! call. The log is a *derivation trace*, not a trusted artifact: the
//! independent checker in [`check`](crate::check) replays it against the
//! ground program and accepts only proofs whose every step is justified.
//!
//! # Literal encoding
//!
//! A proof literal is the solver's packed code `var << 1 | sign`, where
//! `sign` is `0` for *true* and `1` for *false*. Variables `0..n_atoms`
//! are the stable [`AtomId`](crate::program::AtomId)s of the ground
//! program; variables `n_atoms..` are body variables, declared in the
//! header by their stable identity — the sorted deduplicated
//! `(pos, neg)` atom-id lists of the rule body they stand for. A
//! *nogood* is a set of literals no solution may satisfy simultaneously.
//!
//! # Text format
//!
//! One step per line, literals as signed nonzero integers (`v+1` for
//! `(v, true)`, `-(v+1)` for `(v, false)`):
//!
//! ```text
//! cpsrisk-proof/1
//! atoms <n>
//! program <bytes>        (optional; verbatim source follows)
//! body <pos..> | <neg..>
//! ax <lits..>            completion axiom
//! wfm <lit>              well-founded fact (unit nogood)
//! card <i> <lits..>      cardinality inference over constraint i
//! unf <lits..>           unfounded-set inference (target last)
//! stab <lits..>          stability refutation of a propagation prefix
//! call <k> <lits..>      solve call k with its assumption literals
//! learn <lits..>         learned nogood (RUP w.r.t. the live set)
//! del <lits..>           learned-database deletion
//! model <p:c..> | <ids>  answer set: costs, then true atom ids
//! unsat                  the current call is unsatisfiable
//! end
//! ```
//!
//! Serialization is size-capped: [`ProofLog::to_text`] refuses to render
//! past the byte cap, and the in-memory log stops appending (and marks
//! itself truncated) past [`MAX_PROOF_STEPS`] — the checker rejects
//! truncated proofs outright.

use crate::error::AspError;

/// Hard cap on in-memory proof steps; past it the log marks itself
/// truncated and drops further steps (the checker rejects such proofs).
pub const MAX_PROOF_STEPS: usize = 4_000_000;

/// Default byte cap for [`ProofLog::to_text`].
pub const DEFAULT_TEXT_CAP: usize = 256 * 1024 * 1024;

/// Pack a (variable, sign) literal into its proof code.
#[must_use]
pub fn lit_code(var: u32, positive: bool) -> u32 {
    (var << 1) | u32::from(!positive)
}

/// The variable of a packed proof literal.
#[must_use]
pub fn lit_var(code: u32) -> u32 {
    code >> 1
}

/// The sign of a packed proof literal (`true` = the variable is true).
#[must_use]
pub fn lit_positive(code: u32) -> bool {
    code & 1 == 0
}

/// One logged inference step. See the module docs for the semantics of
/// each kind; `Vec<u32>` payloads are packed literal codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// A completion axiom of the translation (possibly a unit, possibly
    /// the empty nogood when the program is root-unsatisfiable).
    Axiom(Vec<u32>),
    /// A well-founded fact: a unit nogood forcing the literal's
    /// complement, sound in every stable model.
    Wfm(u32),
    /// A cardinality inference: a nogood semantically entailed by the
    /// indexed cardinality constraint of the ground program.
    Card {
        /// Index into `GroundProgram::cards`.
        card: u32,
        /// The entailed nogood (witness literals plus the forced/conflict
        /// literal).
        lits: Vec<u32>,
    },
    /// An unfounded-set inference: the assumption/decision prefix followed
    /// by the target `(atom, true)` literal — no stable model consistent
    /// with the prefix makes the target atom true.
    Unfounded(Vec<u32>),
    /// A stability refutation: the assumption/decision prefix of a total
    /// propagation fixpoint that failed the independent stability check.
    Stability(Vec<u32>),
    /// Start of a solve call, tagging the assumptions every terminal step
    /// of the call is conditional on.
    Call {
        /// Call sequence number (0-based over the solver's certified life).
        seq: u32,
        /// The call's assumption literals.
        assumptions: Vec<u32>,
    },
    /// A learned nogood, RUP-derivable from the live set at this point.
    Learned(Vec<u32>),
    /// A learned nogood removed by database reduction.
    Delete(Vec<u32>),
    /// An answer set reported by the current call.
    Model {
        /// `(priority, cost)` per `#minimize` statement, as reported.
        cost: Vec<(i64, i64)>,
        /// The true atoms of the model, by stable atom id, ascending.
        atoms: Vec<u32>,
    },
    /// The current call is unsatisfiable: its assumptions plus the live
    /// set propagate to a conflict.
    Unsat,
}

/// A compact solver-emitted derivation log, replayable by
/// [`check::check_proof`](crate::check::check_proof).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProofLog {
    /// Number of atom variables (codes below `2 * n_atoms` are atoms).
    pub n_atoms: u32,
    /// Body variable declarations: variable `n_atoms + i` stands for the
    /// rule body with sorted deduplicated positive/negative atom lists
    /// `bodies[i]`.
    pub bodies: Vec<(Vec<u32>, Vec<u32>)>,
    /// The derivation steps, in emission order.
    pub steps: Vec<ProofStep>,
    /// The step cap was hit and later steps were dropped; the proof is
    /// incomplete and the checker rejects it.
    pub truncated: bool,
}

impl ProofLog {
    /// Append a step, honoring the step cap.
    pub fn push(&mut self, step: ProofStep) {
        if self.steps.len() >= MAX_PROOF_STEPS {
            self.truncated = true;
            return;
        }
        self.steps.push(step);
    }

    /// Number of steps recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Render the log (optionally embedding the program source so the
    /// proof file is self-contained) as the line-oriented text format.
    ///
    /// # Errors
    ///
    /// [`AspError::ProofTooLarge`] when the rendering exceeds `cap` bytes.
    pub fn to_text(&self, program_src: Option<&str>, cap: usize) -> Result<String, AspError> {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("cpsrisk-proof/1\n");
        let _ = writeln!(out, "atoms {}", self.n_atoms);
        if self.truncated {
            out.push_str("truncated\n");
        }
        if let Some(src) = program_src {
            let _ = writeln!(out, "program {}", src.len());
            out.push_str(src);
            out.push('\n');
        }
        for (pos, neg) in &self.bodies {
            out.push_str("body");
            for p in pos {
                let _ = write!(out, " {p}");
            }
            out.push_str(" |");
            for n in neg {
                let _ = write!(out, " {n}");
            }
            out.push('\n');
        }
        let lits = |out: &mut String, lits: &[u32]| {
            for &c in lits {
                let v = i64::from(lit_var(c)) + 1;
                let signed = if lit_positive(c) { v } else { -v };
                let _ = write!(out, " {signed}");
            }
        };
        for step in &self.steps {
            match step {
                ProofStep::Axiom(l) => {
                    out.push_str("ax");
                    lits(&mut out, l);
                }
                ProofStep::Wfm(c) => {
                    out.push_str("wfm");
                    lits(&mut out, &[*c]);
                }
                ProofStep::Card { card, lits: l } => {
                    let _ = write!(out, "card {card}");
                    lits(&mut out, l);
                }
                ProofStep::Unfounded(l) => {
                    out.push_str("unf");
                    lits(&mut out, l);
                }
                ProofStep::Stability(l) => {
                    out.push_str("stab");
                    lits(&mut out, l);
                }
                ProofStep::Call { seq, assumptions } => {
                    let _ = write!(out, "call {seq}");
                    lits(&mut out, assumptions);
                }
                ProofStep::Learned(l) => {
                    out.push_str("learn");
                    lits(&mut out, l);
                }
                ProofStep::Delete(l) => {
                    out.push_str("del");
                    lits(&mut out, l);
                }
                ProofStep::Model { cost, atoms } => {
                    out.push_str("model");
                    for (p, c) in cost {
                        let _ = write!(out, " {p}:{c}");
                    }
                    out.push_str(" |");
                    for a in atoms {
                        let _ = write!(out, " {a}");
                    }
                }
                ProofStep::Unsat => out.push_str("unsat"),
            }
            out.push('\n');
            if out.len() > cap {
                return Err(AspError::ProofTooLarge { limit: cap });
            }
        }
        out.push_str("end\n");
        if out.len() > cap {
            return Err(AspError::ProofTooLarge { limit: cap });
        }
        Ok(out)
    }

    /// Parse the text format back into an embedded program source (if
    /// present) and the log.
    ///
    /// # Errors
    ///
    /// [`AspError::Parse`] on any malformed line.
    pub fn from_text(text: &str) -> Result<(Option<String>, ProofLog), AspError> {
        let err = |msg: String| AspError::Parse(msg);
        let mut rest = text
            .strip_prefix("cpsrisk-proof/1\n")
            .ok_or_else(|| err("missing cpsrisk-proof/1 header".into()))?;
        let mut log = ProofLog::default();
        let mut program: Option<String> = None;
        let mut saw_atoms = false;
        let mut saw_end = false;
        while !rest.is_empty() {
            let line_end = rest.find('\n').unwrap_or(rest.len());
            let line = &rest[..line_end];
            rest = &rest[(line_end + 1).min(rest.len())..];
            let mut toks = line.split_ascii_whitespace();
            let Some(kind) = toks.next() else { continue };
            match kind {
                "atoms" => {
                    log.n_atoms = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad atoms line".into()))?;
                    saw_atoms = true;
                }
                "truncated" => log.truncated = true,
                "program" => {
                    let n: usize = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad program length".into()))?;
                    if rest.len() < n {
                        return Err(err("embedded program shorter than declared".into()));
                    }
                    if !rest.is_char_boundary(n) {
                        return Err(err("program length splits a character".into()));
                    }
                    program = Some(rest[..n].to_string());
                    rest = rest[n..].strip_prefix('\n').unwrap_or(&rest[n..]);
                }
                "body" => {
                    let mut pos = Vec::new();
                    let mut neg = Vec::new();
                    let mut in_neg = false;
                    for t in toks {
                        if t == "|" {
                            in_neg = true;
                        } else {
                            let a: u32 =
                                t.parse().map_err(|_| err(format!("bad body atom `{t}`")))?;
                            if in_neg {
                                neg.push(a);
                            } else {
                                pos.push(a);
                            }
                        }
                    }
                    log.bodies.push((pos, neg));
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                _ => {
                    let step = parse_step(kind, &mut toks)
                        .ok_or_else(|| err(format!("bad proof line `{line}`")))?;
                    log.steps.push(step);
                }
            }
        }
        if !saw_atoms {
            return Err(err("missing atoms line".into()));
        }
        if !saw_end {
            return Err(err("missing end marker".into()));
        }
        Ok((program, log))
    }
}

/// Parse one step line's remaining tokens. `None` on malformed input.
fn parse_step<'a>(kind: &str, toks: &mut impl Iterator<Item = &'a str>) -> Option<ProofStep> {
    let parse_lit = |t: &str| -> Option<u32> {
        let v: i64 = t.parse().ok()?;
        if v == 0 {
            return None;
        }
        let var = u32::try_from(v.unsigned_abs().checked_sub(1)?).ok()?;
        Some(lit_code(var, v > 0))
    };
    let parse_lits = |toks: &mut dyn Iterator<Item = &'a str>| -> Option<Vec<u32>> {
        toks.map(parse_lit).collect()
    };
    Some(match kind {
        "ax" => ProofStep::Axiom(parse_lits(toks)?),
        "wfm" => {
            let l = parse_lit(toks.next()?)?;
            if toks.next().is_some() {
                return None;
            }
            ProofStep::Wfm(l)
        }
        "card" => {
            let card: u32 = toks.next()?.parse().ok()?;
            ProofStep::Card {
                card,
                lits: parse_lits(toks)?,
            }
        }
        "unf" => ProofStep::Unfounded(parse_lits(toks)?),
        "stab" => ProofStep::Stability(parse_lits(toks)?),
        "call" => {
            let seq: u32 = toks.next()?.parse().ok()?;
            ProofStep::Call {
                seq,
                assumptions: parse_lits(toks)?,
            }
        }
        "learn" => ProofStep::Learned(parse_lits(toks)?),
        "del" => ProofStep::Delete(parse_lits(toks)?),
        "model" => {
            let mut cost = Vec::new();
            let mut atoms = Vec::new();
            let mut in_atoms = false;
            for t in toks {
                if t == "|" {
                    in_atoms = true;
                } else if in_atoms {
                    atoms.push(t.parse().ok()?);
                } else {
                    let (p, c) = t.split_once(':')?;
                    cost.push((p.parse().ok()?, c.parse().ok()?));
                }
            }
            if !in_atoms {
                return None;
            }
            ProofStep::Model { cost, atoms }
        }
        "unsat" => {
            if toks.next().is_some() {
                return None;
            }
            ProofStep::Unsat
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip_preserves_every_step_kind() {
        let mut log = ProofLog {
            n_atoms: 3,
            bodies: vec![(vec![0, 2], vec![1]), (vec![], vec![0])],
            ..ProofLog::default()
        };
        log.push(ProofStep::Axiom(vec![
            lit_code(0, true),
            lit_code(3, false),
        ]));
        log.push(ProofStep::Axiom(vec![]));
        log.push(ProofStep::Wfm(lit_code(1, false)));
        log.push(ProofStep::Card {
            card: 2,
            lits: vec![lit_code(2, true)],
        });
        log.push(ProofStep::Unfounded(vec![
            lit_code(0, true),
            lit_code(2, true),
        ]));
        log.push(ProofStep::Stability(vec![lit_code(1, true)]));
        log.push(ProofStep::Call {
            seq: 0,
            assumptions: vec![lit_code(0, false)],
        });
        log.push(ProofStep::Learned(vec![
            lit_code(0, false),
            lit_code(1, true),
        ]));
        log.push(ProofStep::Delete(vec![
            lit_code(0, false),
            lit_code(1, true),
        ]));
        log.push(ProofStep::Model {
            cost: vec![(0, -4), (1, 7)],
            atoms: vec![0, 2],
        });
        log.push(ProofStep::Unsat);
        let text = log
            .to_text(Some("a :- not b.\nb :- not a.\n"), DEFAULT_TEXT_CAP)
            .expect("under cap");
        let (src, back) = ProofLog::from_text(&text).expect("roundtrip parses");
        assert_eq!(src.as_deref(), Some("a :- not b.\nb :- not a.\n"));
        assert_eq!(back, log);
    }

    #[test]
    fn byte_cap_is_enforced() {
        let mut log = ProofLog {
            n_atoms: 1,
            ..ProofLog::default()
        };
        for _ in 0..100 {
            log.push(ProofStep::Learned(vec![lit_code(0, true)]));
        }
        assert!(matches!(
            log.to_text(None, 64),
            Err(AspError::ProofTooLarge { limit: 64 })
        ));
        assert!(log.to_text(None, 1 << 20).is_ok());
    }

    #[test]
    fn step_cap_marks_truncation() {
        let mut log = ProofLog::default();
        for _ in 0..MAX_PROOF_STEPS {
            log.steps.push(ProofStep::Unsat);
        }
        log.push(ProofStep::Unsat);
        assert!(log.truncated);
        assert_eq!(log.steps.len(), MAX_PROOF_STEPS);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(ProofLog::from_text("nonsense").is_err());
        assert!(ProofLog::from_text("cpsrisk-proof/1\natoms x\nend\n").is_err());
        assert!(ProofLog::from_text("cpsrisk-proof/1\natoms 2\nlearn 0\nend\n").is_err());
        assert!(
            ProofLog::from_text("cpsrisk-proof/1\natoms 2\n").is_err(),
            "no end"
        );
        assert!(
            ProofLog::from_text("cpsrisk-proof/1\nend\n").is_err(),
            "no atoms"
        );
        assert!(ProofLog::from_text("cpsrisk-proof/1\natoms 2\nmodel 1 2\nend\n").is_err());
    }
}
