//! Abstract syntax of (non-ground) logic programs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use crate::error::AspError;

/// Arithmetic operators usable inside terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Integer division `/` (truncating; division by zero is a grounding error).
    Div,
}

impl ArithOp {
    /// Apply the operator to two integers.
    ///
    /// # Errors
    ///
    /// [`AspError::BadArithmetic`] on division by zero or overflow.
    pub fn apply(self, a: i64, b: i64) -> Result<i64, AspError> {
        let r = match self {
            ArithOp::Add => a.checked_add(b),
            ArithOp::Sub => a.checked_sub(b),
            ArithOp::Mul => a.checked_mul(b),
            ArithOp::Div => {
                if b == 0 {
                    None
                } else {
                    a.checked_div(b)
                }
            }
        };
        r.ok_or_else(|| AspError::BadArithmetic(format!("{a} {self} {b}")))
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// Comparison operators for builtin literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on two ground terms.
    ///
    /// Integers compare numerically; all ground terms compare by the total
    /// term order (integers < symbols < strings < compounds, then
    /// lexicographically), matching the usual ASP convention closely enough
    /// for model encodings.
    #[must_use]
    pub fn eval(self, a: &Term, b: &Term) -> bool {
        let ord = a.ground_cmp(b);
        match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A first-order term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// Integer constant.
    Int(i64),
    /// Symbolic constant (lowercase identifier).
    Const(String),
    /// Quoted string constant.
    Str(String),
    /// Variable (uppercase identifier).
    Var(String),
    /// Compound term `f(t1, …, tn)`.
    Func(String, Vec<Term>),
    /// Arithmetic expression, evaluated during grounding.
    BinOp(ArithOp, Box<Term>, Box<Term>),
}

impl Term {
    /// Convenience constructor for a symbolic constant.
    #[must_use]
    pub fn sym(s: impl Into<String>) -> Term {
        Term::Const(s.into())
    }

    /// Convenience constructor for a variable.
    #[must_use]
    pub fn var(s: impl Into<String>) -> Term {
        Term::Var(s.into())
    }

    /// True if the term contains no variables.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Int(_) | Term::Const(_) | Term::Str(_) => true,
            Term::Var(_) => false,
            Term::Func(_, args) => args.iter().all(Term::is_ground),
            Term::BinOp(_, a, b) => a.is_ground() && b.is_ground(),
        }
    }

    /// Collect variable names into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Func(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Term::BinOp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            _ => {}
        }
    }

    /// Evaluate arithmetic sub-expressions, producing a normalized ground
    /// term. Non-arithmetic ground terms are returned unchanged.
    ///
    /// # Errors
    ///
    /// [`AspError::BadArithmetic`] if an operator is applied to a
    /// non-integer operand, or the term is non-ground.
    pub fn eval(&self) -> Result<Term, AspError> {
        match self {
            Term::Int(_) | Term::Const(_) | Term::Str(_) => Ok(self.clone()),
            Term::Var(v) => Err(AspError::BadArithmetic(format!("unbound variable {v}"))),
            Term::Func(f, args) => {
                let args = args.iter().map(Term::eval).collect::<Result<Vec<_>, _>>()?;
                Ok(Term::Func(f.clone(), args))
            }
            Term::BinOp(op, a, b) => {
                let a = a.eval()?;
                let b = b.eval()?;
                match (&a, &b) {
                    (Term::Int(x), Term::Int(y)) => Ok(Term::Int(op.apply(*x, *y)?)),
                    _ => Err(AspError::BadArithmetic(format!("{a} {op} {b}"))),
                }
            }
        }
    }

    /// Total order over ground terms: integers (numerically) < symbols <
    /// strings < compounds (by name, arity, then args).
    #[must_use]
    pub fn ground_cmp(&self, other: &Term) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Term::*;
        fn rank(t: &Term) -> u8 {
            match t {
                Int(_) => 0,
                Const(_) => 1,
                Str(_) => 2,
                Var(_) => 3,
                Func(..) => 4,
                BinOp(..) => 5,
            }
        }
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Const(a), Const(b)) | (Str(a), Str(b)) | (Var(a), Var(b)) => a.cmp(b),
            (Func(f, fa), Func(g, ga)) => f.cmp(g).then(fa.len().cmp(&ga.len())).then_with(|| {
                fa.iter()
                    .zip(ga)
                    .map(|(x, y)| x.ground_cmp(y))
                    .find(|o| *o != Ordering::Equal)
                    .unwrap_or(Ordering::Equal)
            }),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(i) => write!(f, "{i}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Str(s) => write!(f, "\"{s}\""),
            Term::Var(v) => write!(f, "{v}"),
            Term::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::BinOp(op, a, b) => write!(f, "({a}{op}{b})"),
        }
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Self {
        Term::Int(i)
    }
}

impl From<&str> for Term {
    /// Interprets leading-uppercase identifiers as variables, everything
    /// else as a symbolic constant — mirroring the surface syntax.
    fn from(s: &str) -> Self {
        if s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase() || c == '_')
        {
            Term::Var(s.to_owned())
        } else {
            Term::Const(s.to_owned())
        }
    }
}

/// A predicate atom `p(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms (empty for propositional atoms).
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom from a predicate name and arguments.
    #[must_use]
    pub fn new(pred: impl Into<String>, args: Vec<Term>) -> Self {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// A propositional (zero-arity) atom.
    #[must_use]
    pub fn prop(pred: impl Into<String>) -> Self {
        Atom::new(pred, Vec::new())
    }

    /// True if all arguments are ground.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Collect variable names into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }

    /// Predicate signature `name/arity`.
    #[must_use]
    pub fn signature(&self) -> (String, usize) {
        (self.pred.clone(), self.args.len())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Literal {
    /// Positive atom.
    Pos(Atom),
    /// Default-negated atom (`not a`).
    Neg(Atom),
    /// Builtin comparison between two terms.
    Cmp(CmpOp, Term, Term),
}

impl Literal {
    /// Collect variable names into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.collect_vars(out),
            Literal::Cmp(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// The positive atom, if this is a positive literal.
    #[must_use]
    pub fn as_pos(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(op, l, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// One element of a choice head: `atom : condition` (condition optional).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChoiceElement {
    /// The choosable atom.
    pub atom: Atom,
    /// Local condition literals; the element is instantiated for every
    /// substitution satisfying them (clingo's conditional literal).
    pub condition: Vec<Literal>,
}

impl ChoiceElement {
    /// An unconditional element.
    #[must_use]
    pub fn plain(atom: Atom) -> Self {
        ChoiceElement {
            atom,
            condition: Vec::new(),
        }
    }
}

impl fmt::Display for ChoiceElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.atom)?;
        if !self.condition.is_empty() {
            write!(f, " : ")?;
            for (i, l) in self.condition.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        Ok(())
    }
}

/// A rule head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Head {
    /// Ordinary atom head.
    Atom(Atom),
    /// Choice head `lo { e1; …; en } hi` (either bound optional).
    Choice {
        /// Lower cardinality bound, if any.
        lower: Option<u32>,
        /// Upper cardinality bound, if any.
        upper: Option<u32>,
        /// The choosable elements.
        elements: Vec<ChoiceElement>,
    },
    /// No head: an integrity constraint.
    None,
}

impl Head {
    /// Collect variable names into `out`. Variables local to a choice
    /// element's condition are *not* collected (they are bound locally).
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Head::Atom(a) => a.collect_vars(out),
            Head::Choice { elements, .. } => {
                for e in elements {
                    // Element variables bound by the local condition are safe.
                    let mut elem_vars = BTreeSet::new();
                    e.atom.collect_vars(&mut elem_vars);
                    let mut cond_vars = BTreeSet::new();
                    for l in &e.condition {
                        if let Literal::Pos(a) = l {
                            a.collect_vars(&mut cond_vars);
                        }
                    }
                    for v in elem_vars.difference(&cond_vars) {
                        out.insert(v.clone());
                    }
                }
            }
            Head::None => {}
        }
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Head::Atom(a) => write!(f, "{a}"),
            Head::Choice {
                lower,
                upper,
                elements,
            } => {
                if let Some(l) = lower {
                    write!(f, "{l} ")?;
                }
                write!(f, "{{ ")?;
                for (i, e) in elements.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, " }}")?;
                if let Some(u) = upper {
                    write!(f, " {u}")?;
                }
                Ok(())
            }
            Head::None => Ok(()),
        }
    }
}

/// A rule `head :- body.`
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The head.
    pub head: Head,
    /// The body literals (conjunction; empty for facts).
    pub body: Vec<Literal>,
}

impl Rule {
    /// A fact `a.`
    #[must_use]
    pub fn fact(atom: Atom) -> Rule {
        Rule {
            head: Head::Atom(atom),
            body: Vec::new(),
        }
    }

    /// A normal rule `head :- body.`
    #[must_use]
    pub fn normal(head: Atom, body: Vec<Literal>) -> Rule {
        Rule {
            head: Head::Atom(head),
            body,
        }
    }

    /// An integrity constraint `:- body.`
    #[must_use]
    pub fn constraint(body: Vec<Literal>) -> Rule {
        Rule {
            head: Head::None,
            body,
        }
    }

    /// Verify rule safety: every variable in the rule occurs in a positive,
    /// non-builtin body literal.
    ///
    /// # Errors
    ///
    /// [`AspError::UnsafeRule`] naming the first unbound variable.
    pub fn check_safety(&self) -> Result<(), AspError> {
        let mut all = BTreeSet::new();
        self.head.collect_vars(&mut all);
        for l in &self.body {
            l.collect_vars(&mut all);
        }
        let mut safe = BTreeSet::new();
        for l in &self.body {
            if let Literal::Pos(a) = l {
                a.collect_vars(&mut safe);
            }
        }
        // `=` with one side already safe also binds the other side when it
        // is a plain variable (X = <expr>).
        let mut changed = true;
        while changed {
            changed = false;
            for l in &self.body {
                if let Literal::Cmp(CmpOp::Eq, lhs, rhs) = l {
                    for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                        if let Term::Var(v) = a {
                            let mut bv = BTreeSet::new();
                            b.collect_vars(&mut bv);
                            if bv.is_subset(&safe) && safe.insert(v.clone()) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        for v in &all {
            if !safe.contains(v) {
                return Err(AspError::UnsafeRule {
                    var: v.clone(),
                    rule: self.to_string(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.head, self.body.is_empty()) {
            (Head::None, _) => write!(f, ":- ")?,
            (h, true) => return write!(f, "{h}."),
            (h, false) => write!(f, "{h} :- ")?,
        }
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// One element of a `#minimize` statement: `weight,terms : condition`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimizeElement {
    /// Weight term (must ground to an integer).
    pub weight: Term,
    /// Tuple terms distinguishing elements with equal weights.
    pub terms: Vec<Term>,
    /// Condition literals; the weight counts when all hold.
    pub condition: Vec<Literal>,
}

impl fmt::Display for MinimizeElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.weight)?;
        for t in &self.terms {
            write!(f, ",{t}")?;
        }
        if !self.condition.is_empty() {
            write!(f, " : ")?;
            for (i, l) in self.condition.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        Ok(())
    }
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Statement {
    /// A rule, fact, or constraint.
    Rule(Rule),
    /// `#minimize { elements }.` at a priority level (higher = more important).
    Minimize {
        /// Priority level.
        priority: i64,
        /// Weighted elements.
        elements: Vec<MinimizeElement>,
    },
    /// `#show pred/arity.` — projection hint for display.
    Show {
        /// Predicate name.
        pred: String,
        /// Arity.
        arity: usize,
    },
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Rule(r) => write!(f, "{r}"),
            Statement::Minimize { priority, elements } => {
                write!(f, "#minimize {{ ")?;
                for (i, e) in elements.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}@{priority}")?;
                }
                write!(f, " }}.")
            }
            Statement::Show { pred, arity } => write!(f, "#show {pred}/{arity}."),
        }
    }
}

/// A complete (non-ground) logic program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Statements in source order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// All rules (in order), skipping non-rule statements.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.statements.iter().filter_map(|s| match s {
            Statement::Rule(r) => Some(r),
            _ => None,
        })
    }

    /// Append every statement of `other`.
    pub fn extend(&mut self, other: Program) {
        self.statements.extend(other.statements);
    }

    /// Add a single rule.
    pub fn push_rule(&mut self, rule: Rule) {
        self.statements.push(Statement::Rule(rule));
    }

    /// Ground and enumerate **all** answer sets with default limits.
    ///
    /// # Errors
    ///
    /// Propagates grounding and solving errors.
    pub fn solve(&self) -> Result<Vec<crate::solve::Model>, AspError> {
        let ground = crate::ground::Grounder::new().ground(self)?;
        let mut solver = crate::solve::Solver::new(&ground);
        Ok(solver
            .enumerate(&crate::solve::SolveOptions::default())?
            .models)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.statements {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for Program {
    type Err = AspError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parser::parse_program(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_groundness() {
        assert!(Term::sym("a").is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(!Term::Func("f".into(), vec![Term::var("X")]).is_ground());
        assert!(Term::Func("f".into(), vec![Term::Int(3)]).is_ground());
    }

    #[test]
    fn arithmetic_evaluation() {
        let t = Term::BinOp(
            ArithOp::Add,
            Box::new(Term::Int(2)),
            Box::new(Term::BinOp(
                ArithOp::Mul,
                Box::new(Term::Int(3)),
                Box::new(Term::Int(4)),
            )),
        );
        assert_eq!(t.eval().unwrap(), Term::Int(14));
        let div0 = Term::BinOp(ArithOp::Div, Box::new(Term::Int(1)), Box::new(Term::Int(0)));
        assert!(div0.eval().is_err());
        let sym = Term::BinOp(
            ArithOp::Add,
            Box::new(Term::sym("a")),
            Box::new(Term::Int(1)),
        );
        assert!(sym.eval().is_err());
    }

    #[test]
    fn ground_term_order_is_total_over_kinds() {
        use std::cmp::Ordering::*;
        assert_eq!(Term::Int(1).ground_cmp(&Term::Int(2)), Less);
        assert_eq!(Term::Int(9).ground_cmp(&Term::sym("a")), Less);
        assert_eq!(Term::sym("b").ground_cmp(&Term::sym("a")), Greater);
        assert_eq!(
            Term::Func("f".into(), vec![Term::Int(1)])
                .ground_cmp(&Term::Func("f".into(), vec![Term::Int(2)])),
            Less
        );
    }

    #[test]
    fn comparison_semantics() {
        assert!(CmpOp::Lt.eval(&Term::Int(1), &Term::Int(2)));
        assert!(CmpOp::Ne.eval(&Term::sym("a"), &Term::sym("b")));
        assert!(CmpOp::Eq.eval(&Term::sym("a"), &Term::sym("a")));
        assert!(!CmpOp::Ge.eval(&Term::Int(1), &Term::Int(2)));
    }

    #[test]
    fn safety_check_accepts_and_rejects() {
        // p(X) :- q(X).  — safe
        let safe = Rule::normal(
            Atom::new("p", vec![Term::var("X")]),
            vec![Literal::Pos(Atom::new("q", vec![Term::var("X")]))],
        );
        assert!(safe.check_safety().is_ok());

        // p(X) :- not q(X).  — unsafe
        let unsafe_rule = Rule::normal(
            Atom::new("p", vec![Term::var("X")]),
            vec![Literal::Neg(Atom::new("q", vec![Term::var("X")]))],
        );
        assert!(matches!(
            unsafe_rule.check_safety(),
            Err(AspError::UnsafeRule { .. })
        ));

        // p(Y) :- q(X), Y = X + 1.  — safe via equality binding
        let eq_bound = Rule::normal(
            Atom::new("p", vec![Term::var("Y")]),
            vec![
                Literal::Pos(Atom::new("q", vec![Term::var("X")])),
                Literal::Cmp(
                    CmpOp::Eq,
                    Term::var("Y"),
                    Term::BinOp(
                        ArithOp::Add,
                        Box::new(Term::var("X")),
                        Box::new(Term::Int(1)),
                    ),
                ),
            ],
        );
        assert!(eq_bound.check_safety().is_ok());
    }

    #[test]
    fn display_roundtrips_basic_shapes() {
        let r = Rule::normal(
            Atom::new("p", vec![Term::var("X")]),
            vec![
                Literal::Pos(Atom::new("q", vec![Term::var("X")])),
                Literal::Neg(Atom::prop("r")),
            ],
        );
        assert_eq!(r.to_string(), "p(X) :- q(X), not r.");
        let c = Rule::constraint(vec![Literal::Pos(Atom::prop("bad"))]);
        assert_eq!(c.to_string(), ":- bad.");
        let f = Rule::fact(Atom::new("p", vec![Term::Int(1), Term::sym("a")]));
        assert_eq!(f.to_string(), "p(1,a).");
    }

    #[test]
    fn from_str_for_term_distinguishes_vars() {
        assert_eq!(Term::from("X"), Term::var("X"));
        assert_eq!(Term::from("abc"), Term::sym("abc"));
        assert_eq!(Term::from("_G"), Term::var("_G"));
    }
}
