//! Independent answer-set verification.
//!
//! [`is_stable_model`] implements the textbook definition directly: build
//! the Gelfond–Lifschitz reduct of the program w.r.t. a candidate
//! interpretation, compute its least model by naive TP iteration, and
//! compare. Choice-supported atoms are self-justified when their support
//! body holds. The solver calls this on every complete assignment, so the
//! engine's correctness rests on this small, obviously-correct function
//! rather than on the propagation machinery.

use std::collections::HashSet;

use crate::program::{AtomId, CardConstraint, GroundHead, GroundProgram};

/// Is `candidate` (the set of true atoms) a stable model of `program`?
///
/// Checks, in order: integrity constraints, cardinality bounds, and the
/// reduct least-model condition (including support for choice atoms).
#[must_use]
pub fn is_stable_model(program: &GroundProgram, candidate: &HashSet<AtomId>) -> bool {
    // 1. Integrity constraints: no satisfied constraint body.
    for r in &program.rules {
        if matches!(r.head, GroundHead::None) && body_satisfied(&r.pos, &r.neg, candidate) {
            return false;
        }
    }
    // 2. Cardinality bounds.
    for c in &program.cards {
        if !card_satisfied(c, candidate) {
            return false;
        }
    }
    // 3. Reduct least model == candidate.
    least_model_of_reduct(program, candidate)
        .map(|lm| lm == *candidate)
        .unwrap_or(false)
}

/// Compute the least model of the reduct w.r.t. `candidate`.
///
/// Returns `None` if a choice atom in the candidate has no satisfied
/// support (it could never be derived).
///
/// The least model is the TP fixpoint of the reduct; it is computed here
/// by standard worklist chaining (per rule, count the positive body atoms
/// not yet derived; a rule fires when the count reaches zero), which
/// visits every rule-body literal O(1) times instead of once per naive
/// iteration round.
#[must_use]
pub fn least_model_of_reduct(
    program: &GroundProgram,
    candidate: &HashSet<AtomId>,
) -> Option<HashSet<AtomId>> {
    let n_atoms = program.atom_count();
    let rules = &program.rules;

    // Positive-occurrence lists in compressed (CSR) form: two flat arrays
    // instead of one Vec per atom, cheap to rebuild per call.
    let mut off = vec![0u32; n_atoms + 1];
    for r in rules {
        for &p in &r.pos {
            off[p.index() + 1] += 1;
        }
    }
    for i in 0..n_atoms {
        off[i + 1] += off[i];
    }
    let mut occ = vec![0u32; off[n_atoms] as usize];
    let mut cursor = off.clone();
    for (ri, r) in rules.iter().enumerate() {
        for &p in &r.pos {
            occ[cursor[p.index()] as usize] = ri as u32;
            cursor[p.index()] += 1;
        }
    }

    // Reduct: rules with a negative literal contradicted by the candidate
    // are dropped; remaining negative literals are deleted.
    let dropped: Vec<bool> = rules
        .iter()
        .map(|r| r.neg.iter().any(|n| candidate.contains(n)))
        .collect();

    let mut missing: Vec<u32> = rules.iter().map(|r| r.pos.len() as u32).collect();
    let mut in_model = vec![false; n_atoms];
    let mut derived: HashSet<AtomId> = HashSet::new();
    let mut stack: Vec<u32> = Vec::new();

    let fire = |ri: usize,
                in_model: &mut Vec<bool>,
                derived: &mut HashSet<AtomId>,
                stack: &mut Vec<u32>| {
        if dropped[ri] {
            return;
        }
        let h = match rules[ri].head {
            GroundHead::Atom(h) => h,
            // A chosen atom is self-justified iff it is in the candidate
            // and its support body holds in the reduct.
            GroundHead::Choice(h) if candidate.contains(&h) => h,
            _ => return,
        };
        if !in_model[h.index()] {
            in_model[h.index()] = true;
            derived.insert(h);
            stack.push(h.0);
        }
    };

    for (ri, &need) in missing.iter().enumerate() {
        if need == 0 {
            fire(ri, &mut in_model, &mut derived, &mut stack);
        }
    }
    while let Some(a) = stack.pop() {
        for i in off[a as usize]..off[a as usize + 1] {
            let ri = occ[i as usize] as usize;
            missing[ri] -= 1;
            if missing[ri] == 0 {
                fire(ri, &mut in_model, &mut derived, &mut stack);
            }
        }
    }

    // Every candidate atom must be derivable.
    if candidate.iter().all(|a| derived.contains(a)) {
        Some(derived)
    } else {
        None
    }
}

fn body_satisfied(pos: &[AtomId], neg: &[AtomId], m: &HashSet<AtomId>) -> bool {
    pos.iter().all(|p| m.contains(p)) && neg.iter().all(|n| !m.contains(n))
}

/// Evaluate a cardinality constraint against a complete interpretation.
#[must_use]
pub fn card_satisfied(c: &CardConstraint, m: &HashSet<AtomId>) -> bool {
    if !body_satisfied(&c.pos, &c.neg, m) {
        return true; // bounds only apply when the body holds
    }
    let held = c
        .elements
        .iter()
        .filter(|e| m.contains(&e.atom) && body_satisfied(&e.guard_pos, &e.guard_neg, m))
        .count() as u32;
    c.lower <= held && held <= c.upper
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    fn ground(src: &str) -> GroundProgram {
        Grounder::new().ground(&parse(src).unwrap()).unwrap()
    }

    fn set(program: &GroundProgram, atoms: &[&str]) -> HashSet<AtomId> {
        atoms
            .iter()
            .map(|s| {
                program
                    .atoms()
                    .find(|(_, a)| a.to_string() == *s)
                    .unwrap_or_else(|| panic!("atom {s} not interned"))
                    .0
            })
            .collect()
    }

    #[test]
    fn definite_program_least_model() {
        let g = ground("p. q :- p. r :- q.");
        assert!(is_stable_model(&g, &set(&g, &["p", "q", "r"])));
        assert!(!is_stable_model(&g, &set(&g, &["p", "q"])), "r missing");
        assert!(!is_stable_model(&g, &set(&g, &["p"])), "not closed");
    }

    #[test]
    fn negation_as_failure() {
        let g = ground("{ q }. p :- not q.");
        assert!(
            is_stable_model(&g, &set(&g, &["p"])),
            "q unchosen, p derived"
        );
        assert!(is_stable_model(&g, &set(&g, &["q"])), "q chosen blocks p");
        assert!(!is_stable_model(&g, &set(&g, &["p", "q"])));
        assert!(!is_stable_model(&g, &set(&g, &[])), "p must be derived");
    }

    #[test]
    fn unsupported_atoms_are_rejected() {
        let g = ground("{ a }. b :- a.");
        assert!(is_stable_model(&g, &set(&g, &[])));
        assert!(is_stable_model(&g, &set(&g, &["a", "b"])));
        assert!(
            !is_stable_model(&g, &set(&g, &["b"])),
            "b unsupported without a"
        );
    }

    #[test]
    fn positive_loops_are_unfounded() {
        // Built manually: the grounder would simplify this program away
        // (neither atom is derivable), which is itself correct.
        use crate::ast::Atom;
        use crate::program::GroundRule;
        let mut g = GroundProgram::new();
        let a = g.intern(Atom::prop("a"));
        let b = g.intern(Atom::prop("b"));
        g.rules.push(GroundRule {
            head: GroundHead::Atom(a),
            pos: vec![b],
            neg: vec![],
        });
        g.rules.push(GroundRule {
            head: GroundHead::Atom(b),
            pos: vec![a],
            neg: vec![],
        });
        assert!(is_stable_model(&g, &HashSet::new()));
        assert!(
            !is_stable_model(&g, &[a, b].into_iter().collect()),
            "mutual support is unfounded"
        );
    }

    #[test]
    fn constraints_exclude_models() {
        let g = ground("{ a }. :- a.");
        assert!(is_stable_model(&g, &set(&g, &[])));
        assert!(!is_stable_model(&g, &set(&g, &["a"])));
    }

    #[test]
    fn cardinality_bounds_checked() {
        let g = ground("item(x). item(y). 1 { pick(I) : item(I) } 1.");
        assert!(is_stable_model(
            &g,
            &set(&g, &["item(x)", "item(y)", "pick(x)"])
        ));
        assert!(
            !is_stable_model(&g, &set(&g, &["item(x)", "item(y)"])),
            "lower bound"
        );
        assert!(
            !is_stable_model(&g, &set(&g, &["item(x)", "item(y)", "pick(x)", "pick(y)"])),
            "upper bound"
        );
    }

    #[test]
    fn choice_support_requires_body() {
        let g = ground("{ a } :- t. { t }.");
        assert!(is_stable_model(&g, &set(&g, &[])));
        assert!(is_stable_model(&g, &set(&g, &["t"])));
        assert!(is_stable_model(&g, &set(&g, &["t", "a"])));
        assert!(!is_stable_model(&g, &set(&g, &["a"])), "a needs t");
    }
}
