//! Independent answer-set and proof verification.
//!
//! [`is_stable_model`] implements the textbook definition directly: build
//! the Gelfond–Lifschitz reduct of the program w.r.t. a candidate
//! interpretation, compute its least model by naive TP iteration, and
//! compare. Choice-supported atoms are self-justified when their support
//! body holds. The solver calls this on every complete assignment, so the
//! engine's correctness rests on this small, obviously-correct function
//! rather than on the propagation machinery.
//!
//! [`check_proof`] extends the same philosophy to whole solver runs: it
//! replays a [`ProofLog`] emitted under
//! [`SolveOptions::certify`](crate::solve::SolveOptions) against the
//! ground program, sharing **no** solver code. Completion axioms are
//! validated against the checker's own translation of the program,
//! well-founded facts against its own naive alternating fixpoint, every
//! learned nogood by RUP replay (assert its literals, unit-propagate over
//! the live nogood set, demand a conflict), cardinality and unfounded-set
//! inferences against counting and closure arguments computed from
//! scratch, every claimed model by the full stability audit plus a
//! `#minimize` cost recomputation, and every unsat verdict by propagating
//! the call's assumptions into a conflict. A proof that passes certifies
//! the verdicts of every tagged call without trusting the CDCL engine.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::Term;
use crate::program::{AtomId, CardConstraint, GroundHead, GroundProgram};
use crate::proof::{lit_code, lit_positive, lit_var, ProofLog, ProofStep};

/// Is `candidate` (the set of true atoms) a stable model of `program`?
///
/// Checks, in order: integrity constraints, cardinality bounds, and the
/// reduct least-model condition (including support for choice atoms).
#[must_use]
pub fn is_stable_model(program: &GroundProgram, candidate: &HashSet<AtomId>) -> bool {
    // 1. Integrity constraints: no satisfied constraint body.
    for r in &program.rules {
        if matches!(r.head, GroundHead::None) && body_satisfied(&r.pos, &r.neg, candidate) {
            return false;
        }
    }
    // 2. Cardinality bounds.
    for c in &program.cards {
        if !card_satisfied(c, candidate) {
            return false;
        }
    }
    // 3. Reduct least model == candidate.
    least_model_of_reduct(program, candidate)
        .map(|lm| lm == *candidate)
        .unwrap_or(false)
}

/// Compute the least model of the reduct w.r.t. `candidate`.
///
/// Returns `None` if a choice atom in the candidate has no satisfied
/// support (it could never be derived).
///
/// The least model is the TP fixpoint of the reduct; it is computed here
/// by standard worklist chaining (per rule, count the positive body atoms
/// not yet derived; a rule fires when the count reaches zero), which
/// visits every rule-body literal O(1) times instead of once per naive
/// iteration round.
#[must_use]
pub fn least_model_of_reduct(
    program: &GroundProgram,
    candidate: &HashSet<AtomId>,
) -> Option<HashSet<AtomId>> {
    let n_atoms = program.atom_count();
    let rules = &program.rules;

    // Positive-occurrence lists in compressed (CSR) form: two flat arrays
    // instead of one Vec per atom, cheap to rebuild per call.
    let mut off = vec![0u32; n_atoms + 1];
    for r in rules {
        for &p in &r.pos {
            off[p.index() + 1] += 1;
        }
    }
    for i in 0..n_atoms {
        off[i + 1] += off[i];
    }
    let mut occ = vec![0u32; off[n_atoms] as usize];
    let mut cursor = off.clone();
    for (ri, r) in rules.iter().enumerate() {
        for &p in &r.pos {
            occ[cursor[p.index()] as usize] = ri as u32;
            cursor[p.index()] += 1;
        }
    }

    // Reduct: rules with a negative literal contradicted by the candidate
    // are dropped; remaining negative literals are deleted.
    let dropped: Vec<bool> = rules
        .iter()
        .map(|r| r.neg.iter().any(|n| candidate.contains(n)))
        .collect();

    let mut missing: Vec<u32> = rules.iter().map(|r| r.pos.len() as u32).collect();
    let mut in_model = vec![false; n_atoms];
    let mut derived: HashSet<AtomId> = HashSet::new();
    let mut stack: Vec<u32> = Vec::new();

    let fire = |ri: usize,
                in_model: &mut Vec<bool>,
                derived: &mut HashSet<AtomId>,
                stack: &mut Vec<u32>| {
        if dropped[ri] {
            return;
        }
        let h = match rules[ri].head {
            GroundHead::Atom(h) => h,
            // A chosen atom is self-justified iff it is in the candidate
            // and its support body holds in the reduct.
            GroundHead::Choice(h) if candidate.contains(&h) => h,
            _ => return,
        };
        if !in_model[h.index()] {
            in_model[h.index()] = true;
            derived.insert(h);
            stack.push(h.0);
        }
    };

    for (ri, &need) in missing.iter().enumerate() {
        if need == 0 {
            fire(ri, &mut in_model, &mut derived, &mut stack);
        }
    }
    while let Some(a) = stack.pop() {
        for i in off[a as usize]..off[a as usize + 1] {
            let ri = occ[i as usize] as usize;
            missing[ri] -= 1;
            if missing[ri] == 0 {
                fire(ri, &mut in_model, &mut derived, &mut stack);
            }
        }
    }

    // Every candidate atom must be derivable.
    if candidate.iter().all(|a| derived.contains(a)) {
        Some(derived)
    } else {
        None
    }
}

fn body_satisfied(pos: &[AtomId], neg: &[AtomId], m: &HashSet<AtomId>) -> bool {
    pos.iter().all(|p| m.contains(p)) && neg.iter().all(|n| !m.contains(n))
}

/// Evaluate a cardinality constraint against a complete interpretation.
#[must_use]
pub fn card_satisfied(c: &CardConstraint, m: &HashSet<AtomId>) -> bool {
    if !body_satisfied(&c.pos, &c.neg, m) {
        return true; // bounds only apply when the body holds
    }
    let held = c
        .elements
        .iter()
        .filter(|e| m.contains(&e.atom) && body_satisfied(&e.guard_pos, &e.guard_neg, m))
        .count() as u32;
    c.lower <= held && held <= c.upper
}

// ---------------------------------------------------------------------------
// Proof certificate checking
// ---------------------------------------------------------------------------

/// Why [`check_proof`] rejected a certificate.
///
/// Every variant names the zero-based index of the offending step (where
/// one exists) so a failing certificate can be diagnosed directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The log overflowed the in-memory step cap while being recorded;
    /// the suffix is missing, so nothing can be certified.
    Truncated,
    /// The proof header declares a different atom count than the program.
    AtomCountMismatch {
        /// Atom count declared by the proof.
        proof: u32,
        /// Atom count of the ground program.
        program: u32,
    },
    /// A declared body is malformed: atom lists must be strictly sorted
    /// and within the program's atom range.
    BadBodyDeclaration {
        /// Index of the offending body declaration.
        index: usize,
    },
    /// A rule body of the program has no matching body declaration, so
    /// the completion translation cannot be reconstructed.
    MissingBodyDeclaration,
    /// A step mentions a literal outside the declared variable range.
    LitOutOfRange {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// An axiom step is not part of the program's completion translation.
    UnknownAxiom {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A well-founded fact disagrees with the checker's own alternating
    /// fixpoint.
    WfmMismatch {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A cardinality inference is not entailed by bound counting under
    /// the literals it pins.
    CardNotEntailed {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// An unfounded-set inference survives the checker's closure argument:
    /// the target atom is still possibly derivable under the prefix.
    UnfoundedUnjustified {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A stability-failure nogood could not be reproduced: propagating its
    /// literals neither conflicts nor reaches a total unstable assignment.
    StabilityUnjustified {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A learned nogood failed reverse unit propagation: asserting its
    /// literals does not propagate to a conflict over the live nogoods.
    RupFailed {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A deletion names a nogood that is not live.
    DeleteUnknown {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A model or unsat verdict appears outside any certified call.
    StepOutsideCall {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A claimed model lists an atom outside the program, or an atom twice.
    BadModelAtoms {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A claimed model violates one of the call's assumptions.
    AssumptionViolated {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A claimed model failed the independent stability audit.
    ModelNotStable {
        /// Zero-based index of the offending step.
        step: usize,
    },
    /// A claimed `#minimize` cost differs from the recomputed one.
    CostMismatch {
        /// Zero-based index of the offending step.
        step: usize,
        /// The cost vector the proof claims.
        claimed: Vec<(i64, i64)>,
        /// The cost vector recomputed from the model.
        actual: Vec<(i64, i64)>,
    },
    /// An unsat verdict could not be reproduced: propagating the call's
    /// assumptions over the live nogoods does not conflict.
    UnsatNotDerivable {
        /// Zero-based index of the offending step.
        step: usize,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Truncated => write!(f, "proof log was truncated; suffix is missing"),
            CheckError::AtomCountMismatch { proof, program } => write!(
                f,
                "proof declares {proof} atoms but the program has {program}"
            ),
            CheckError::BadBodyDeclaration { index } => {
                write!(f, "body declaration {index} is malformed")
            }
            CheckError::MissingBodyDeclaration => {
                write!(f, "a rule body has no matching body declaration")
            }
            CheckError::LitOutOfRange { step } => {
                write!(
                    f,
                    "step {step}: literal outside the declared variable range"
                )
            }
            CheckError::UnknownAxiom { step } => {
                write!(
                    f,
                    "step {step}: axiom is not part of the program translation"
                )
            }
            CheckError::WfmMismatch { step } => write!(
                f,
                "step {step}: well-founded fact contradicts the checker's fixpoint"
            ),
            CheckError::CardNotEntailed { step } => write!(
                f,
                "step {step}: cardinality inference not entailed by bound counting"
            ),
            CheckError::UnfoundedUnjustified { step } => write!(
                f,
                "step {step}: unfounded-set target is still possibly derivable"
            ),
            CheckError::StabilityUnjustified { step } => write!(
                f,
                "step {step}: stability refutation could not be reproduced"
            ),
            CheckError::RupFailed { step } => write!(
                f,
                "step {step}: learned nogood failed reverse unit propagation"
            ),
            CheckError::DeleteUnknown { step } => {
                write!(f, "step {step}: deletion names a nogood that is not live")
            }
            CheckError::StepOutsideCall { step } => {
                write!(f, "step {step}: verdict appears outside any certified call")
            }
            CheckError::BadModelAtoms { step } => {
                write!(f, "step {step}: model lists an invalid or duplicate atom")
            }
            CheckError::AssumptionViolated { step } => {
                write!(f, "step {step}: model violates a call assumption")
            }
            CheckError::ModelNotStable { step } => {
                write!(f, "step {step}: claimed model is not a stable model")
            }
            CheckError::CostMismatch {
                step,
                claimed,
                actual,
            } => write!(
                f,
                "step {step}: claimed cost {claimed:?} differs from recomputed {actual:?}"
            ),
            CheckError::UnsatNotDerivable { step } => write!(
                f,
                "step {step}: unsat verdict not derivable from the live nogoods"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Summary statistics of a successful [`check_proof`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Total proof steps verified.
    pub steps: usize,
    /// Axiom steps matched against the completion translation.
    pub axioms: usize,
    /// Well-founded facts confirmed against the checker's fixpoint.
    pub wfm_facts: usize,
    /// Cardinality, unfounded-set, and stability inferences re-derived.
    pub inferences: usize,
    /// Learned nogoods replayed by reverse unit propagation.
    pub learned: usize,
    /// Deletions applied.
    pub deleted: usize,
    /// Certified calls seen.
    pub calls: usize,
    /// Models fully audited (stability + assumptions + cost).
    pub models: usize,
    /// Unsat verdicts re-derived by propagation.
    pub unsats: usize,
}

/// Verify a proof certificate against the ground program it claims to
/// certify.
///
/// The checker shares no code with the CDCL engine: it rebuilds the
/// completion translation, the well-founded fixpoint, and every cardinality
/// or unfounded-set argument from the ground program alone, and replays
/// learned nogoods by reverse unit propagation over the nogoods the proof
/// itself established. See the [module docs](self) for the full contract.
///
/// # Errors
///
/// The first step that cannot be independently justified is reported as a
/// [`CheckError`] naming the step and the reason.
pub fn check_proof(program: &GroundProgram, log: &ProofLog) -> Result<CheckReport, CheckError> {
    if log.truncated {
        return Err(CheckError::Truncated);
    }
    let n_atoms = program.atom_count() as u32;
    if log.n_atoms != n_atoms {
        return Err(CheckError::AtomCountMismatch {
            proof: log.n_atoms,
            program: n_atoms,
        });
    }
    let n_vars = n_atoms as usize + log.bodies.len();
    let (expected, empty_allowed) = expected_axioms(program, &log.bodies)?;
    let wfm = naive_wfm(program);

    let mut rep = CheckReport::default();
    let mut eng = Replay::new(n_vars);
    let mut call: Option<Vec<u32>> = None;
    // Consecutive unfounded-set steps from one backstop scan share their
    // prefix; the closure computed for the first is a sound
    // over-approximation for the rest (later additions only shrink it).
    let mut closure_cache: Option<(Vec<u32>, Vec<bool>)> = None;

    for (si, step) in log.steps.iter().enumerate() {
        match step {
            ProofStep::Axiom(lits) => {
                check_range(lits, n_vars, si)?;
                let c = canon(lits);
                let known = if c.is_empty() {
                    empty_allowed
                } else {
                    expected.contains(&c)
                };
                if !known {
                    return Err(CheckError::UnknownAxiom { step: si });
                }
                eng.add(&c);
                rep.axioms += 1;
            }
            ProofStep::Wfm(c) => {
                let a = lit_var(*c);
                if a >= n_atoms {
                    return Err(CheckError::LitOutOfRange { step: si });
                }
                // The forbidden literal `(a, v)` claims every stable model
                // assigns the complement: forbidding truth needs WFM-false
                // and vice versa.
                let ok = if lit_positive(*c) {
                    !wfm.possible[a as usize]
                } else {
                    wfm.certain[a as usize]
                };
                if !ok {
                    return Err(CheckError::WfmMismatch { step: si });
                }
                eng.add(&[*c]);
                rep.wfm_facts += 1;
            }
            ProofStep::Card { card, lits } => {
                check_range(lits, n_vars, si)?;
                if !card_step_entailed(program, *card as usize, lits) {
                    return Err(CheckError::CardNotEntailed { step: si });
                }
                eng.add(&canon(lits));
                rep.inferences += 1;
            }
            ProofStep::Unfounded(lits) => {
                check_range(lits, n_vars, si)?;
                let Some((&target, prefix)) = lits.split_last() else {
                    return Err(CheckError::UnfoundedUnjustified { step: si });
                };
                if !lit_positive(target) || lit_var(target) >= n_atoms {
                    return Err(CheckError::UnfoundedUnjustified { step: si });
                }
                eng.rebuild_if_dirty(&mut closure_cache);
                let tv = lit_var(target) as usize;
                let cached = matches!(
                    &closure_cache,
                    Some((p, inc)) if p == prefix && !inc[tv]
                );
                let ok = eng.root_conflict || cached || {
                    let mark = eng.checkpoint();
                    let mut conflict = prefix.iter().any(|&c| !eng.assert_sat(c));
                    if !conflict {
                        conflict = !eng.propagate();
                    }
                    let ok = conflict || eng.val[tv] == Some(false) || {
                        let inc = derivability_closure(program, &eng.val);
                        let excluded = !inc[tv];
                        closure_cache = Some((prefix.to_vec(), inc));
                        excluded
                    };
                    eng.rollback(mark);
                    ok
                };
                if !ok {
                    return Err(CheckError::UnfoundedUnjustified { step: si });
                }
                eng.add(&canon(lits));
                rep.inferences += 1;
            }
            ProofStep::Stability(lits) => {
                check_range(lits, n_vars, si)?;
                eng.rebuild_if_dirty(&mut closure_cache);
                let ok = eng.root_conflict || {
                    let mark = eng.checkpoint();
                    let mut conflict = lits.iter().any(|&c| !eng.assert_sat(c));
                    if !conflict {
                        conflict = !eng.propagate();
                    }
                    let ok = conflict || {
                        // The prefix must re-propagate to the very total
                        // assignment the solver rejected as unstable.
                        let total = (0..n_atoms as usize).all(|a| eng.val[a].is_some());
                        total && {
                            let cand: HashSet<AtomId> = (0..n_atoms)
                                .filter(|&a| eng.val[a as usize] == Some(true))
                                .map(AtomId)
                                .collect();
                            !is_stable_model(program, &cand)
                        }
                    };
                    eng.rollback(mark);
                    ok
                };
                if !ok {
                    return Err(CheckError::StabilityUnjustified { step: si });
                }
                eng.add(&canon(lits));
                rep.inferences += 1;
            }
            ProofStep::Call { assumptions, .. } => {
                for &c in assumptions {
                    if lit_var(c) >= n_atoms {
                        return Err(CheckError::LitOutOfRange { step: si });
                    }
                }
                call = Some(assumptions.clone());
                rep.calls += 1;
            }
            ProofStep::Learned(lits) => {
                check_range(lits, n_vars, si)?;
                eng.rebuild_if_dirty(&mut closure_cache);
                if !eng.refutes(lits) {
                    return Err(CheckError::RupFailed { step: si });
                }
                eng.add(&canon(lits));
                rep.learned += 1;
            }
            ProofStep::Delete(lits) => {
                if !eng.delete(&canon(lits)) {
                    return Err(CheckError::DeleteUnknown { step: si });
                }
                closure_cache = None;
                rep.deleted += 1;
            }
            ProofStep::Model { cost, atoms } => {
                let asm = call
                    .as_ref()
                    .ok_or(CheckError::StepOutsideCall { step: si })?;
                if atoms.iter().any(|&a| a >= n_atoms) {
                    return Err(CheckError::BadModelAtoms { step: si });
                }
                let ids: HashSet<AtomId> = atoms.iter().map(|&a| AtomId(a)).collect();
                if ids.len() != atoms.len() {
                    return Err(CheckError::BadModelAtoms { step: si });
                }
                for &c in asm {
                    if ids.contains(&AtomId(lit_var(c))) != lit_positive(c) {
                        return Err(CheckError::AssumptionViolated { step: si });
                    }
                }
                if !is_stable_model(program, &ids) {
                    return Err(CheckError::ModelNotStable { step: si });
                }
                let actual = recompute_cost(program, &ids);
                if *cost != actual {
                    return Err(CheckError::CostMismatch {
                        step: si,
                        claimed: cost.clone(),
                        actual,
                    });
                }
                rep.models += 1;
            }
            ProofStep::Unsat => {
                let asm = call
                    .as_ref()
                    .ok_or(CheckError::StepOutsideCall { step: si })?
                    .clone();
                eng.rebuild_if_dirty(&mut closure_cache);
                if !eng.refutes(&asm) {
                    return Err(CheckError::UnsatNotDerivable { step: si });
                }
                rep.unsats += 1;
            }
        }
        rep.steps += 1;
    }
    Ok(rep)
}

/// Canonical (sorted, deduplicated) form of a nogood's literal codes.
fn canon(lits: &[u32]) -> Vec<u32> {
    let mut v = lits.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

fn check_range(lits: &[u32], n_vars: usize, step: usize) -> Result<(), CheckError> {
    if lits.iter().any(|&c| lit_var(c) as usize >= n_vars) {
        return Err(CheckError::LitOutOfRange { step });
    }
    Ok(())
}

/// The completion translation, rebuilt from the ground program over the
/// proof's declared bodies. Returns the set of admissible axiom nogoods
/// (canonical form) and whether the empty axiom (an always-violated
/// constraint) is admissible.
fn expected_axioms(
    program: &GroundProgram,
    bodies: &[(Vec<u32>, Vec<u32>)],
) -> Result<(HashSet<Vec<u32>>, bool), CheckError> {
    let n_atoms = program.atom_count() as u32;
    let strictly_sorted =
        |v: &[u32]| v.windows(2).all(|w| w[0] < w[1]) && v.iter().all(|&a| a < n_atoms);
    let mut body_var: HashMap<(&[u32], &[u32]), u32> = HashMap::new();
    for (i, (pos, neg)) in bodies.iter().enumerate() {
        if !strictly_sorted(pos) || !strictly_sorted(neg) {
            return Err(CheckError::BadBodyDeclaration { index: i });
        }
        body_var
            .entry((pos.as_slice(), neg.as_slice()))
            .or_insert(n_atoms + i as u32);
    }
    let t = |a: u32| lit_code(a, true);
    let f = |a: u32| lit_code(a, false);
    let n = n_atoms as usize;
    let mut expect: HashSet<Vec<u32>> = HashSet::new();
    let mut empty_allowed = false;
    let mut defined = vec![false; n];
    let mut unconditional = vec![false; n];
    let mut supports: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut forward: HashSet<(u32, u32)> = HashSet::new();
    for r in &program.rules {
        let mut pos: Vec<u32> = r.pos.iter().map(|p| p.0).collect();
        pos.sort_unstable();
        pos.dedup();
        let mut neg: Vec<u32> = r.neg.iter().map(|q| q.0).collect();
        neg.sort_unstable();
        neg.dedup();
        match r.head {
            GroundHead::None => {
                let lits: Vec<u32> = pos
                    .iter()
                    .map(|&a| t(a))
                    .chain(neg.iter().map(|&a| f(a)))
                    .collect();
                if lits.is_empty() {
                    empty_allowed = true;
                } else {
                    expect.insert(canon(&lits));
                }
            }
            GroundHead::Atom(h) | GroundHead::Choice(h) => {
                let h = h.0;
                defined[h as usize] = true;
                if pos.is_empty() && neg.is_empty() {
                    unconditional[h as usize] = true;
                    if matches!(r.head, GroundHead::Atom(_)) {
                        expect.insert(vec![f(h)]); // the head is a fact
                    }
                    continue;
                }
                let beta = *body_var
                    .get(&(pos.as_slice(), neg.as_slice()))
                    .ok_or(CheckError::MissingBodyDeclaration)?;
                if matches!(r.head, GroundHead::Atom(_)) {
                    forward.insert((h, beta));
                }
                supports[h as usize].push(f(beta));
            }
        }
    }
    // Body equivalence axioms are definitional for every declared body.
    for (i, (pos, neg)) in bodies.iter().enumerate() {
        let beta = n_atoms + i as u32;
        let mut omega: Vec<u32> = vec![f(beta)];
        omega.extend(pos.iter().map(|&a| t(a)));
        omega.extend(neg.iter().map(|&a| f(a)));
        expect.insert(canon(&omega));
        for &a in pos {
            expect.insert(canon(&[t(beta), f(a)]));
        }
        for &a in neg {
            expect.insert(canon(&[t(beta), t(a)]));
        }
    }
    for (h, beta) in forward {
        expect.insert(canon(&[f(h), t(beta)]));
    }
    for a in 0..n {
        if !defined[a] {
            expect.insert(vec![t(a as u32)]); // undefined atoms are false
        } else if !unconditional[a] && !supports[a].is_empty() {
            let mut s = vec![t(a as u32)];
            s.extend(supports[a].iter().copied());
            expect.insert(canon(&s));
        }
    }
    Ok((expect, empty_allowed))
}

/// The well-founded model by the textbook alternating fixpoint, computed
/// with naive iteration (no worklists, no sharing with `analysis::wfm`).
struct NaiveWfm {
    certain: Vec<bool>,
    possible: Vec<bool>,
}

fn naive_wfm(program: &GroundProgram) -> NaiveWfm {
    let n = program.atom_count();
    let gamma = |certain_mode: bool, opposite: &[bool]| -> Vec<bool> {
        let mut derived = vec![false; n];
        loop {
            let mut changed = false;
            for r in &program.rules {
                let h = match r.head {
                    GroundHead::Atom(h) => h,
                    GroundHead::Choice(h) if !certain_mode => h,
                    _ => continue,
                };
                if derived[h.index()]
                    || r.neg.iter().any(|q| opposite[q.index()])
                    || !r.pos.iter().all(|p| derived[p.index()])
                {
                    continue;
                }
                derived[h.index()] = true;
                changed = true;
            }
            if !changed {
                break;
            }
        }
        derived
    };
    let mut certain = vec![false; n];
    loop {
        let possible = gamma(false, &certain);
        let next = gamma(true, &possible);
        if next == certain {
            return NaiveWfm { certain, possible };
        }
        certain = next;
    }
}

/// Is the cardinality inference entailed by bound counting? Pinning the
/// step's literals must satisfy the constraint body outright and force the
/// held-count interval entirely outside `[lower, upper]`.
fn card_step_entailed(program: &GroundProgram, ci: usize, lits: &[u32]) -> bool {
    let Some(c) = program.cards.get(ci) else {
        return false;
    };
    let mut pin: HashMap<u32, bool> = HashMap::new();
    for &l in lits {
        if let Some(prev) = pin.insert(lit_var(l), lit_positive(l)) {
            if prev != lit_positive(l) {
                return true; // self-contradictory nogood: trivially valid
            }
        }
    }
    let is = |a: AtomId, want: bool| pin.get(&a.0) == Some(&want);
    if !(c.pos.iter().all(|&p| is(p, true)) && c.neg.iter().all(|&q| is(q, false))) {
        return false;
    }
    let mut held_min = 0u32;
    let mut held_max = 0u32;
    for e in &c.elements {
        let guard_true =
            e.guard_pos.iter().all(|&p| is(p, true)) && e.guard_neg.iter().all(|&q| is(q, false));
        let guard_false =
            e.guard_pos.iter().any(|&p| is(p, false)) || e.guard_neg.iter().any(|&q| is(q, true));
        if is(e.atom, true) && guard_true {
            held_min += 1;
        }
        if !is(e.atom, false) && !guard_false {
            held_max += 1;
        }
    }
    held_min > c.upper || held_max < c.lower
}

/// Atoms still possibly derivable under a partial assignment: the least
/// fixpoint over rules whose head is not assigned false, whose positive
/// body is inside the closure, and whose negative body is not assigned
/// true. An atom outside this closure is unfounded.
fn derivability_closure(program: &GroundProgram, val: &[Option<bool>]) -> Vec<bool> {
    let n = program.atom_count();
    let mut inc = vec![false; n];
    loop {
        let mut changed = false;
        for r in &program.rules {
            let h = match r.head {
                GroundHead::Atom(h) | GroundHead::Choice(h) => h,
                GroundHead::None => continue,
            };
            if inc[h.index()]
                || val[h.index()] == Some(false)
                || r.neg.iter().any(|q| val[q.index()] == Some(true))
                || !r.pos.iter().all(|p| inc[p.index()])
            {
                continue;
            }
            inc[h.index()] = true;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    inc
}

/// Recompute the `#minimize` cost vector of a model with the statement
/// semantics: identical `(weight, tuple)` keys count once per priority.
fn recompute_cost(program: &GroundProgram, ids: &HashSet<AtomId>) -> Vec<(i64, i64)> {
    program
        .minimize
        .iter()
        .map(|(prio, lits)| {
            let mut counted: HashSet<(i64, &[Term])> = HashSet::new();
            let mut total = 0i64;
            for l in lits {
                let holds =
                    l.pos.iter().all(|p| ids.contains(p)) && l.neg.iter().all(|q| !ids.contains(q));
                if holds && counted.insert((l.weight, l.tuple.as_slice())) {
                    total += l.weight;
                }
            }
            (*prio, total)
        })
        .collect()
}

/// Counter-based unit propagation over the live nogood set.
///
/// A nogood *fires* when none of its literals is falsified and all but one
/// are satisfied (the last literal's complement is forced) and *conflicts*
/// when every literal is satisfied. Root consequences are kept on a
/// persistent trail; per-step verifications checkpoint and roll back.
struct Replay {
    /// Canonical literal codes per nogood (index = nogood id).
    lits: Vec<Vec<u32>>,
    live: Vec<bool>,
    sat: Vec<u32>,
    fal: Vec<u32>,
    /// Occurrence lists: literal code -> nogood ids containing it.
    occ: Vec<Vec<u32>>,
    val: Vec<Option<bool>>,
    trail: Vec<u32>,
    qhead: usize,
    /// The live set is already conflicting at the root: every further
    /// propagation claim holds vacuously (model audits stay strict).
    root_conflict: bool,
    by_canon: HashMap<Vec<u32>, Vec<u32>>,
    /// Deletions invalidate occurrence lists and counters; rebuilt lazily.
    dirty: bool,
}

impl Replay {
    fn new(n_vars: usize) -> Self {
        Replay {
            lits: Vec::new(),
            live: Vec::new(),
            sat: Vec::new(),
            fal: Vec::new(),
            occ: vec![Vec::new(); 2 * n_vars],
            val: vec![None; n_vars],
            trail: Vec::new(),
            qhead: 0,
            root_conflict: false,
            by_canon: HashMap::new(),
            dirty: false,
        }
    }

    fn checkpoint(&self) -> usize {
        self.trail.len()
    }

    /// Add a nogood (canonical lits) to the live set and propagate any
    /// immediate root consequence.
    fn add(&mut self, canon_lits: &[u32]) {
        let ni = self.lits.len();
        self.by_canon
            .entry(canon_lits.to_vec())
            .or_default()
            .push(ni as u32);
        self.live.push(true);
        self.sat.push(0);
        self.fal.push(0);
        self.lits.push(canon_lits.to_vec());
        if self.dirty {
            return; // structures are rebuilt before the next propagation
        }
        let mut s = 0u32;
        let mut f = 0u32;
        for k in 0..self.lits[ni].len() {
            let c = self.lits[ni][k];
            self.occ[c as usize].push(ni as u32);
            match self.val[lit_var(c) as usize] {
                Some(b) if b == lit_positive(c) => s += 1,
                Some(_) => f += 1,
                None => {}
            }
        }
        self.sat[ni] = s;
        self.fal[ni] = f;
        if self.root_conflict || f > 0 {
            return;
        }
        let len = self.lits[ni].len() as u32;
        if s == len {
            self.root_conflict = true; // includes the empty nogood
        } else if s + 1 == len {
            let c = self.lits[ni]
                .iter()
                .copied()
                .find(|&c| self.val[lit_var(c) as usize].is_none())
                .expect("exactly one literal is unassigned");
            self.val[lit_var(c) as usize] = Some(!lit_positive(c));
            self.trail.push(lit_var(c));
            if !self.propagate() {
                self.root_conflict = true;
            }
        }
    }

    /// Remove one live nogood with the given canonical form.
    fn delete(&mut self, canon_lits: &[u32]) -> bool {
        let Some(list) = self.by_canon.get_mut(canon_lits) else {
            return false;
        };
        let ni = list.pop().expect("by_canon lists are non-empty");
        if list.is_empty() {
            self.by_canon.remove(canon_lits);
        }
        self.live[ni as usize] = false;
        self.dirty = true;
        true
    }

    fn rebuild_if_dirty(&mut self, closure_cache: &mut Option<(Vec<u32>, Vec<bool>)>) {
        if self.dirty {
            // A weaker live set can enlarge the derivability closure, so a
            // cached closure is no longer an over-approximation.
            *closure_cache = None;
            self.rebuild();
        }
    }

    /// Recompute occurrence lists, counters, and the persistent root trail
    /// from the surviving live nogoods.
    fn rebuild(&mut self) {
        self.val.iter_mut().for_each(|v| *v = None);
        self.trail.clear();
        self.qhead = 0;
        self.root_conflict = false;
        let mut occ = vec![Vec::new(); self.occ.len()];
        for (ni, l) in self.lits.iter().enumerate() {
            self.sat[ni] = 0;
            self.fal[ni] = 0;
            if self.live[ni] {
                for &c in l {
                    occ[c as usize].push(ni as u32);
                }
            }
        }
        self.occ = occ;
        for ni in 0..self.lits.len() {
            if !self.live[ni] {
                continue;
            }
            match self.lits[ni].as_slice() {
                [] => self.root_conflict = true,
                [c] => {
                    let var = lit_var(*c) as usize;
                    let want = !lit_positive(*c);
                    match self.val[var] {
                        None => {
                            self.val[var] = Some(want);
                            self.trail.push(var as u32);
                        }
                        Some(b) if b == want => {}
                        Some(_) => self.root_conflict = true,
                    }
                }
                _ => {}
            }
        }
        if !self.root_conflict && !self.propagate() {
            self.root_conflict = true;
        }
        self.dirty = false;
    }

    /// Assert that literal `c` is satisfied; false if the assignment
    /// already falsifies it (an immediate conflict for the caller).
    fn assert_sat(&mut self, c: u32) -> bool {
        let var = lit_var(c) as usize;
        let want = lit_positive(c);
        match self.val[var] {
            None => {
                self.val[var] = Some(want);
                self.trail.push(var as u32);
                true
            }
            Some(b) => b == want,
        }
    }

    /// Does asserting every literal of `lits` as satisfied propagate to a
    /// conflict (reverse unit propagation)? State is restored afterwards.
    fn refutes(&mut self, lits: &[u32]) -> bool {
        if self.root_conflict {
            return true;
        }
        let mark = self.checkpoint();
        let mut conflict = lits.iter().any(|&c| !self.assert_sat(c));
        if !conflict {
            conflict = !self.propagate();
        }
        self.rollback(mark);
        conflict
    }

    /// Propagate pending trail entries to fixpoint; false on conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let v = self.trail[self.qhead];
            self.qhead += 1;
            let b = self.val[v as usize].expect("trail entries are assigned");
            let cs = lit_code(v, b) as usize;
            let cu = lit_code(v, !b) as usize;
            let mut conflict = false;
            let mut fired: Vec<u32> = Vec::new();
            let watchers = std::mem::take(&mut self.occ[cs]);
            for &ni in &watchers {
                let ni = ni as usize;
                self.sat[ni] += 1;
                if self.live[ni] && self.fal[ni] == 0 {
                    let len = self.lits[ni].len() as u32;
                    if self.sat[ni] == len {
                        conflict = true;
                    } else if self.sat[ni] + 1 == len {
                        fired.push(ni as u32);
                    }
                }
            }
            self.occ[cs] = watchers;
            let falsified = std::mem::take(&mut self.occ[cu]);
            for &ni in &falsified {
                self.fal[ni as usize] += 1;
            }
            self.occ[cu] = falsified;
            if conflict {
                return false;
            }
            for ni in fired {
                let ni = ni as usize;
                if !self.live[ni] || self.fal[ni] != 0 {
                    continue;
                }
                let len = self.lits[ni].len() as u32;
                if self.sat[ni] == len {
                    return false;
                }
                if self.sat[ni] + 1 != len {
                    continue;
                }
                let unassigned = self.lits[ni]
                    .iter()
                    .copied()
                    .find(|&c| self.val[lit_var(c) as usize].is_none());
                // `None` means a pending trail entry already covers this
                // nogood; its counters settle when that entry is processed.
                if let Some(c) = unassigned {
                    self.val[lit_var(c) as usize] = Some(!lit_positive(c));
                    self.trail.push(lit_var(c));
                }
            }
        }
        true
    }

    /// Undo trail entries (and their counter updates) down to `mark`.
    fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail is non-empty");
            let idx = self.trail.len();
            let b = self.val[v as usize].take().expect("entry was assigned");
            if idx < self.qhead {
                let cs = lit_code(v, b) as usize;
                let cu = lit_code(v, !b) as usize;
                let watchers = std::mem::take(&mut self.occ[cs]);
                for &ni in &watchers {
                    self.sat[ni as usize] -= 1;
                }
                self.occ[cs] = watchers;
                let falsified = std::mem::take(&mut self.occ[cu]);
                for &ni in &falsified {
                    self.fal[ni as usize] -= 1;
                }
                self.occ[cu] = falsified;
                self.qhead -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;

    fn ground(src: &str) -> GroundProgram {
        Grounder::new().ground(&parse(src).unwrap()).unwrap()
    }

    fn set(program: &GroundProgram, atoms: &[&str]) -> HashSet<AtomId> {
        atoms
            .iter()
            .map(|s| {
                program
                    .atoms()
                    .find(|(_, a)| a.to_string() == *s)
                    .unwrap_or_else(|| panic!("atom {s} not interned"))
                    .0
            })
            .collect()
    }

    #[test]
    fn definite_program_least_model() {
        let g = ground("p. q :- p. r :- q.");
        assert!(is_stable_model(&g, &set(&g, &["p", "q", "r"])));
        assert!(!is_stable_model(&g, &set(&g, &["p", "q"])), "r missing");
        assert!(!is_stable_model(&g, &set(&g, &["p"])), "not closed");
    }

    #[test]
    fn negation_as_failure() {
        let g = ground("{ q }. p :- not q.");
        assert!(
            is_stable_model(&g, &set(&g, &["p"])),
            "q unchosen, p derived"
        );
        assert!(is_stable_model(&g, &set(&g, &["q"])), "q chosen blocks p");
        assert!(!is_stable_model(&g, &set(&g, &["p", "q"])));
        assert!(!is_stable_model(&g, &set(&g, &[])), "p must be derived");
    }

    #[test]
    fn unsupported_atoms_are_rejected() {
        let g = ground("{ a }. b :- a.");
        assert!(is_stable_model(&g, &set(&g, &[])));
        assert!(is_stable_model(&g, &set(&g, &["a", "b"])));
        assert!(
            !is_stable_model(&g, &set(&g, &["b"])),
            "b unsupported without a"
        );
    }

    #[test]
    fn positive_loops_are_unfounded() {
        // Built manually: the grounder would simplify this program away
        // (neither atom is derivable), which is itself correct.
        use crate::ast::Atom;
        use crate::program::GroundRule;
        let mut g = GroundProgram::new();
        let a = g.intern(Atom::prop("a"));
        let b = g.intern(Atom::prop("b"));
        g.rules.push(GroundRule {
            head: GroundHead::Atom(a),
            pos: vec![b],
            neg: vec![],
        });
        g.rules.push(GroundRule {
            head: GroundHead::Atom(b),
            pos: vec![a],
            neg: vec![],
        });
        assert!(is_stable_model(&g, &HashSet::new()));
        assert!(
            !is_stable_model(&g, &[a, b].into_iter().collect()),
            "mutual support is unfounded"
        );
    }

    #[test]
    fn constraints_exclude_models() {
        let g = ground("{ a }. :- a.");
        assert!(is_stable_model(&g, &set(&g, &[])));
        assert!(!is_stable_model(&g, &set(&g, &["a"])));
    }

    #[test]
    fn cardinality_bounds_checked() {
        let g = ground("item(x). item(y). 1 { pick(I) : item(I) } 1.");
        assert!(is_stable_model(
            &g,
            &set(&g, &["item(x)", "item(y)", "pick(x)"])
        ));
        assert!(
            !is_stable_model(&g, &set(&g, &["item(x)", "item(y)"])),
            "lower bound"
        );
        assert!(
            !is_stable_model(&g, &set(&g, &["item(x)", "item(y)", "pick(x)", "pick(y)"])),
            "upper bound"
        );
    }

    #[test]
    fn choice_support_requires_body() {
        let g = ground("{ a } :- t. { t }.");
        assert!(is_stable_model(&g, &set(&g, &[])));
        assert!(is_stable_model(&g, &set(&g, &["t"])));
        assert!(is_stable_model(&g, &set(&g, &["t", "a"])));
        assert!(!is_stable_model(&g, &set(&g, &["a"])), "a needs t");
    }
}

#[cfg(test)]
mod proof_checks {
    use super::*;
    use crate::ground::Grounder;
    use crate::parse;
    use crate::solve::{Lit, SolveOptions, Solver};

    fn ground(src: &str) -> GroundProgram {
        Grounder::new().ground(&parse(src).unwrap()).unwrap()
    }

    fn certify() -> SolveOptions {
        SolveOptions {
            certify: true,
            ..SolveOptions::default()
        }
    }

    /// Run a certified enumeration and return the program with its proof.
    fn solve_proof(src: &str) -> (GroundProgram, ProofLog) {
        let g = ground(src);
        let mut s = Solver::new(&g);
        s.enumerate(&certify()).unwrap();
        let log = s.take_proof().expect("certified call emits a proof");
        drop(s);
        (g, log)
    }

    fn atom(g: &GroundProgram, name: &str) -> AtomId {
        g.atoms()
            .find(|(_, a)| a.to_string() == name)
            .unwrap_or_else(|| panic!("atom {name} not interned"))
            .0
    }

    /// An UNSAT program that needs real search (no contradictory units).
    const XOR_UNSAT: &str = "{ a }. { b }. :- a, b. :- not a, not b. :- a, not b. :- b, not a.";

    #[test]
    fn sat_enumeration_proof_checks() {
        // Tight program, three models.
        let (g, log) = solve_proof("{ a }. { b }. :- a, b.");
        let rep = check_proof(&g, &log).unwrap();
        assert_eq!(rep.models, 3);
        assert_eq!(rep.calls, 1);
        assert_eq!(rep.unsats, 0);
    }

    #[test]
    fn unsat_search_proof_checks() {
        let (g, log) = solve_proof(XOR_UNSAT);
        let rep = check_proof(&g, &log).unwrap();
        assert_eq!(rep.models, 0);
        assert_eq!(rep.unsats, 1);
        assert!(rep.learned > 0, "exhaustion requires learned nogoods");
    }

    #[test]
    fn nontight_proof_checks() {
        // Positive loop: a/b are founded only through c.
        let (g, log) = solve_proof("{ c }. a :- b. b :- a. a :- c.");
        let rep = check_proof(&g, &log).unwrap();
        assert_eq!(rep.models, 2);
    }

    #[test]
    fn cardinality_proof_checks() {
        let (g, log) = solve_proof("item(x). item(y). item(z). 1 { pick(I) : item(I) } 2.");
        let rep = check_proof(&g, &log).unwrap();
        assert_eq!(rep.models, 6);
    }

    #[test]
    fn optimize_proof_checks() {
        let g = ground("{ a }. { b }. :- not a, not b. #minimize { 2 : a; 1 : b }.");
        let mut s = Solver::new(&g);
        let best = s.optimize(&certify()).unwrap().expect("satisfiable");
        assert_eq!(best.cost, vec![(0, 1)]);
        let log = s.take_proof().unwrap();
        let rep = check_proof(&g, &log).unwrap();
        assert!(rep.models >= 1, "every incumbent is audited");
    }

    #[test]
    fn multishot_assumption_proof_checks() {
        let g = ground("{ a }. b :- a. :- a, not b.");
        let a = atom(&g, "a");
        let mut s = Solver::new(&g);
        let r1 = s
            .solve_with_assumptions(&[Lit::pos(a)], &certify())
            .unwrap();
        assert_eq!(r1.models.len(), 1);
        let r2 = s
            .solve_with_assumptions(&[Lit::pos(a), Lit::neg(a)], &certify())
            .unwrap();
        assert!(r2.models.is_empty() && r2.exhausted);
        let r3 = s
            .solve_with_assumptions(&[Lit::neg(a)], &certify())
            .unwrap();
        assert_eq!(r3.models.len(), 1);
        let log = s.take_proof().unwrap();
        let rep = check_proof(&g, &log).unwrap();
        assert_eq!(rep.calls, 3);
        assert_eq!(rep.models, 2);
        assert_eq!(rep.unsats, 1);
    }

    #[test]
    fn serialized_roundtrip_still_checks() {
        let (g, log) = solve_proof(XOR_UNSAT);
        let text = log
            .to_text(Some(XOR_UNSAT), crate::proof::DEFAULT_TEXT_CAP)
            .unwrap();
        let (src, reread) = ProofLog::from_text(&text).unwrap();
        assert_eq!(src.as_deref(), Some(XOR_UNSAT));
        assert_eq!(reread, log);
        check_proof(&g, &reread).unwrap();
    }

    // ----- mutation suite: every corruption class must be rejected -----

    /// Corruption class 1: flip a literal (axiom no longer matches the
    /// completion translation; a flipped well-founded fact contradicts the
    /// fixpoint).
    #[test]
    fn mutation_flipped_literal_is_rejected() {
        let (g, log) = solve_proof("{ a }. b :- a. :- a, not b.");
        let (idx, lits) = log
            .steps
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                ProofStep::Axiom(l) if l.len() >= 2 => Some((i, l.clone())),
                _ => None,
            })
            .expect("a multi-literal axiom exists");
        let mut bad = log.clone();
        let mut flipped = lits;
        flipped[0] ^= 1;
        bad.steps[idx] = ProofStep::Axiom(flipped);
        assert_eq!(
            check_proof(&g, &bad),
            Err(CheckError::UnknownAxiom { step: idx })
        );
    }

    #[test]
    fn mutation_flipped_wfm_fact_is_rejected() {
        let (g, log) = solve_proof("f. g :- f. { a }.");
        let (idx, c) = log
            .steps
            .iter()
            .enumerate()
            .find_map(|(i, s)| match s {
                ProofStep::Wfm(c) => Some((i, *c)),
                _ => None,
            })
            .expect("facts seed well-founded steps");
        let mut bad = log.clone();
        bad.steps[idx] = ProofStep::Wfm(c ^ 1);
        assert_eq!(
            check_proof(&g, &bad),
            Err(CheckError::WfmMismatch { step: idx })
        );
    }

    /// Corruption class 2: drop an antecedent — without the last learned
    /// nogood the unsat verdict is no longer derivable by propagation.
    #[test]
    fn mutation_dropped_antecedent_is_rejected() {
        let (g, log) = solve_proof(XOR_UNSAT);
        let last_learned = log
            .steps
            .iter()
            .rposition(|s| matches!(s, ProofStep::Learned(_)))
            .expect("search learns before exhausting");
        let mut bad = log.clone();
        bad.steps.remove(last_learned);
        assert!(matches!(
            check_proof(&g, &bad),
            Err(CheckError::UnsatNotDerivable { .. }) | Err(CheckError::RupFailed { .. })
        ));
    }

    /// Corruption class 3: delete a used nogood — removing a unit axiom
    /// the terminal conflict rests on must surface when the verdict is
    /// re-derived (and deleting something never added is itself an error).
    #[test]
    fn mutation_deleting_used_nogood_is_rejected() {
        let (g, log) = solve_proof("{ a }. :- a. :- not a.");
        check_proof(&g, &log).unwrap();
        let unsat_at = log
            .steps
            .iter()
            .position(|s| matches!(s, ProofStep::Unsat))
            .expect("contradictory units are unsat");
        let a = atom(&g, "a").0;
        let mut bad = log.clone();
        bad.steps
            .insert(unsat_at, ProofStep::Delete(vec![lit_code(a, false)]));
        assert!(matches!(
            check_proof(&g, &bad),
            Err(CheckError::UnsatNotDerivable { .. })
        ));
        let mut unknown = log.clone();
        unknown.steps.insert(
            unsat_at,
            ProofStep::Delete(vec![lit_code(a, true), lit_code(a, false)]),
        );
        assert_eq!(
            check_proof(&g, &unknown),
            Err(CheckError::DeleteUnknown { step: unsat_at })
        );
    }

    /// Corruption class 4: lower a `#minimize` cost claim.
    #[test]
    fn mutation_lowered_cost_is_rejected() {
        let g = ground("{ a }. :- not a. #minimize { 3 : a }.");
        let mut s = Solver::new(&g);
        let best = s.optimize(&certify()).unwrap().expect("satisfiable");
        assert_eq!(best.cost, vec![(0, 3)]);
        let log = s.take_proof().unwrap();
        check_proof(&g, &log).unwrap();
        let idx = log
            .steps
            .iter()
            .position(|s| matches!(s, ProofStep::Model { .. }))
            .unwrap();
        let mut bad = log.clone();
        if let ProofStep::Model { cost, .. } = &mut bad.steps[idx] {
            cost[0].1 -= 1;
        }
        assert!(matches!(
            check_proof(&g, &bad),
            Err(CheckError::CostMismatch { step, .. }) if step == idx
        ));
    }

    /// Corruption class 5: claim a model that is not stable.
    #[test]
    fn mutation_unstable_model_is_rejected() {
        let (g, log) = solve_proof("{ a }. b :- a.");
        let idx = log
            .steps
            .iter()
            .position(|s| matches!(s, ProofStep::Model { .. }))
            .unwrap();
        let b = atom(&g, "b").0;
        let mut bad = log.clone();
        if let ProofStep::Model { atoms, .. } = &mut bad.steps[idx] {
            // b without a is unsupported in every model.
            if atoms.contains(&b) {
                atoms.retain(|&x| x != b);
            } else {
                atoms.push(b);
            }
        }
        assert!(matches!(
            check_proof(&g, &bad),
            Err(CheckError::ModelNotStable { step }) if step == idx
        ));
    }

    /// Truncated logs certify nothing.
    #[test]
    fn truncated_proof_is_rejected() {
        let (g, log) = solve_proof("{ a }.");
        let mut bad = log;
        bad.truncated = true;
        assert_eq!(check_proof(&g, &bad), Err(CheckError::Truncated));
    }
}
