//! Error type for the ASP engine.

use std::fmt;

/// Errors produced by parsing, grounding, or solving a logic program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AspError {
    /// Syntax error with a human-readable message and source position.
    Parse(String),
    /// A rule is unsafe: `var` does not occur in any positive body literal.
    UnsafeRule {
        /// The offending variable name.
        var: String,
        /// Display form of the rule.
        rule: String,
    },
    /// Arithmetic on non-integer terms during grounding.
    BadArithmetic(String),
    /// Grounding exceeded the configured instance budget.
    GroundingBudget {
        /// The configured maximum number of ground rule instances.
        limit: usize,
    },
    /// Solving exceeded the configured search budget: the sum of branching
    /// decisions and conflicts passed `max_decisions`. Carries the partial
    /// statistics at the moment of abort.
    SolveBudget {
        /// The configured budget (decisions + conflicts).
        limit: u64,
        /// Decisions made before the abort.
        decisions: u64,
        /// Conflicts hit before the abort.
        conflicts: u64,
    },
    /// A serialized proof exceeded the configured byte cap.
    ProofTooLarge {
        /// The configured maximum serialized size in bytes.
        limit: usize,
    },
    /// The program is inconsistent where a model was required.
    Unsatisfiable,
    /// An internal invariant failed (a bug; reported rather than panicking).
    Internal(String),
}

impl fmt::Display for AspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AspError::Parse(msg) => write!(f, "parse error: {msg}"),
            AspError::UnsafeRule { var, rule } => {
                write!(f, "unsafe rule: variable `{var}` unbound in `{rule}`")
            }
            AspError::BadArithmetic(t) => write!(f, "arithmetic on non-integer term `{t}`"),
            AspError::GroundingBudget { limit } => {
                write!(f, "grounding exceeded the budget of {limit} rule instances")
            }
            AspError::SolveBudget {
                limit,
                decisions,
                conflicts,
            } => {
                write!(
                    f,
                    "solving exceeded the budget of {limit} decisions+conflicts \
                     ({decisions} decisions, {conflicts} conflicts)"
                )
            }
            AspError::ProofTooLarge { limit } => {
                write!(f, "serialized proof exceeds the cap of {limit} bytes")
            }
            AspError::Unsatisfiable => write!(f, "program has no answer set"),
            AspError::Internal(msg) => write!(f, "internal solver error: {msg}"),
        }
    }
}

impl std::error::Error for AspError {}
