//! Differential testing: certified solving vs plain solving.
//!
//! Proof logging must be observationally free — switching `certify` on
//! may not change a single verdict, model, or optimal cost — and every
//! certificate the engine emits must survive the independent checker
//! ([`check_proof`]), which shares no solver code. The program family is
//! the search-heavy generator of `cdcl_differential.rs`: bounded
//! cardinality choices, negation-heavy rules, constraints, and
//! `#minimize` objectives; the assumption-stream property additionally
//! exercises multi-shot certificates with learned-nogood retention
//! across calls (contradictory pins included).

use proptest::prelude::*;

use cpsrisk_asp::ast::Atom;
use cpsrisk_asp::{check_proof, GroundProgram, Grounder, Lit, Program, SolveOptions, Solver};

/// A random search-heavy program over atoms a0..a{n-1} — the same family
/// the CDCL differential suite stresses the engine with.
fn arb_search_program(n_atoms: usize) -> impl Strategy<Value = String> {
    let atom = move || (0..n_atoms).prop_map(|i| format!("a{i}"));
    let body = move |max: usize| {
        prop::collection::vec((atom(), any::<bool>()), 1..max).prop_map(|lits| {
            lits.into_iter()
                .map(|(a, neg)| if neg { format!("not {a}") } else { a })
                .collect::<Vec<_>>()
                .join(", ")
        })
    };
    let bounded_choice = (prop::collection::vec(atom(), 2..5), 0usize..3, 0usize..3).prop_map(
        |(mut atoms, lo, extra)| {
            atoms.sort();
            atoms.dedup();
            let lo = lo.min(atoms.len());
            let hi = (lo + extra).min(atoms.len());
            format!("{lo} {{ {} }} {hi}.", atoms.join("; "))
        },
    );
    let rule = prop_oneof![
        atom().prop_map(|h| format!("{h}.")),
        (atom(), body(4)).prop_map(|(h, b)| format!("{h} :- {b}.")),
        body(3).prop_map(|b| format!(":- {b}.")),
        bounded_choice.clone(),
        bounded_choice,
        prop::collection::vec(atom(), 1..4)
            .prop_map(|atoms| format!("{{ {} }}.", atoms.join("; "))),
    ];
    let minimize = prop::collection::vec((atom(), 1i64..5), 0..3).prop_map(|elems| {
        if elems.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = elems
                .into_iter()
                .map(|(a, w)| format!("{w},{a} : {a}"))
                .collect();
            format!("#minimize {{ {} }}.", parts.join("; "))
        }
    });
    (prop::collection::vec(rule, 2..10), minimize)
        .prop_map(|(rules, min)| format!("{}\n{min}", rules.join("\n")))
}

fn ground(src: &str) -> GroundProgram {
    let program: Program = src.parse().expect("generated programs parse");
    Grounder::new()
        .ground(&program)
        .expect("generated programs ground")
}

/// Canonical model set: sorted renderings plus the exhausted flag.
fn render(result: &cpsrisk_asp::SolveResult) -> (Vec<String>, bool) {
    let mut models: Vec<String> = result
        .models
        .iter()
        .map(|m| {
            m.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    models.sort();
    (models, result.exhausted)
}

fn certify_opts() -> SolveOptions {
    SolveOptions {
        certify: true,
        ..SolveOptions::default()
    }
}

/// A stream of assumption sets (contradictory pins included).
fn arb_assumption_sets(n_atoms: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(
        prop::collection::vec((0..n_atoms, any::<bool>()), 0..4),
        1..6,
    )
}

fn lits(g: &GroundProgram, set: &[(usize, bool)]) -> Vec<Lit> {
    set.iter()
        .filter_map(|&(i, positive)| {
            g.lookup(&Atom::prop(format!("a{i}")))
                .map(|atom| Lit { atom, positive })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Certified enumeration returns exactly the uncertified model set
    /// and exhausted flag, and the emitted certificate passes the
    /// independent checker.
    #[test]
    fn certified_enumeration_matches_uncertified_and_checks(
        src in arb_search_program(7),
    ) {
        let g = ground(&src);
        let plain = Solver::new(&g)
            .enumerate(&SolveOptions::default())
            .expect("within budget");
        let mut solver = Solver::new(&g);
        let certified = solver.enumerate(&certify_opts()).expect("within budget");
        prop_assert_eq!(render(&certified), render(&plain), "program:\n{}", src);
        let log = solver.take_proof().expect("certified run emits a proof");
        if let Err(e) = check_proof(&g, &log) {
            prop_assert!(false, "certificate rejected: {e}\nprogram:\n{src}");
        }
    }

    /// Certified branch-and-bound finds the uncertified optimum (or the
    /// same unsatisfiability), and the certificate — incumbent models
    /// with recomputed costs included — passes the checker.
    #[test]
    fn certified_optimizer_matches_uncertified_and_checks(
        src in arb_search_program(6),
    ) {
        let g = ground(&src);
        let plain = Solver::new(&g)
            .optimize(&SolveOptions::default())
            .expect("within budget");
        let mut solver = Solver::new(&g);
        let certified = solver.optimize(&certify_opts()).expect("within budget");
        match (&certified, &plain) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.cost, &b.cost, "optimal cost, program:\n{}", src);
            }
            (None, None) => {}
            _ => prop_assert!(
                false,
                "certified and plain optimizer disagree on satisfiability:\n{src}"
            ),
        }
        let log = solver.take_proof().expect("certified run emits a proof");
        if let Err(e) = check_proof(&g, &log) {
            prop_assert!(false, "certificate rejected: {e}\nprogram:\n{src}");
        }
    }

    /// One certified solver answering a whole assumption stream — learned
    /// nogoods retained across calls, contradictory pins included — must
    /// match a fresh uncertified solver on every query, and the single
    /// accumulated multi-shot certificate must pass the checker with one
    /// `call` section per query.
    #[test]
    fn certified_assumption_streams_with_retention_check(
        src in arb_search_program(6),
        sets in arb_assumption_sets(6),
    ) {
        let g = ground(&src);
        let mut certified = Solver::new(&g);
        for (k, set) in sets.iter().enumerate() {
            let assumptions = lits(&g, set);
            let got = certified
                .solve_with_assumptions(&assumptions, &certify_opts())
                .expect("within budget");
            let want = Solver::new(&g)
                .solve_with_assumptions(&assumptions, &SolveOptions::default())
                .expect("within budget");
            prop_assert_eq!(
                render(&got), render(&want),
                "query {}, program:\n{}", k, src
            );
        }
        let log = certified.take_proof().expect("certified stream emits a proof");
        let report = match check_proof(&g, &log) {
            Ok(report) => report,
            Err(e) => return Err(TestCaseError::fail(
                format!("certificate rejected: {e}\nprogram:\n{src}"),
            )),
        };
        prop_assert_eq!(report.calls, sets.len(), "one call section per query");
    }
}
