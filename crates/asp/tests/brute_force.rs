//! Brute-force cross-validation of the stable-model solver.
//!
//! For randomly generated ground-ish programs over a small atom vocabulary,
//! the solver's enumeration must equal the reference enumeration that tests
//! **every subset** of the Herbrand base with the independent
//! reduct-based checker. This closes the loop: the checker is validated by
//! inspection against the textbook definition, the solver is validated
//! against the checker on the full space.

use std::collections::HashSet;

use proptest::prelude::*;

use cpsrisk_asp::check::is_stable_model;
use cpsrisk_asp::program::AtomId;
use cpsrisk_asp::{Grounder, Program, SolveOptions, Solver};

/// A random program over atoms a0..a{n-1}: facts, normal rules with up to
/// two positive and two negative body literals, constraints, and choices.
fn arb_program(n_atoms: usize) -> impl Strategy<Value = String> {
    let atom = move || (0..n_atoms).prop_map(|i| format!("a{i}"));
    let rule = prop_oneof![
        // Fact.
        atom().prop_map(|h| format!("{h}.")),
        // Normal rule.
        (atom(), prop::collection::vec((atom(), any::<bool>()), 1..3)).prop_map(|(h, body)| {
            let lits: Vec<String> = body
                .into_iter()
                .map(|(a, neg)| if neg { format!("not {a}") } else { a })
                .collect();
            format!("{h} :- {}.", lits.join(", "))
        }),
        // Constraint.
        prop::collection::vec((atom(), any::<bool>()), 1..3).prop_map(|body| {
            let lits: Vec<String> = body
                .into_iter()
                .map(|(a, neg)| if neg { format!("not {a}") } else { a })
                .collect();
            format!(":- {}.", lits.join(", "))
        }),
        // Choice over a couple of atoms.
        prop::collection::vec(atom(), 1..3)
            .prop_map(|atoms| format!("{{ {} }}.", atoms.join("; "))),
    ];
    prop::collection::vec(rule, 1..8).prop_map(|rules| rules.join("\n"))
}

fn reference_models(src: &str) -> HashSet<Vec<String>> {
    let program: Program = src.parse().expect("generated programs parse");
    let ground = Grounder::new()
        .ground(&program)
        .expect("generated programs ground");
    let n = ground.atom_count();
    let mut out = HashSet::new();
    for mask in 0u32..(1 << n) {
        let candidate: HashSet<AtomId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| AtomId(i as u32))
            .collect();
        if is_stable_model(&ground, &candidate) {
            let mut atoms: Vec<String> = candidate
                .iter()
                .map(|&id| ground.atom(id).to_string())
                .collect();
            atoms.sort();
            out.insert(atoms);
        }
    }
    out
}

fn solver_models(src: &str) -> HashSet<Vec<String>> {
    let program: Program = src.parse().expect("generated programs parse");
    let ground = Grounder::new()
        .ground(&program)
        .expect("generated programs ground");
    let mut solver = Solver::new(&ground);
    let result = solver.enumerate(&SolveOptions::default()).expect("solves");
    assert!(result.exhausted);
    result
        .models
        .into_iter()
        .map(|m| {
            let mut atoms: Vec<String> = m.atoms.iter().map(ToString::to_string).collect();
            atoms.sort();
            atoms
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_equals_brute_force_enumeration(src in arb_program(5)) {
        let expected = reference_models(&src);
        let got = solver_models(&src);
        prop_assert_eq!(got, expected, "program:\n{}", src);
    }
}

#[test]
fn known_tricky_programs() {
    // Hand-picked regressions exercising loops through negation and
    // choice/constraint interaction.
    let cases = [
        "a :- not b. b :- not a. :- a.",
        "{ a }. b :- a. :- b, not a.",
        "a :- b. b :- a. { c }. a :- c.",
        "a :- not a.",
        "{ a; b }. :- a, b. c :- not a, not b.",
        "a. b :- a, not c. c :- a, not b.",
    ];
    for src in cases {
        assert_eq!(solver_models(src), reference_models(src), "program: {src}");
    }
}
