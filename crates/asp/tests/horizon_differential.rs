//! Differential tests for incremental horizon extension.
//!
//! A [`GroundSession`] grown one time slice at a time must be
//! indistinguishable — models, verdict atoms, optimal costs — from a
//! from-scratch grounding of the accumulated program at every horizon.
//! The program family is a timed chain in the shape the temporal unroller
//! produces: per-slice choices, a frontier atom `ok(h)` deferred as a bare
//! choice rule `{ ok(h) }.` that gets *revoked* and redefined on every
//! extension, variable rules whose instances must be re-derived from the
//! delta windows, and a `#minimize` over the choices for cost
//! differentials. The frontier is pinned by assumptions exactly as the
//! temporal layer pins it.

use std::collections::BTreeSet;

use cpsrisk_asp::{
    parse, Atom, GroundProgram, GroundSession, Grounder, Lit, SolveOptions, Solver, Term,
};
use proptest::prelude::*;

/// Base program: slice 0 plus the variable machinery covering all future
/// slices, with the frontier deferred at horizon 1.
fn base_src(consts: usize, forced: &[bool]) -> String {
    let mut s = String::new();
    for c in 0..consts {
        s.push_str(&format!("cand(c{c}). "));
    }
    s.push_str("step(0).\n");
    s.push_str("{ go(C,T) } :- cand(C), step(T).\n");
    s.push_str("any(T) :- go(C,T).\n");
    s.push_str(":- step(T), not any(T).\n");
    s.push_str("blocked(C,T) :- cand(C), step(T), not go(C,T).\n");
    s.push_str("reach(C,U) :- go(C,T), U = T + 1, step(U).\n");
    s.push_str("ok(T) :- go(c0,T).\n");
    s.push_str("ok(T) :- any(T), U = T + 1, ok(U).\n");
    s.push_str("win :- ok(0).\n");
    s.push_str("#minimize { 1,C,T : go(C,T) }.\n");
    if forced.first().copied().unwrap_or(false) {
        s.push_str("go(c0,0).\n");
    }
    s.push_str("{ ok(1) }.\n");
    s
}

/// Delta extending the horizon from `h` to `h + 1`: one new `step` fact
/// and the re-deferred frontier. The caller revokes `ok(h)`.
fn delta_src(h: usize, forced: &[bool]) -> String {
    let mut s = format!("step({h}).\n{{ ok({}) }}.\n", h + 1);
    if forced.get(h).copied().unwrap_or(false) {
        s.push_str(&format!("go(c0,{h}).\n"));
    }
    s
}

/// The accumulated program at horizon `h`, grounded from scratch.
fn scratch_src(consts: usize, h: usize, forced: &[bool]) -> String {
    let mut s = base_src(consts, forced);
    // Strip the horizon-1 defer; re-add steps and the defer at `h`.
    s.truncate(s.len() - "{ ok(1) }.\n".len());
    for t in 1..h {
        s.push_str(&format!("step({t}).\n"));
        if forced.get(t).copied().unwrap_or(false) {
            s.push_str(&format!("go(c0,{t}).\n"));
        }
    }
    s.push_str(&format!("{{ ok({h}) }}.\n"));
    s
}

fn frontier(h: usize) -> Atom {
    Atom::new("ok", vec![Term::Int(h as i64)])
}

fn go_atom(c: usize, t: usize) -> Atom {
    Atom::new("go", vec![Term::sym(format!("c{c}")), Term::Int(t as i64)])
}

/// Pin the frontier and, when `determinize` carries the candidate count,
/// every `go(c,t)` for `c > 0` to false so enumeration stays linear in
/// the horizon.
fn pins(g: &GroundProgram, h: usize, pin_true: bool, determinize: Option<usize>) -> Vec<Lit> {
    let id = g
        .lookup(&frontier(h))
        .unwrap_or_else(|| panic!("frontier ok({h}) not ground"));
    let mut v = vec![if pin_true { Lit::pos(id) } else { Lit::neg(id) }];
    if let Some(consts) = determinize {
        for c in 1..consts {
            for t in 0..h {
                if let Some(id) = g.lookup(&go_atom(c, t)) {
                    v.push(Lit::neg(id));
                }
            }
        }
    }
    v
}

/// Enumerate all models under `assumptions` as a canonical set of
/// true-atom sets.
fn model_sets(g: &GroundProgram, assumptions: &[Lit]) -> BTreeSet<BTreeSet<String>> {
    let mut solver = Solver::new(g);
    let res = solver
        .solve_with_assumptions(assumptions, &SolveOptions::default())
        .expect("solve");
    assert!(res.exhausted, "enumeration must exhaust the search space");
    res.models
        .iter()
        .map(|m| m.atoms.iter().map(ToString::to_string).collect())
        .collect()
}

fn optimal_cost(g: &GroundProgram, assumptions: &[Lit]) -> Option<Vec<(i64, i64)>> {
    let mut solver = Solver::new(g);
    solver
        .optimize_with_assumptions(assumptions, &SolveOptions::default())
        .expect("optimize")
        .map(|m| m.cost)
}

/// Grow a session from horizon 1 to `h_max`, asserting model, verdict and
/// cost equality against from-scratch grounding at every horizon.
/// `enumerate` compares full (un-determinized) model sets; optimal costs
/// are compared up to `cost_cap` (optimality proofs enumerate, so the
/// exponential family must stay small). Returns per-extension atom growth.
fn check_sweep(
    consts: usize,
    h_max: usize,
    forced: &[bool],
    enumerate: bool,
    cost_cap: usize,
) -> Vec<usize> {
    let grounder = Grounder::new();
    let base = parse(&base_src(consts, forced)).expect("parse base");
    let mut session = grounder.session(&base).expect("session");
    let mut growth = Vec::new();
    for h in 2..=h_max {
        let delta = parse(&delta_src(h - 1, forced)).expect("parse delta");
        let stats = session.extend(&delta, &[frontier(h - 1)]).expect("extend");
        assert!(!stats.dirty, "slice deltas must stay clean at h={h}");
        assert_eq!(stats.revoked.len(), 1, "one frontier revoked at h={h}");
        growth.push(stats.new_atoms);

        let scratch = parse(&scratch_src(consts, h, forced)).expect("parse scratch");
        let ground = grounder.ground(&scratch).expect("ground scratch");
        for pin_true in [false, true] {
            let det = if enumerate { None } else { Some(consts) };
            let sp = pins(session.program(), h, pin_true, det);
            let gp = pins(&ground, h, pin_true, det);
            let sm = model_sets(session.program(), &sp);
            let gm = model_sets(&ground, &gp);
            assert_eq!(sm, gm, "model sets diverge at h={h} pin={pin_true}");
            // The verdict atom must agree in every model.
            let verdicts: BTreeSet<bool> = sm.iter().map(|m| m.contains("win")).collect();
            let scratch_verdicts: BTreeSet<bool> = gm.iter().map(|m| m.contains("win")).collect();
            assert_eq!(verdicts, scratch_verdicts, "verdicts at h={h}");
            if h <= cost_cap {
                assert_eq!(
                    optimal_cost(session.program(), &sp),
                    optimal_cost(&ground, &gp),
                    "optimal costs diverge at h={h} pin={pin_true}"
                );
            }
        }
    }
    growth
}

/// Full model enumeration at small horizons: every stable model of the
/// extended session matches from-scratch grounding, under both frontier
/// pins.
#[test]
fn session_models_match_scratch_small() {
    check_sweep(2, 5, &[], true, 5);
}

/// Deep sweep to h = 16 with a single candidate: model sets, verdicts and
/// costs match at every horizon, and per-slice atom growth is bounded by a
/// constant (slice-delta grounding, not re-grounding).
#[test]
fn session_models_match_scratch_deep() {
    let growth = check_sweep(1, 16, &[], true, 16);
    let cap = growth[0].max(growth[1]) + 2;
    for (i, g) in growth.iter().enumerate() {
        assert!(
            *g <= cap,
            "slice {i} ground {g} atoms, expected <= {cap}: growth must not scale with h"
        );
    }
}

/// Optimal costs under branch-and-bound match from-scratch at every
/// horizon with a real (two-candidate) search space.
#[test]
fn session_costs_match_scratch() {
    check_sweep(2, 8, &[], false, 8);
}

/// UNSAT assumption query whose refutation produces learned nogoods over
/// surviving (`go`) atoms only — transferable across any extension.
fn mutex_query(g: &GroundProgram, consts: usize) -> Vec<Lit> {
    (0..consts)
        .map(|c| Lit::neg(g.lookup(&go_atom(c, 0)).expect("go atom")))
        .collect()
}

/// Exporting learned nogoods and re-importing them into a fresh solver on
/// the *same* program must keep every nogood (nothing is revoked).
#[test]
fn export_import_roundtrip_on_unchanged_program() {
    let base = parse(&base_src(2, &[])).expect("parse");
    let g = Grounder::new().ground(&base).expect("ground");
    let mut solver = Solver::new(&g);
    let res = solver
        .solve_with_assumptions(&mutex_query(&g, 2), &SolveOptions::default())
        .expect("solve");
    assert!(res.models.is_empty(), "mutex query must be UNSAT");
    let state = solver.export_learned();
    assert!(!state.is_empty(), "refutation must learn nogoods");
    let mut fresh = Solver::new(&g);
    let imported = fresh.import_learned(&state, &[]);
    assert_eq!(imported, state.len(), "nothing revoked, all must survive");
    // The warm solver still answers exactly like a cold one.
    let sp = pins(&g, 1, false, None);
    assert_eq!(model_sets(&g, &sp), {
        let res = fresh
            .solve_with_assumptions(&sp, &SolveOptions::default())
            .expect("solve");
        res.models
            .iter()
            .map(|m| m.atoms.iter().map(ToString::to_string).collect())
            .collect()
    });
}

/// A *stale* [`cpsrisk_asp::LearnedState`] — exported before an extension
/// that revokes the frontier — must shed every nogood touching revoked
/// structure on import and leave the warm solver's answers identical to
/// a cold solver's. In debug builds the validity screen inside
/// `import_learned` audits every translated literal (range, revocation,
/// fingerprint dedup) along the way, so this test also exercises the
/// screen on genuinely stale input. A proof-logging solver must refuse
/// the import outright: foreign nogoods carry no RUP justification in
/// its certificate.
#[test]
fn stale_state_import_across_extend_is_screened() {
    let consts = 2;
    let grounder = Grounder::new();
    let base = parse(&base_src(consts, &[])).expect("parse base");
    let mut session = grounder.session(&base).expect("session");

    // Learn on the horizon-1 program: the UNSAT mutex query drives
    // conflict learning over surviving `go` atoms, and a frontier-pinned
    // enumeration may additionally learn nogoods mentioning `ok(1)` —
    // exactly the literals the extension is about to revoke.
    let opts = SolveOptions::default();
    let stale = {
        let g = session.program();
        let mut solver = Solver::new(g);
        let unsat = solver
            .solve_with_assumptions(&mutex_query(g, consts), &opts)
            .expect("mutex solve");
        assert!(unsat.models.is_empty(), "mutex query must be UNSAT");
        solver
            .solve_with_assumptions(&pins(g, 1, true, None), &opts)
            .expect("pinned solve");
        solver.export_learned()
    };
    assert!(!stale.is_empty(), "refutation must learn nogoods");

    let delta = parse(&delta_src(1, &[])).expect("parse delta");
    let stats = session.extend(&delta, &[frontier(1)]).expect("extend");
    assert_eq!(stats.revoked.len(), 1, "the frontier is revoked");

    let g = session.program();
    let mut warm = Solver::new(g);
    let imported = warm.import_learned(&stale, &stats.revoked);
    assert!(imported <= stale.len(), "import never invents nogoods");
    assert!(
        imported > 0,
        "revocation-free nogoods from the mutex refutation must survive"
    );

    // The warm solver answers exactly like a cold one at the new horizon.
    let mut fresh = Solver::new(g);
    for pin_true in [false, true] {
        let a = pins(g, 2, pin_true, None);
        let canon = |r: &cpsrisk_asp::SolveResult| -> BTreeSet<BTreeSet<String>> {
            r.models
                .iter()
                .map(|m| m.atoms.iter().map(ToString::to_string).collect())
                .collect()
        };
        let wm = warm.solve_with_assumptions(&a, &opts).expect("warm solve");
        let fm = fresh
            .solve_with_assumptions(&a, &opts)
            .expect("fresh solve");
        assert_eq!(canon(&wm), canon(&fm), "stale import changed the answer");
    }

    // Certify interaction: once a proof log is active, imports are
    // refused wholesale.
    let mut certifying = Solver::new(g);
    let copts = SolveOptions {
        certify: true,
        ..SolveOptions::default()
    };
    certifying
        .solve_with_assumptions(&pins(g, 2, false, None), &copts)
        .expect("certified solve");
    assert_eq!(
        certifying.import_learned(&stale, &stats.revoked),
        0,
        "a proof-logging solver must refuse foreign nogoods"
    );
}

/// Learned nogoods exported before an extension and imported after it must
/// not change the answer: models and optimal costs agree with a fresh
/// solver at every horizon, under an alternating assumption stream.
#[test]
fn nogood_retention_is_sound_under_assumption_streams() {
    let consts = 2;
    let grounder = Grounder::new();
    let base = parse(&base_src(consts, &[])).expect("parse base");
    let mut session = grounder.session(&base).expect("session");
    let mut carried: Option<cpsrisk_asp::LearnedState> = None;
    let mut total_imported = 0usize;
    for h in 2..=16 {
        let delta = parse(&delta_src(h - 1, &[])).expect("parse delta");
        let stats = session.extend(&delta, &[frontier(h - 1)]).expect("extend");

        let g = session.program();
        let mut warm = Solver::new(g);
        if let Some(state) = carried.as_ref().filter(|_| !stats.dirty) {
            // Only the *latest* extension redefines atoms; earlier
            // frontiers were already settled when `carried` was exported.
            total_imported += warm.import_learned(state, &stats.revoked);
        }
        let mut fresh = Solver::new(g);

        // Assumption stream: an UNSAT mutex query (drives conflicts and
        // learning over surviving atoms), then both frontier pins,
        // determinized, compared model-for-model against the cold solver.
        let opts = SolveOptions::default();
        let unsat = warm
            .solve_with_assumptions(&mutex_query(g, consts), &opts)
            .expect("mutex solve");
        assert!(
            unsat.models.is_empty(),
            "mutex query must be UNSAT at h={h}"
        );
        for pin_true in [h % 2 == 0, h % 2 != 0] {
            let a = pins(g, h, pin_true, Some(consts));
            let wm = warm.solve_with_assumptions(&a, &opts).expect("warm solve");
            let fm = fresh
                .solve_with_assumptions(&a, &opts)
                .expect("fresh solve");
            let canon = |r: &cpsrisk_asp::SolveResult| -> BTreeSet<BTreeSet<String>> {
                r.models
                    .iter()
                    .map(|m| m.atoms.iter().map(ToString::to_string).collect())
                    .collect()
            };
            assert_eq!(canon(&wm), canon(&fm), "models diverge at h={h}");
        }
        if h <= 8 {
            let a = pins(g, h, false, None);
            let wc = warm
                .optimize_with_assumptions(&a, &opts)
                .expect("warm optimize")
                .map(|m| m.cost);
            let fc = fresh
                .optimize_with_assumptions(&a, &opts)
                .expect("fresh optimize")
                .map(|m| m.cost);
            assert_eq!(wc, fc, "optimal costs diverge at h={h}");
        }
        carried = Some(warm.export_learned());
    }
    assert!(
        total_imported > 0,
        "no nogoods survived any extension: the transfer path never ran"
    );
}

/// Sessions refuse cardinality-bounded choice rules, whose completion
/// nogoods cannot be patched incrementally.
#[test]
fn bounded_choice_rules_are_rejected() {
    let base = parse("p(1). p(2). 1 { q(X) : p(X) } 1.").expect("parse");
    let grounder = Grounder::new();
    let mut session = grounder.session(&base).expect("session");
    let delta = parse("p(3).").expect("parse");
    assert!(session.extend(&delta, &[]).is_err());

    let base = parse("p(1).").expect("parse");
    let mut session = grounder.session(&base).expect("session");
    let delta = parse("1 { q(X) : p(X) } 1.").expect("parse");
    assert!(session.extend(&delta, &[]).is_err());
}

/// Revoking an atom that was never deferred as a bare choice is an error,
/// not a silent no-op.
#[test]
fn revoking_a_defined_atom_is_rejected() {
    let base = parse("p(1). q(X) :- p(X).").expect("parse");
    let grounder = Grounder::new();
    let mut session = grounder.session(&base).expect("session");
    let delta = parse("p(2).").expect("parse");
    let bad = Atom::new("q", vec![Term::Int(1)]);
    assert!(session.extend(&delta, &[bad]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized chains: candidate count, horizon depth and per-slice
    /// forced moves all vary; the session must track from-scratch
    /// grounding on models (determinized), verdicts and optimal costs at
    /// every horizon along the way.
    #[test]
    fn random_chains_match_scratch(
        consts in 1usize..=2,
        h_max in 4usize..=7,
        forced in prop::collection::vec(any::<bool>(), 16),
    ) {
        check_sweep(consts, h_max, &forced, false, 6);
    }
}

/// A session holding a `GroundSession` in a struct stays usable across
/// extensions (the public API is `'static`-friendly for resident
/// sessions, as `epa` requires).
#[test]
fn session_is_resident_friendly() {
    struct Holder {
        session: GroundSession,
    }
    let base = parse(&base_src(1, &[])).expect("parse");
    let mut holder = Holder {
        session: Grounder::new().session(&base).expect("session"),
    };
    for h in 2..=4 {
        let delta = parse(&delta_src(h - 1, &[])).expect("parse");
        holder
            .session
            .extend(&delta, &[frontier(h - 1)])
            .expect("extend");
    }
    assert!(holder.session.program().lookup(&frontier(4)).is_some());
}
