//! Differential testing of the well-founded analysis stack.
//!
//! Three soundness contracts, each pinned against brute-force enumeration
//! on the naive reference engine ([`Solver::new_reference`]):
//!
//! * the well-founded model **bounds** every stable model — WFM-true
//!   atoms appear in every answer set, WFM-false atoms in none, and a
//!   WFM-detected inconsistency means no answer set exists (so the chain
//!   WFM-true ⊆ cautious ⊆ brave ⊆ not-WFM-false holds);
//! * the backbone simplifier **preserves** the stable-model set exactly
//!   while never growing the program or destroying tightness;
//! * the conditional WFM keeps the same bounds under arbitrary assumption
//!   sets, including contradictory ones.
//!
//! A fourth suite pins [`Solver::brave`] / [`Solver::cautious`] (which
//! seed from the WFM and terminate early on its bounds) to the
//! union/intersection of the brute-forced answer sets, over programs with
//! choices and assumable atoms.

use std::collections::BTreeSet;

use proptest::prelude::*;

use cpsrisk_asp::ast::Atom;
use cpsrisk_asp::{
    simplify_with, well_founded, well_founded_with, GroundProgram, Grounder, Lit, Program,
    SolveOptions, Solver,
};

/// A random program over atoms a0..a{n-1}: facts, normal rules, choices,
/// and constraints — the shapes the WFM has to approximate soundly.
fn arb_program(n_atoms: usize) -> impl Strategy<Value = String> {
    let atom = move || (0..n_atoms).prop_map(|i| format!("a{i}"));
    let body = move |max: usize| {
        prop::collection::vec((atom(), any::<bool>()), 1..max).prop_map(|lits| {
            lits.into_iter()
                .map(|(a, neg)| if neg { format!("not {a}") } else { a })
                .collect::<Vec<_>>()
                .join(", ")
        })
    };
    let rule = prop_oneof![
        atom().prop_map(|h| format!("{h}.")),
        (atom(), body(4)).prop_map(|(h, b)| format!("{h} :- {b}.")),
        body(3).prop_map(|b| format!(":- {b}.")),
        prop::collection::vec(atom(), 1..4)
            .prop_map(|atoms| format!("{{ {} }}.", atoms.join("; "))),
    ];
    prop::collection::vec(rule, 1..10).prop_map(|rules| rules.join("\n"))
}

/// Ground with a random subset of the atom universe marked assumable, so
/// the WFM's "assumables stay undefined" rule is exercised.
fn ground_with_assumables(src: &str, assumable: &[usize]) -> GroundProgram {
    let program: Program = src.parse().expect("generated programs parse");
    let mut grounder = Grounder::new();
    for &i in assumable {
        grounder = grounder.assumable(&format!("a{i}"), 0);
    }
    grounder
        .ground(&program)
        .expect("generated programs ground")
}

fn ground(src: &str) -> GroundProgram {
    ground_with_assumables(src, &[])
}

/// Every answer set as a sorted set of atom strings, via the reference
/// engine (itself pinned by the brute-force suite).
fn brute_models(g: &GroundProgram) -> Vec<BTreeSet<String>> {
    let mut models: Vec<BTreeSet<String>> = Solver::new_reference(g)
        .enumerate(&SolveOptions::default())
        .expect("within budget")
        .models
        .iter()
        .map(|m| m.atoms.iter().map(ToString::to_string).collect())
        .collect();
    models.sort();
    models
}

/// Same, under an assumption set.
fn brute_models_under(g: &GroundProgram, lits: &[Lit]) -> Vec<BTreeSet<String>> {
    let mut models: Vec<BTreeSet<String>> = Solver::new_reference(g)
        .solve_with_assumptions(lits, &SolveOptions::default())
        .expect("within budget")
        .models
        .iter()
        .map(|m| m.atoms.iter().map(ToString::to_string).collect())
        .collect();
    models.sort();
    models
}

fn names(g: &GroundProgram, ids: impl Iterator<Item = cpsrisk_asp::AtomId>) -> BTreeSet<String> {
    ids.map(|id| g.atom(id).to_string()).collect()
}

/// Resolve `(index, polarity)` pairs against the interned atoms; atoms the
/// grounder dropped cannot be assumed and are skipped.
fn lits(g: &GroundProgram, set: &[(usize, bool)]) -> Vec<Lit> {
    set.iter()
        .filter_map(|&(i, positive)| {
            g.lookup(&Atom::prop(format!("a{i}")))
                .map(|atom| Lit { atom, positive })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// WFM-true ⊆ every model, WFM-false ∩ every model = ∅, and a WFM
    /// inconsistency verdict implies there are no models at all.
    #[test]
    fn wfm_bounds_every_stable_model(
        src in arb_program(7),
        assumable in prop::collection::btree_set(0usize..7, 0..3),
    ) {
        let assumable: Vec<usize> = assumable.into_iter().collect();
        let g = ground_with_assumables(&src, &assumable);
        let wfm = well_founded(&g);
        let models = brute_models(&g);
        if wfm.inconsistent {
            prop_assert!(models.is_empty(), "WFM refuted a satisfiable program:\n{}", src);
            return Ok(());
        }
        let wfm_true = names(&g, wfm.true_atoms());
        let wfm_false = names(&g, wfm.false_atoms());
        for m in &models {
            prop_assert!(
                wfm_true.is_subset(m),
                "WFM-true {:?} not in model {:?}, program:\n{}", wfm_true, m, src
            );
            prop_assert!(
                wfm_false.is_disjoint(m),
                "WFM-false {:?} intersects model {:?}, program:\n{}", wfm_false, m, src
            );
        }
        // A total consistent WFM pins the unique answer set exactly.
        if wfm.total() && !models.is_empty() {
            prop_assert_eq!(models.len(), 1, "total WFM, program:\n{}", src);
            prop_assert_eq!(&models[0], &wfm_true, "total WFM, program:\n{}", src);
        }
    }

    /// Simplifying against the backbone is model-preserving, never grows
    /// the rule set, and never destroys the tightness certificate.
    #[test]
    fn simplification_preserves_the_model_set(
        src in arb_program(7),
        assumable in prop::collection::btree_set(0usize..7, 0..3),
    ) {
        let assumable: Vec<usize> = assumable.into_iter().collect();
        let g = ground_with_assumables(&src, &assumable);
        let s = simplify_with(&g, &well_founded(&g));
        prop_assert_eq!(
            brute_models(&s.program), brute_models(&g),
            "model set changed, program:\n{}", src
        );
        prop_assert!(
            s.rules_after <= s.rules_before,
            "simplification grew the program ({} -> {}):\n{}",
            s.rules_before, s.rules_after, src
        );
        prop_assert!(
            s.tight_after || !s.tight_before,
            "simplification destroyed tightness:\n{}", src
        );
    }

    /// The conditional WFM keeps the same bounds under every assumption
    /// set — including contradictory sets, where it must not claim an
    /// inconsistency that solving disproves.
    #[test]
    fn conditional_wfm_bounds_models_under_assumptions(
        src in arb_program(6),
        sets in prop::collection::vec(
            prop::collection::vec((0usize..6, any::<bool>()), 0..4),
            1..5,
        ),
    ) {
        let g = ground(&src);
        for set in &sets {
            let assumptions = lits(&g, set);
            let wfm = well_founded_with(&g, &assumptions);
            let models = brute_models_under(&g, &assumptions);
            if wfm.inconsistent {
                prop_assert!(
                    models.is_empty(),
                    "conditional WFM refuted a satisfiable query {:?}:\n{}", set, src
                );
                continue;
            }
            let wfm_true = names(&g, wfm.true_atoms());
            let wfm_false = names(&g, wfm.false_atoms());
            for m in &models {
                prop_assert!(
                    wfm_true.is_subset(m),
                    "conditional WFM-true escaped a model, query {:?}:\n{}", set, src
                );
                prop_assert!(
                    wfm_false.is_disjoint(m),
                    "conditional WFM-false entered a model, query {:?}:\n{}", set, src
                );
            }
        }
    }

    /// `brave()` / `cautious()` — which seed from the WFM and cut the
    /// enumeration short on its bounds — equal the union / intersection
    /// of the brute-forced answer sets (both empty when no answer set
    /// exists).
    #[test]
    fn brave_and_cautious_match_brute_force(
        src in arb_program(6),
        assumable in prop::collection::btree_set(0usize..6, 0..3),
    ) {
        let assumable: Vec<usize> = assumable.into_iter().collect();
        let g = ground_with_assumables(&src, &assumable);
        let models = brute_models(&g);
        let union: BTreeSet<String> = models.iter().flatten().cloned().collect();
        let intersection: BTreeSet<String> = models
            .first()
            .map(|first| {
                models[1..]
                    .iter()
                    .fold(first.clone(), |acc, m| acc.intersection(m).cloned().collect())
            })
            .unwrap_or_default();
        let opts = SolveOptions::default();
        let brave: BTreeSet<String> = Solver::new(&g)
            .brave(&opts)
            .expect("within budget")
            .iter()
            .map(ToString::to_string)
            .collect();
        let cautious: BTreeSet<String> = Solver::new(&g)
            .cautious(&opts)
            .expect("within budget")
            .iter()
            .map(ToString::to_string)
            .collect();
        prop_assert_eq!(&brave, &union, "brave vs union, program:\n{}", src);
        prop_assert_eq!(&cautious, &intersection, "cautious vs intersection, program:\n{}", src);
        // The approximation chain the module docs promise.
        let wfm = well_founded(&g);
        if !wfm.inconsistent && !models.is_empty() {
            prop_assert!(names(&g, wfm.true_atoms()).is_subset(&cautious), "program:\n{}", src);
            prop_assert!(names(&g, wfm.false_atoms()).is_disjoint(&brave), "program:\n{}", src);
        }
    }
}
