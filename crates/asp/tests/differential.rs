//! Differential testing: occurrence-indexed engine vs the naive reference.
//!
//! [`Solver::new`] (occurrence lists, incremental rule counters, worklist
//! propagation, semi-naive unfounded closure) and [`Solver::new_reference`]
//! (the retained full-scan passes) must be observationally identical: on
//! randomly generated programs both engines enumerate exactly the same
//! answer sets, report the same `exhausted` flag, and agree on optimal
//! costs. The brute-force suite validates the reference engine against the
//! independent checker; this suite pins the optimized engine to the
//! reference.

use proptest::prelude::*;

use cpsrisk_asp::ast::Atom;
use cpsrisk_asp::{GroundProgram, Grounder, Lit, Program, SolveOptions, Solver};

/// A random program over atoms a0..a{n-1}: facts, normal rules, choices,
/// constraints, and an optional `#minimize` over a weighted atom subset —
/// slightly larger shapes than the brute-force suite can afford.
fn arb_program(n_atoms: usize) -> impl Strategy<Value = String> {
    let atom = move || (0..n_atoms).prop_map(|i| format!("a{i}"));
    let body = move |max: usize| {
        prop::collection::vec((atom(), any::<bool>()), 1..max).prop_map(|lits| {
            lits.into_iter()
                .map(|(a, neg)| if neg { format!("not {a}") } else { a })
                .collect::<Vec<_>>()
                .join(", ")
        })
    };
    let rule = prop_oneof![
        atom().prop_map(|h| format!("{h}.")),
        (atom(), body(4)).prop_map(|(h, b)| format!("{h} :- {b}.")),
        body(3).prop_map(|b| format!(":- {b}.")),
        prop::collection::vec(atom(), 1..4)
            .prop_map(|atoms| format!("{{ {} }}.", atoms.join("; "))),
    ];
    let minimize = prop::collection::vec((atom(), 1i64..5), 0..3).prop_map(|elems| {
        if elems.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = elems
                .into_iter()
                .map(|(a, w)| format!("{w},{a} : {a}"))
                .collect();
            format!("#minimize {{ {} }}.", parts.join("; "))
        }
    });
    (prop::collection::vec(rule, 1..10), minimize)
        .prop_map(|(rules, min)| format!("{}\n{min}", rules.join("\n")))
}

fn ground(src: &str) -> GroundProgram {
    let program: Program = src.parse().expect("generated programs parse");
    Grounder::new()
        .ground(&program)
        .expect("generated programs ground")
}

/// Canonical view of an enumeration: sorted model renderings plus the
/// exhausted flag. Model text renders every true atom in sorted display
/// order, so equal sets of strings mean equal sets of answer sets.
fn canonical(solver: &mut Solver, opts: &SolveOptions) -> (Vec<String>, bool) {
    let result = solver.enumerate(opts).expect("within budget");
    let mut models: Vec<String> = result
        .models
        .iter()
        .map(|m| {
            m.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    models.sort();
    (models, result.exhausted)
}

/// A stream of assumption sets over atoms `a0..a{n-1}`: each set pins a
/// few atoms to a polarity (contradictory pins included — both paths must
/// then agree the query is unsatisfiable).
fn arb_assumption_sets(n_atoms: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(
        prop::collection::vec((0..n_atoms, any::<bool>()), 0..4),
        1..6,
    )
}

/// Resolve an assumption set against a ground program; atoms the grounder
/// never interned are skipped (they cannot be assumed).
fn lits(g: &GroundProgram, set: &[(usize, bool)]) -> Vec<Lit> {
    set.iter()
        .filter_map(|&(i, positive)| {
            g.lookup(&Atom::prop(format!("a{i}")))
                .map(|atom| Lit { atom, positive })
        })
        .collect()
}

/// [`canonical`] under an assumption set.
fn canonical_assume(solver: &mut Solver, lits: &[Lit], opts: &SolveOptions) -> (Vec<String>, bool) {
    let result = solver
        .solve_with_assumptions(lits, opts)
        .expect("within budget");
    let mut models: Vec<String> = result
        .models
        .iter()
        .map(|m| {
            m.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    models.sort();
    (models, result.exhausted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_enumerate_identical_answer_sets(src in arb_program(7)) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let (indexed, ex_i) = canonical(&mut Solver::new(&g), &opts);
        let (reference, ex_r) = canonical(&mut Solver::new_reference(&g), &opts);
        prop_assert_eq!(&indexed, &reference, "program:\n{}", src);
        prop_assert_eq!(ex_i, ex_r, "exhausted flag, program:\n{}", src);
    }

    #[test]
    fn engines_agree_under_model_limits(src in arb_program(6), max in 1usize..4) {
        // Under max_models the engines may surface different model
        // *prefixes* (CDCL branches by activity and phase, the reference
        // chronologically), but each must deliver min(max, total) genuine
        // answer sets and the same exhausted verdict.
        let g = ground(&src);
        let (all, ex_full) = canonical(&mut Solver::new_reference(&g), &SolveOptions::default());
        prop_assert!(ex_full);
        let opts = SolveOptions { max_models: max, ..SolveOptions::default() };
        let (limited, ex_i) = canonical(&mut Solver::new(&g), &opts);
        let (reference, ex_r) = canonical(&mut Solver::new_reference(&g), &opts);
        let expect = all.len().min(max);
        prop_assert_eq!(limited.len(), expect, "program:\n{}", src);
        prop_assert_eq!(reference.len(), expect, "program:\n{}", src);
        for m in limited.iter().chain(reference.iter()) {
            prop_assert!(all.contains(m), "not an answer set: {}\nprogram:\n{}", m, src);
        }
        prop_assert_eq!(ex_i, ex_r, "exhausted flag, program:\n{}", src);
    }

    /// One solver reused across a whole stream of randomized assumption
    /// sets (with and without learned-nogood retention) must enumerate
    /// exactly what a fresh `Solver::new` enumerates per call: identical
    /// answer sets and exhausted flags, query after query.
    #[test]
    fn reused_assumption_solver_matches_fresh_solver_per_call(
        src in arb_program(6),
        sets in arb_assumption_sets(6),
        retain in any::<bool>(),
    ) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let mut reused = Solver::new(&g);
        for (k, set) in sets.iter().enumerate() {
            if !retain {
                reused.clear_learned();
            }
            let assumptions = lits(&g, set);
            let (got, ex_g) = canonical_assume(&mut reused, &assumptions, &opts);
            let (want, ex_w) = canonical_assume(&mut Solver::new(&g), &assumptions, &opts);
            prop_assert_eq!(
                &got, &want,
                "query {} (retain={}), program:\n{}", k, retain, src
            );
            prop_assert_eq!(
                ex_g, ex_w,
                "exhausted flag, query {} (retain={}), program:\n{}", k, retain, src
            );
        }
    }

    /// Same reuse property for the optimizer: equal optimal costs (or
    /// equal unsatisfiability) under every assumption set in the stream.
    #[test]
    fn reused_assumption_optimizer_matches_fresh_solver_per_call(
        src in arb_program(5),
        sets in arb_assumption_sets(5),
    ) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let mut reused = Solver::new(&g);
        for (k, set) in sets.iter().enumerate() {
            let assumptions = lits(&g, set);
            let got = reused
                .optimize_with_assumptions(&assumptions, &opts)
                .expect("within budget");
            let want = Solver::new(&g)
                .optimize_with_assumptions(&assumptions, &opts)
                .expect("within budget");
            match (&got, &want) {
                (Some(a), Some(b)) => prop_assert_eq!(
                    &a.cost, &b.cost,
                    "optimal cost, query {}, program:\n{}", k, src
                ),
                (None, None) => {}
                _ => prop_assert!(
                    false,
                    "reuse and fresh disagree on satisfiability, query {k}:\n{src}"
                ),
            }
        }
    }

    #[test]
    fn engines_find_equal_optimal_costs(src in arb_program(6)) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let best_i = Solver::new(&g).optimize(&opts).expect("within budget");
        let best_r = Solver::new_reference(&g).optimize(&opts).expect("within budget");
        match (&best_i, &best_r) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.cost, &b.cost, "optimal cost, program:\n{}", src);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one engine found an optimum, the other did not:\n{src}"),
        }
    }
}
