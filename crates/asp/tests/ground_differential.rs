//! Differential testing: semi-naive grounder vs the naive reference.
//!
//! [`Grounder::new`] (stratified delta evaluation, multi-argument indexes,
//! slot substitutions, parallel instantiation) and
//! [`Grounder::new_reference`] (the retained global re-join fixpoint) must
//! produce identical `GroundProgram`s — the same atoms, rules (modulo
//! order), cardinality constraints, minimize literals, shows, and
//! assumables — on randomly generated non-ground programs covering joins,
//! recursion, negation, arithmetic `=` binding, choice heads with
//! conditions, and `#minimize`. A second suite pins single-thread and
//! multi-thread instantiation to *bit-identical* output.

use proptest::prelude::*;

use cpsrisk_asp::program::{CardConstraint, GroundHead, MinimizeLit};
use cpsrisk_asp::{GroundProgram, Grounder, Program};

/// One random statement drawn from safe templates over a small universe:
/// unary facts `u{i}`, binary facts `b{i}` (constant × integer), derived
/// predicates `d{i}`, an integer-valued `v`, a recursive `e/2`, and a
/// choosable `pick`.
fn arb_statement() -> impl Strategy<Value = String> {
    let con = || (0..4usize).prop_map(|i| format!("c{i}"));
    let num = || 1..=4i64;
    let u = || (0..2usize).prop_map(|i| format!("u{i}"));
    let b = || (0..2usize).prop_map(|i| format!("b{i}"));
    let d = || (0..2usize).prop_map(|i| format!("d{i}"));
    prop_oneof![
        // Facts.
        (u(), con()).prop_map(|(p, c)| format!("{p}({c}).")),
        (b(), con(), num()).prop_map(|(p, c, n)| format!("{p}({c},{n}).")),
        // Copy and join rules; the join variable sits in argument 2 of the
        // binary predicate, exercising the non-first-argument indexes.
        (d(), u()).prop_map(|(h, p)| format!("{h}(X) :- {p}(X).")),
        (d(), u(), b(), num())
            .prop_map(|(h, p, q, n)| format!("{h}(X) :- {p}(X), {q}(X,N), N >= {n}.")),
        // Negation over derived and base predicates.
        (d(), u(), d()).prop_map(|(h, p, n)| format!("{h}(X) :- {p}(X), not {n}(X).")),
        (d(), u(), b(), num())
            .prop_map(|(h, p, q, n)| format!("{h}(X) :- {p}(X), not {q}(X,{n}).")),
        // Arithmetic `=` binding on either side.
        (b(), num()).prop_map(|(q, m)| format!("v(Z) :- {q}(X,N), Z = N + {m}.")),
        (b(), num()).prop_map(|(q, m)| format!("v(Z) :- {q}(X,N), N * {m} = Z.")),
        // Recursion: a binary closure joined through the integer column.
        (b(), b())
            .prop_map(|(p, q)| format!("e(X,Y) :- {p}(X,N), {q}(Y,N). e(X,Z) :- e(X,Y), e(Y,Z).")),
        // Choice heads with conditions and optional bounds.
        (u(), 0..=2u32).prop_map(|(p, ub)| match ub {
            0 => format!("{{ pick(X) : {p}(X) }}."),
            ub => format!("{{ pick(X) : {p}(X) }} {ub}."),
        }),
        (b(), num()).prop_map(|(q, n)| format!("1 {{ pick(X) : {q}(X,N), N > {n} }}.")),
        // Constraints.
        (u(),).prop_map(|(p,)| format!(":- pick(X), not {p}(X).")),
        (d(), u()).prop_map(|(p, q)| format!(":- {p}(X), {q}(X).")),
        // Minimize, with weights and priorities.
        (b(),).prop_map(|(q,)| format!("#minimize {{ N,X : {q}(X,N), pick(X) }}.")),
        (d(), 1..=3i64).prop_map(|(p, w)| format!("#minimize {{ {w}@2,X : {p}(X) }}.")),
    ]
}

fn arb_program() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_statement(), 2..12).prop_map(|stmts| stmts.join("\n"))
}

fn parse(src: &str) -> Program {
    src.parse().expect("generated programs parse")
}

/// Canonical rendering of a ground program: every component becomes a
/// tagged, sorted string, so two programs are observationally identical iff
/// their canonical forms are equal — independent of atom-id assignment and
/// of rule/card/minimize instance order.
fn canon(g: &GroundProgram) -> Vec<String> {
    let atom = |id| g.atom(id).to_string();
    let atoms =
        |ids: &[cpsrisk_asp::AtomId]| ids.iter().map(|&i| atom(i)).collect::<Vec<_>>().join(",");
    let mut out: Vec<String> = Vec::new();
    for (_, a) in g.atoms() {
        out.push(format!("atom {a}"));
    }
    for r in &g.rules {
        let head = match r.head {
            GroundHead::Atom(h) => atom(h),
            GroundHead::Choice(h) => format!("{{{}}}", atom(h)),
            GroundHead::None => String::new(),
        };
        out.push(format!(
            "rule {head} :- {}; not {}",
            atoms(&r.pos),
            atoms(&r.neg)
        ));
    }
    for CardConstraint {
        pos,
        neg,
        elements,
        lower,
        upper,
    } in &g.cards
    {
        let mut elems: Vec<String> = elements
            .iter()
            .map(|e| {
                format!(
                    "{} if {}; not {}",
                    atom(e.atom),
                    atoms(&e.guard_pos),
                    atoms(&e.guard_neg)
                )
            })
            .collect();
        elems.sort();
        out.push(format!(
            "card {lower}..{upper} :- {}; not {} | {}",
            atoms(pos),
            atoms(neg),
            elems.join(" | ")
        ));
    }
    for (prio, lits) in &g.minimize {
        let mut rendered: Vec<String> = lits
            .iter()
            .map(
                |MinimizeLit {
                     weight,
                     tuple,
                     pos,
                     neg,
                 }| {
                    let t: Vec<String> = tuple.iter().map(ToString::to_string).collect();
                    format!(
                        "min@{prio} {weight},{} : {}; not {}",
                        t.join(","),
                        atoms(pos),
                        atoms(neg)
                    )
                },
            )
            .collect();
        rendered.sort();
        out.extend(rendered);
    }
    for (p, n) in &g.shows {
        out.push(format!("show {p}/{n}"));
    }
    for &a in &g.assumable {
        out.push(format!("assume {}", atom(a)));
    }
    out.sort();
    out
}

/// Exact structural equality (atom ids included) — the determinism bar for
/// thread-count variations of the same engine.
fn assert_identical(a: &GroundProgram, b: &GroundProgram, label: &str) {
    let atoms_a: Vec<_> = a.atoms().map(|(_, at)| at.clone()).collect();
    let atoms_b: Vec<_> = b.atoms().map(|(_, at)| at.clone()).collect();
    assert_eq!(atoms_a, atoms_b, "{label}: atom arena");
    assert_eq!(a.rules, b.rules, "{label}: rules");
    assert_eq!(a.cards, b.cards, "{label}: cards");
    assert_eq!(a.minimize, b.minimize, "{label}: minimize");
    assert_eq!(a.shows, b.shows, "{label}: shows");
    assert_eq!(a.assumable, b.assumable, "{label}: assumable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_ground_identical_programs(src in arb_program()) {
        let p = parse(&src);
        let semi = Grounder::new().ground(&p).expect("semi-naive grounds");
        let reference = Grounder::new_reference().ground(&p).expect("reference grounds");
        prop_assert_eq!(canon(&semi), canon(&reference), "program:\n{}", src);
    }

    #[test]
    fn engines_agree_under_assumable_signatures(src in arb_program()) {
        // Assumable fact handling must be identical: `u0/1` and `b1/2`
        // facts become choice-supported assumable atoms on both engines.
        let p = parse(&src);
        let semi = Grounder::new()
            .assumable("u0", 1)
            .assumable("b1", 2)
            .ground(&p)
            .expect("semi-naive grounds");
        let reference = Grounder::new_reference()
            .assumable("u0", 1)
            .assumable("b1", 2)
            .ground(&p)
            .expect("reference grounds");
        prop_assert_eq!(canon(&semi), canon(&reference), "program:\n{}", src);
    }

    #[test]
    fn thread_counts_are_bit_identical(src in arb_program()) {
        let p = parse(&src);
        let single = Grounder::new().with_threads(1).ground(&p).expect("grounds");
        for threads in [2, 4] {
            let multi = Grounder::new()
                .with_threads(threads)
                .ground(&p)
                .expect("grounds");
            assert_identical(&single, &multi, &format!("threads=1 vs {threads}"));
        }
    }
}
