//! Stress tests: classic combinatorial encodings through the full
//! parse → ground → solve pipeline, with known solution counts.

use cpsrisk_asp::{Grounder, Program, SolveOptions, Solver};

fn count_models(src: &str) -> usize {
    let program: Program = src.parse().expect("parses");
    let ground = Grounder::new().ground(&program).expect("grounds");
    let mut solver = Solver::new(&ground);
    let result = solver.enumerate(&SolveOptions::default()).expect("solves");
    assert!(result.exhausted);
    result.models.len()
}

#[test]
fn n_queens_has_known_solution_counts() {
    // Classic encoding: one queen per row, no shared column/diagonal.
    let encode = |n: i64| {
        format!(
            "row(1..{n}). col(1..{n}). \
             1 {{ queen(R, C) : col(C) }} 1 :- row(R). \
             :- queen(R1, C), queen(R2, C), R1 < R2. \
             :- queen(R1, C1), queen(R2, C2), R1 < R2, C1 != C2, R2 - R1 = C2 - C1. \
             :- queen(R1, C1), queen(R2, C2), R1 < R2, C1 != C2, R2 - R1 = C1 - C2."
        )
    };
    assert_eq!(count_models(&encode(4)), 2);
    assert_eq!(count_models(&encode(5)), 10);
    assert_eq!(count_models(&encode(6)), 4);
}

#[test]
fn graph_three_coloring_counts() {
    // A 4-cycle has 3 * 2 * (3-2)... known: chromatic polynomial of C4 at
    // k=3 is (k-1)^4 + (k-1) = 16 + 2 = 18.
    let src = "node(1..4). edge(1,2). edge(2,3). edge(3,4). edge(4,1). \
               color(r). color(g). color(b). \
               1 { assign(N, C) : color(C) } 1 :- node(N). \
               :- edge(X, Y), assign(X, C), assign(Y, C).";
    assert_eq!(count_models(src), 18);
}

#[test]
fn hamiltonian_cycles_of_k4() {
    // K4 has 3 undirected Hamiltonian cycles = 6 directed ones; with a
    // fixed start the count is 6 (each directed cycle counted once).
    let src = "node(1..4). \
               edge(X, Y) :- node(X), node(Y), X != Y. \
               1 { next(X, Y) : edge(X, Y) } 1 :- node(X). \
               1 { next(X, Y) : edge(X, Y) } 1 :- node(Y). \
               reach(1). \
               reach(Y) :- reach(X), next(X, Y). \
               :- node(X), not reach(X).";
    assert_eq!(count_models(src), 6);
}

#[test]
fn transitive_closure_on_a_chain_is_deterministic_and_complete() {
    let n = 20;
    let mut src = String::new();
    for i in 1..n {
        src.push_str(&format!("edge({i},{}). ", i + 1));
    }
    src.push_str("path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).");
    let program: Program = src.parse().unwrap();
    let models = program.solve().unwrap();
    assert_eq!(models.len(), 1);
    let paths = models[0].atoms_of("path").len();
    assert_eq!(paths, (n - 1) * n / 2, "all ordered pairs on the chain");
}

#[test]
fn optimization_on_a_weighted_selection_grid() {
    // Pick exactly 3 of 8 items minimizing total weight; weights 1..8 →
    // optimal cost 1+2+3 = 6.
    let src = "item(1..8). weight(I, I) :- item(I). \
               3 { pick(I) : item(I) } 3. \
               #minimize { W,I : pick(I), weight(I, W) }.";
    let program: Program = src.parse().unwrap();
    let ground = Grounder::new().ground(&program).unwrap();
    let mut solver = Solver::new(&ground);
    let best = solver.optimize(&SolveOptions::default()).unwrap().unwrap();
    assert_eq!(best.cost, vec![(0, 6)]);
    for i in [1, 2, 3] {
        assert!(best.contains_str(&format!("pick({i})")));
    }
}

#[test]
fn deep_stratified_negation_chain() {
    // p1 :- not p0. p2 :- not p1. … alternating truth values.
    let mut src = String::from("p0.");
    for i in 1..30 {
        src.push_str(&format!(" p{i} :- not p{}.", i - 1));
    }
    let program: Program = src.parse().unwrap();
    let models = program.solve().unwrap();
    assert_eq!(models.len(), 1);
    let m = &models[0];
    for i in 0..30 {
        assert_eq!(m.contains_str(&format!("p{i}")), i % 2 == 0, "p{i}");
    }
}

#[test]
fn wide_choice_with_budgeted_enumeration_cap() {
    // 2^14 models exist; cap enumeration and confirm early stop.
    let atoms: Vec<String> = (0..14).map(|i| format!("a{i}")).collect();
    let src = format!("{{ {} }}.", atoms.join("; "));
    let program: Program = src.parse().unwrap();
    let ground = Grounder::new().ground(&program).unwrap();
    let mut solver = Solver::new(&ground);
    let result = solver
        .enumerate(&SolveOptions {
            max_models: 100,
            ..SolveOptions::default()
        })
        .unwrap();
    assert_eq!(result.models.len(), 100);
    assert!(!result.exhausted);
}
