//! Differential testing: the CDCL engine vs the naive reference, on
//! search-heavy programs.
//!
//! The generic differential suite (`tests/differential.rs`) pins the two
//! engines on broad random programs. This suite stresses the parts only
//! the CDCL engine has: bounded cardinality choices (watched-literal and
//! counter propagation interact), a one-conflict restart interval (every
//! conflict triggers a Luby restart, so backjumping, phase saving, and
//! learned-nogood replay are exercised constantly), the forced
//! unfounded-closure mode, and assumption streams over a reused solver
//! with retained learned nogoods. In every configuration the CDCL engine
//! must enumerate exactly the answer sets of [`Solver::new_reference`].

use proptest::prelude::*;

use cpsrisk_asp::ast::Atom;
use cpsrisk_asp::{GroundProgram, Grounder, Lit, Program, SolveOptions, Solver};

/// A random *search-heavy* program over atoms a0..a{n-1}: alongside
/// facts, rules, and constraints it generates **bounded** cardinality
/// choices (`L { .. } U.`), which ground to `CardConstraint`s and force
/// the counter-propagation path the generic suite rarely reaches.
fn arb_search_program(n_atoms: usize) -> impl Strategy<Value = String> {
    let atom = move || (0..n_atoms).prop_map(|i| format!("a{i}"));
    let body = move |max: usize| {
        prop::collection::vec((atom(), any::<bool>()), 1..max).prop_map(|lits| {
            lits.into_iter()
                .map(|(a, neg)| if neg { format!("not {a}") } else { a })
                .collect::<Vec<_>>()
                .join(", ")
        })
    };
    let bounded_choice = (prop::collection::vec(atom(), 2..5), 0usize..3, 0usize..3).prop_map(
        |(mut atoms, lo, extra)| {
            atoms.sort();
            atoms.dedup();
            let lo = lo.min(atoms.len());
            let hi = (lo + extra).min(atoms.len());
            format!("{lo} {{ {} }} {hi}.", atoms.join("; "))
        },
    );
    let rule = prop_oneof![
        atom().prop_map(|h| format!("{h}.")),
        (atom(), body(4)).prop_map(|(h, b)| format!("{h} :- {b}.")),
        body(3).prop_map(|b| format!(":- {b}.")),
        bounded_choice.clone(),
        bounded_choice,
        prop::collection::vec(atom(), 1..4)
            .prop_map(|atoms| format!("{{ {} }}.", atoms.join("; "))),
    ];
    let minimize = prop::collection::vec((atom(), 1i64..5), 0..3).prop_map(|elems| {
        if elems.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = elems
                .into_iter()
                .map(|(a, w)| format!("{w},{a} : {a}"))
                .collect();
            format!("#minimize {{ {} }}.", parts.join("; "))
        }
    });
    (prop::collection::vec(rule, 2..10), minimize)
        .prop_map(|(rules, min)| format!("{}\n{min}", rules.join("\n")))
}

fn ground(src: &str) -> GroundProgram {
    let program: Program = src.parse().expect("generated programs parse");
    Grounder::new()
        .ground(&program)
        .expect("generated programs ground")
}

/// Canonical enumeration: sorted model renderings + the exhausted flag.
fn canonical(solver: &mut Solver, opts: &SolveOptions) -> (Vec<String>, bool) {
    let result = solver.enumerate(opts).expect("within budget");
    let mut models: Vec<String> = result
        .models
        .iter()
        .map(|m| {
            m.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    models.sort();
    (models, result.exhausted)
}

/// A stream of assumption sets (contradictory pins included).
fn arb_assumption_sets(n_atoms: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(
        prop::collection::vec((0..n_atoms, any::<bool>()), 0..4),
        1..6,
    )
}

fn lits(g: &GroundProgram, set: &[(usize, bool)]) -> Vec<Lit> {
    set.iter()
        .filter_map(|&(i, positive)| {
            g.lookup(&Atom::prop(format!("a{i}")))
                .map(|atom| Lit { atom, positive })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bounded cardinality choices: identical answer sets and exhausted
    /// flags between CDCL and the reference engine.
    #[test]
    fn cdcl_enumerates_identical_answer_sets_on_card_heavy_programs(
        src in arb_search_program(7),
    ) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let (cdcl, ex_c) = canonical(&mut Solver::new(&g), &opts);
        let (reference, ex_r) = canonical(&mut Solver::new_reference(&g), &opts);
        prop_assert_eq!(&cdcl, &reference, "program:\n{}", src);
        prop_assert_eq!(ex_c, ex_r, "exhausted flag, program:\n{}", src);
    }

    /// A one-conflict Luby interval restarts on *every* conflict before
    /// the first model: maximal stress on backjumping to level 0, phase
    /// saving, and learned-unit replay. Enumeration must be unchanged.
    #[test]
    fn cdcl_with_restart_interval_one_matches_the_reference(
        src in arb_search_program(7),
    ) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let mut solver = Solver::new(&g);
        solver.set_restart_interval(1);
        let (cdcl, ex_c) = canonical(&mut solver, &opts);
        let (reference, ex_r) = canonical(&mut Solver::new_reference(&g), &opts);
        prop_assert_eq!(&cdcl, &reference, "program:\n{}", src);
        prop_assert_eq!(ex_c, ex_r, "exhausted flag, program:\n{}", src);
    }

    /// With the tight fast path disabled the CDCL engine runs the
    /// unfounded-set backstop on every total assignment — same models.
    #[test]
    fn cdcl_forced_closure_mode_matches_the_reference(
        src in arb_search_program(6),
    ) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let mut solver = Solver::new(&g);
        solver.set_tight_mode(false);
        let (cdcl, ex_c) = canonical(&mut solver, &opts);
        let (reference, ex_r) = canonical(&mut Solver::new_reference(&g), &opts);
        prop_assert_eq!(&cdcl, &reference, "program:\n{}", src);
        prop_assert_eq!(ex_c, ex_r, "exhausted flag, program:\n{}", src);
    }

    /// Assumption streams on one reused CDCL solver, learned nogoods
    /// retained (and with a one-conflict restart interval), versus a
    /// fresh *reference* solver per query: identical answer sets and
    /// exhausted flags for every query in the stream.
    #[test]
    fn reused_cdcl_solver_with_retained_nogoods_matches_fresh_reference(
        src in arb_search_program(6),
        sets in arb_assumption_sets(6),
        restart_hard in any::<bool>(),
    ) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let mut reused = Solver::new(&g);
        if restart_hard {
            reused.set_restart_interval(1);
        }
        for (k, set) in sets.iter().enumerate() {
            let assumptions = lits(&g, set);
            let got = reused
                .solve_with_assumptions(&assumptions, &opts)
                .expect("within budget");
            let want = Solver::new_reference(&g)
                .solve_with_assumptions(&assumptions, &opts)
                .expect("within budget");
            let render = |r: &cpsrisk_asp::SolveResult| {
                let mut v: Vec<String> = r
                    .models
                    .iter()
                    .map(|m| {
                        m.atoms
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" ")
                    })
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(
                render(&got), render(&want),
                "query {} (restart_hard={}), program:\n{}", k, restart_hard, src
            );
            prop_assert_eq!(
                got.exhausted, want.exhausted,
                "exhausted flag, query {}, program:\n{}", k, src
            );
        }
    }

    /// Branch-and-bound under CDCL: equal optimal costs (or equal
    /// unsatisfiability) against the reference, including under a
    /// one-conflict restart interval.
    #[test]
    fn cdcl_optimizer_finds_the_reference_optimum(
        src in arb_search_program(6),
        restart_hard in any::<bool>(),
    ) {
        let g = ground(&src);
        let opts = SolveOptions::default();
        let mut solver = Solver::new(&g);
        if restart_hard {
            solver.set_restart_interval(1);
        }
        let best_c = solver.optimize(&opts).expect("within budget");
        let best_r = Solver::new_reference(&g).optimize(&opts).expect("within budget");
        match (&best_c, &best_r) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.cost, &b.cost, "optimal cost, program:\n{}", src);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one engine found an optimum, the other did not:\n{src}"),
        }
    }
}
