//! Differential testing: the analysis passes against the engines they feed.
//!
//! Three suites pin the semantic analyses to observable solver behavior on
//! randomly generated programs:
//!
//! * **slicing** — grounding with [`Grounder::with_slicing`] under a random
//!   `#show` footprint must preserve the model count, the multiset of shown
//!   projections, the exhausted flag, and optimal costs;
//! * **tight fast path** — [`Solver::set_tight_mode`] on or off must
//!   enumerate exactly the answer sets of the reference engine;
//! * **tightness certificate** — predicate-level tightness must imply the
//!   ground certificate, the certificate must match what the solver
//!   reports, and solving structural programs through the fast path must
//!   agree with the reference engine.

use proptest::prelude::*;

use cpsrisk_asp::analysis::{analyze_dependencies, ground_tight};
use cpsrisk_asp::{GroundProgram, Grounder, Program, SolveOptions, Solver};

/// Random statements over a small universe mirroring the grounder's
/// differential suite: unary/binary facts, derived predicates, arithmetic
/// bindings, a recursive closure, choices, constraints, and `#minimize`.
fn arb_statement() -> impl Strategy<Value = String> {
    let con = || (0..4usize).prop_map(|i| format!("c{i}"));
    let num = || 1..=4i64;
    let u = || (0..2usize).prop_map(|i| format!("u{i}"));
    let b = || (0..2usize).prop_map(|i| format!("b{i}"));
    let d = || (0..2usize).prop_map(|i| format!("d{i}"));
    prop_oneof![
        (u(), con()).prop_map(|(p, c)| format!("{p}({c}).")),
        (b(), con(), num()).prop_map(|(p, c, n)| format!("{p}({c},{n}).")),
        (d(), u()).prop_map(|(h, p)| format!("{h}(X) :- {p}(X).")),
        (d(), u(), b(), num())
            .prop_map(|(h, p, q, n)| format!("{h}(X) :- {p}(X), {q}(X,N), N >= {n}.")),
        (d(), u(), d()).prop_map(|(h, p, n)| format!("{h}(X) :- {p}(X), not {n}(X).")),
        (b(), num()).prop_map(|(q, m)| format!("v(Z) :- {q}(X,N), Z = N + {m}.")),
        (b(), b())
            .prop_map(|(p, q)| format!("e(X,Y) :- {p}(X,N), {q}(Y,N). e(X,Z) :- e(X,Y), e(Y,Z).")),
        (u(), 0..=2u32).prop_map(|(p, ub)| match ub {
            0 => format!("{{ pick(X) : {p}(X) }}."),
            ub => format!("{{ pick(X) : {p}(X) }} {ub}."),
        }),
        (u(),).prop_map(|(p,)| format!(":- pick(X), not {p}(X).")),
        (b(),).prop_map(|(q,)| format!("#minimize {{ N,X : {q}(X,N), pick(X) }}.")),
    ]
}

/// A random `#show` footprint: any subset of the signatures the statement
/// templates can define. An empty subset leaves slicing a no-op, which the
/// slicing suite must also survive.
fn arb_shows() -> impl Strategy<Value = String> {
    let sigs = ["d0/1", "d1/1", "v/1", "pick/1", "e/2", "u0/1"];
    prop::collection::vec(0..sigs.len(), 0..4).prop_map(move |picked| {
        let mut out: Vec<&str> = picked.iter().map(|&i| sigs[i]).collect();
        out.sort_unstable();
        out.dedup();
        out.iter()
            .map(|s| format!("#show {s}."))
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn arb_program() -> impl Strategy<Value = String> {
    (prop::collection::vec(arb_statement(), 2..10), arb_shows())
        .prop_map(|(stmts, shows)| format!("{}\n{shows}", stmts.join("\n")))
}

fn parse(src: &str) -> Program {
    src.parse().expect("generated programs parse")
}

/// Sorted rendering of every model's full atom set plus the exhausted flag.
fn models(solver: &mut Solver, opts: &SolveOptions) -> (Vec<String>, bool) {
    let result = solver.enumerate(opts).expect("within budget");
    let mut out: Vec<String> = result
        .models
        .iter()
        .map(|m| {
            m.atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    out.sort();
    (out, result.exhausted)
}

/// Sorted multiset of shown projections — the observable a slice must
/// preserve even while it drops atoms from the full models.
fn projections(g: &GroundProgram, opts: &SolveOptions) -> (Vec<String>, bool) {
    let result = Solver::new_reference(g)
        .enumerate(opts)
        .expect("within budget");
    let mut out: Vec<String> = result
        .models
        .iter()
        .map(|m| {
            let mut atoms: Vec<String> = m.shown.iter().map(ToString::to_string).collect();
            atoms.sort();
            atoms.join(" ")
        })
        .collect();
    out.sort();
    (out, result.exhausted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sliced_grounding_preserves_the_observable_semantics(src in arb_program()) {
        let p = parse(&src);
        let full = Grounder::new().ground(&p).expect("grounds");
        let sliced = Grounder::new().with_slicing(true).ground(&p).expect("grounds sliced");
        prop_assert!(
            sliced.rules.len() <= full.rules.len(),
            "a slice never grows the grounding, program:\n{}", src
        );
        let opts = SolveOptions::default();
        let (want, ex_w) = projections(&full, &opts);
        let (got, ex_g) = projections(&sliced, &opts);
        prop_assert_eq!(&got, &want, "shown projections, program:\n{}", src);
        prop_assert_eq!(got.len(), want.len(), "model count, program:\n{}", src);
        prop_assert_eq!(ex_g, ex_w, "exhausted flag, program:\n{}", src);
        // Optimal costs survive too: slicing must never touch #minimize.
        let best_f = Solver::new_reference(&full).optimize(&opts).expect("within budget");
        let best_s = Solver::new_reference(&sliced).optimize(&opts).expect("within budget");
        match (&best_f, &best_s) {
            (Some(a), Some(b)) => prop_assert_eq!(&a.cost, &b.cost, "cost, program:\n{}", src),
            (None, None) => {}
            _ => prop_assert!(false, "slicing flipped satisfiability:\n{src}"),
        }
    }

    #[test]
    fn tight_mode_matches_the_unfounded_closure_and_the_reference(src in arb_program()) {
        let p = parse(&src);
        let g = Grounder::new().ground(&p).expect("grounds");
        let opts = SolveOptions::default();
        let (fast, ex_f) = models(&mut Solver::new(&g), &opts);
        let mut closure_solver = Solver::new(&g);
        closure_solver.set_tight_mode(false);
        let (closure, ex_c) = models(&mut closure_solver, &opts);
        let (reference, ex_r) = models(&mut Solver::new_reference(&g), &opts);
        prop_assert_eq!(&fast, &closure, "tight mode vs closure, program:\n{}", src);
        prop_assert_eq!(&fast, &reference, "tight mode vs reference, program:\n{}", src);
        prop_assert!(ex_f == ex_c && ex_f == ex_r, "exhausted flags, program:\n{}", src);
    }

    #[test]
    fn tightness_certificates_are_consistent_across_layers(src in arb_program()) {
        let p = parse(&src);
        let deps = analyze_dependencies(&p);
        let g = Grounder::new().ground(&p).expect("grounds");
        let ground_cert = ground_tight(&g);
        // Predicate-level tightness over-approximates the ground positive
        // dependency graph: it may miss tight groundings of recursive
        // programs but never the converse.
        if deps.pred_tight {
            prop_assert!(ground_cert, "pred-tight program ground non-tight:\n{src}");
        }
        // The solver carries exactly the ground certificate.
        prop_assert_eq!(Solver::new(&g).tight(), ground_cert, "program:\n{}", src);
    }
}
