//! Qualitative finite state machines for component behaviour models.
//!
//! Detailed (behavioural) error-propagation analysis needs per-component
//! transfer behaviour: *given qualitative inputs and an internal mode, what
//! qualitative output and next mode result?* A [`QualMachine`] is a Moore-ish
//! machine over named symbolic states with guarded transitions; guards test
//! named input variables against level names. Fault modes are modeled as
//! states the machine can be forced into (e.g. `stuck_at_open` — the
//! machine's state then no longer follows its transition relation, exactly
//! like Listing 2 of the paper).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::error::QrError;

/// A guard condition on one named input: `input == level`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Guard {
    /// Input variable name.
    pub input: String,
    /// Required level name of that input.
    pub level: String,
}

impl Guard {
    /// Build a guard `input == level`.
    #[must_use]
    pub fn new(input: impl Into<String>, level: impl Into<String>) -> Self {
        Guard {
            input: input.into(),
            level: level.into(),
        }
    }

    /// Evaluate the guard against an input assignment. A missing input
    /// fails the guard.
    #[must_use]
    pub fn holds(&self, inputs: &BTreeMap<String, String>) -> bool {
        inputs.get(&self.input).is_some_and(|l| *l == self.level)
    }
}

/// A guarded transition between machine states.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: String,
    /// All guards must hold (conjunction). Empty = unconditional.
    pub guards: Vec<Guard>,
    /// Target state.
    pub to: String,
}

/// A qualitative state machine with named states, guarded transitions and
/// per-state outputs.
///
/// # Example
///
/// ```
/// use cpsrisk_qr::statemachine::{QualMachine, Guard};
/// use std::collections::BTreeMap;
///
/// let mut valve = QualMachine::new("valve", "closed")?;
/// valve.add_state("open", [("flow", "positive")])?;
/// valve.set_output("closed", "flow", "zero");
/// valve.add_transition("closed", vec![Guard::new("cmd", "open")], "open")?;
/// valve.add_transition("open", vec![Guard::new("cmd", "close")], "closed")?;
///
/// let mut inputs = BTreeMap::new();
/// inputs.insert("cmd".to_string(), "open".to_string());
/// let next = valve.step("closed", &inputs)?;
/// assert_eq!(next, "open");
/// assert_eq!(valve.output("open", "flow"), Some("positive"));
/// # Ok::<(), cpsrisk_qr::QrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualMachine {
    name: String,
    initial: String,
    /// state -> (output variable -> level)
    states: BTreeMap<String, BTreeMap<String, String>>,
    transitions: Vec<Transition>,
    /// States representing fault modes; entered only by injection and, once
    /// entered, the machine ignores its transition relation (stuck).
    fault_states: Vec<String>,
}

impl QualMachine {
    /// Create a machine with its initial state (and no outputs yet).
    ///
    /// # Errors
    ///
    /// [`QrError::Empty`] if the name or initial state name is empty.
    pub fn new(name: impl Into<String>, initial: impl Into<String>) -> Result<Self, QrError> {
        let name = name.into();
        let initial = initial.into();
        if name.is_empty() {
            return Err(QrError::Empty("machine name"));
        }
        if initial.is_empty() {
            return Err(QrError::Empty("initial state name"));
        }
        let mut states = BTreeMap::new();
        states.insert(initial.clone(), BTreeMap::new());
        Ok(QualMachine {
            name,
            initial,
            states,
            transitions: Vec::new(),
            fault_states: Vec::new(),
        })
    }

    /// Machine name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Initial state name.
    #[must_use]
    pub fn initial(&self) -> &str {
        &self.initial
    }

    /// Declare a state with its outputs.
    ///
    /// # Errors
    ///
    /// [`QrError::Empty`] if the state name is empty.
    pub fn add_state<'a>(
        &mut self,
        state: impl Into<String>,
        outputs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<(), QrError> {
        let state = state.into();
        if state.is_empty() {
            return Err(QrError::Empty("state name"));
        }
        let entry = self.states.entry(state).or_default();
        for (var, lvl) in outputs {
            entry.insert(var.to_owned(), lvl.to_owned());
        }
        Ok(())
    }

    /// Declare a *fault-mode* state (e.g. `stuck_at_open`). Once injected,
    /// [`QualMachine::step`] keeps the machine in this state regardless of
    /// inputs — the qualitative semantics of a stuck-at fault.
    ///
    /// # Errors
    ///
    /// [`QrError::Empty`] if the state name is empty.
    pub fn add_fault_state<'a>(
        &mut self,
        state: impl Into<String>,
        outputs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<(), QrError> {
        let state = state.into();
        self.add_state(state.clone(), outputs)?;
        if !self.fault_states.contains(&state) {
            self.fault_states.push(state);
        }
        Ok(())
    }

    /// Set (or override) one output of a state, creating the state if new.
    pub fn set_output(
        &mut self,
        state: impl Into<String>,
        var: impl Into<String>,
        level: impl Into<String>,
    ) {
        self.states
            .entry(state.into())
            .or_default()
            .insert(var.into(), level.into());
    }

    /// Add a guarded transition.
    ///
    /// # Errors
    ///
    /// [`QrError::UnknownState`] if either endpoint is undeclared.
    pub fn add_transition(
        &mut self,
        from: impl Into<String>,
        guards: Vec<Guard>,
        to: impl Into<String>,
    ) -> Result<(), QrError> {
        let from = from.into();
        let to = to.into();
        for s in [&from, &to] {
            if !self.states.contains_key(s) {
                return Err(QrError::UnknownState(s.clone()));
            }
        }
        self.transitions.push(Transition { from, guards, to });
        Ok(())
    }

    /// All declared state names.
    #[must_use]
    pub fn state_names(&self) -> Vec<&str> {
        self.states.keys().map(String::as_str).collect()
    }

    /// The transition relation, in declaration order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The `(variable, level)` outputs of a state (empty for unknown states).
    #[must_use]
    pub fn state_outputs(&self, state: &str) -> Vec<(&str, &str)> {
        self.states
            .get(state)
            .map(|outs| outs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect())
            .unwrap_or_default()
    }

    /// Declared fault-mode states.
    #[must_use]
    pub fn fault_states(&self) -> &[String] {
        &self.fault_states
    }

    /// Is `state` a declared fault mode?
    #[must_use]
    pub fn is_fault_state(&self, state: &str) -> bool {
        self.fault_states.iter().any(|s| s == state)
    }

    /// The output level of `var` in `state`, if defined.
    #[must_use]
    pub fn output(&self, state: &str, var: &str) -> Option<&str> {
        self.states.get(state)?.get(var).map(String::as_str)
    }

    /// One synchronous step: the first transition (declaration order) from
    /// `state` whose guards all hold fires; otherwise the machine stays.
    /// Fault-mode states never leave themselves (stuck semantics, Listing 2).
    ///
    /// # Errors
    ///
    /// [`QrError::UnknownState`] if `state` is undeclared.
    pub fn step(&self, state: &str, inputs: &BTreeMap<String, String>) -> Result<String, QrError> {
        if !self.states.contains_key(state) {
            return Err(QrError::UnknownState(state.to_owned()));
        }
        if self.is_fault_state(state) {
            return Ok(state.to_owned());
        }
        for t in &self.transitions {
            if t.from == state && t.guards.iter().all(|g| g.holds(inputs)) {
                return Ok(t.to.clone());
            }
        }
        Ok(state.to_owned())
    }

    /// Run the machine for `steps` synchronous steps from its initial state
    /// under a constant input assignment, returning the visited state path
    /// (length `steps + 1`).
    ///
    /// # Errors
    ///
    /// Propagates [`QrError::UnknownState`] from stepping.
    pub fn run(
        &self,
        inputs: &BTreeMap<String, String>,
        steps: usize,
    ) -> Result<Vec<String>, QrError> {
        let mut path = vec![self.initial.clone()];
        for _ in 0..steps {
            let next = self.step(path.last().expect("path is non-empty"), inputs)?;
            path.push(next);
        }
        Ok(path)
    }
}

impl fmt::Display for QualMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine {} ({} states, {} transitions)",
            self.name,
            self.states.len(),
            self.transitions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    fn valve() -> QualMachine {
        let mut m = QualMachine::new("valve", "closed").unwrap();
        m.set_output("closed", "flow", "zero");
        m.add_state("open", [("flow", "positive")]).unwrap();
        m.add_fault_state("stuck_open", [("flow", "positive")])
            .unwrap();
        m.add_transition("closed", vec![Guard::new("cmd", "open")], "open")
            .unwrap();
        m.add_transition("open", vec![Guard::new("cmd", "close")], "closed")
            .unwrap();
        m
    }

    #[test]
    fn construction_validates_names() {
        assert!(QualMachine::new("", "s").is_err());
        assert!(QualMachine::new("m", "").is_err());
    }

    #[test]
    fn transitions_fire_on_guards() {
        let m = valve();
        assert_eq!(
            m.step("closed", &inputs(&[("cmd", "open")])).unwrap(),
            "open"
        );
        assert_eq!(
            m.step("closed", &inputs(&[("cmd", "close")])).unwrap(),
            "closed"
        );
        assert_eq!(m.step("closed", &inputs(&[])).unwrap(), "closed");
    }

    #[test]
    fn unknown_states_are_errors() {
        let m = valve();
        assert!(m.step("melted", &inputs(&[])).is_err());
        let mut m2 = valve();
        assert!(m2.add_transition("closed", vec![], "melted").is_err());
    }

    #[test]
    fn fault_states_are_absorbing() {
        let m = valve();
        // Even with a `close` command, a stuck-open valve stays stuck.
        assert_eq!(
            m.step("stuck_open", &inputs(&[("cmd", "close")])).unwrap(),
            "stuck_open"
        );
        assert_eq!(m.output("stuck_open", "flow"), Some("positive"));
        assert!(m.is_fault_state("stuck_open"));
        assert!(!m.is_fault_state("open"));
    }

    #[test]
    fn run_produces_full_path() {
        let m = valve();
        let path = m.run(&inputs(&[("cmd", "open")]), 3).unwrap();
        assert_eq!(path, vec!["closed", "open", "open", "open"]);
    }

    #[test]
    fn outputs_are_per_state() {
        let m = valve();
        assert_eq!(m.output("closed", "flow"), Some("zero"));
        assert_eq!(m.output("open", "flow"), Some("positive"));
        assert_eq!(m.output("open", "pressure"), None);
    }

    #[test]
    fn multi_guard_transitions_are_conjunctive() {
        let mut m = QualMachine::new("ctrl", "idle").unwrap();
        m.add_state("alarm", []).unwrap();
        m.add_transition(
            "idle",
            vec![Guard::new("level", "high"), Guard::new("trend", "inc")],
            "alarm",
        )
        .unwrap();
        assert_eq!(
            m.step("idle", &inputs(&[("level", "high")])).unwrap(),
            "idle"
        );
        assert_eq!(
            m.step("idle", &inputs(&[("level", "high"), ("trend", "inc")]))
                .unwrap(),
            "alarm"
        );
    }
}
