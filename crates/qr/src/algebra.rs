//! The qualitative sign algebra `{−, 0, +, ?}` and monotonic influences.
//!
//! Sign algebra is the coarsest useful qualitative abstraction: only the
//! direction of a quantity (or of its change) is kept. Qualitative addition
//! and multiplication follow the classic QR tables; `?` (ambiguous) encodes
//! that the result cannot be determined at this abstraction level — this is
//! exactly the over-approximation that guarantees no hazardous behaviour is
//! overlooked (spurious solutions are filtered later by refinement).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg};
use std::str::FromStr;

use crate::error::QrError;

/// A qualitative sign: negative, zero, positive, or ambiguous.
///
/// # Example
///
/// ```
/// use cpsrisk_qr::QSign;
/// assert_eq!(QSign::Pos + QSign::Pos, QSign::Pos);
/// assert_eq!(QSign::Pos + QSign::Neg, QSign::Ambiguous); // sum direction unknown
/// assert_eq!(QSign::Pos * QSign::Neg, QSign::Neg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QSign {
    /// Strictly negative.
    Neg,
    /// Zero.
    Zero,
    /// Strictly positive.
    Pos,
    /// Unknown direction (result of information loss under abstraction).
    Ambiguous,
}

impl QSign {
    /// Abstract a real number to its sign.
    ///
    /// Non-finite inputs abstract to [`QSign::Ambiguous`].
    #[must_use]
    pub fn of(x: f64) -> QSign {
        if !x.is_finite() {
            QSign::Ambiguous
        } else if x > 0.0 {
            QSign::Pos
        } else if x < 0.0 {
            QSign::Neg
        } else {
            QSign::Zero
        }
    }

    /// True if this sign is a refinement-compatible instance of `other`
    /// (everything is consistent with `Ambiguous`).
    #[must_use]
    pub fn consistent_with(self, other: QSign) -> bool {
        self == other || other == QSign::Ambiguous || self == QSign::Ambiguous
    }

    /// Least upper bound in the flat information order: equal signs stay,
    /// different definite signs become ambiguous.
    #[must_use]
    pub fn merge(self, other: QSign) -> QSign {
        if self == other {
            self
        } else {
            QSign::Ambiguous
        }
    }

    /// All definite (non-ambiguous) signs.
    pub const DEFINITE: [QSign; 3] = [QSign::Neg, QSign::Zero, QSign::Pos];
}

impl Neg for QSign {
    type Output = QSign;

    fn neg(self) -> QSign {
        match self {
            QSign::Neg => QSign::Pos,
            QSign::Zero => QSign::Zero,
            QSign::Pos => QSign::Neg,
            QSign::Ambiguous => QSign::Ambiguous,
        }
    }
}

impl Add for QSign {
    type Output = QSign;

    /// Qualitative addition: `+ ⊕ − = ?` because the magnitudes are unknown.
    fn add(self, rhs: QSign) -> QSign {
        use QSign::*;
        match (self, rhs) {
            (Zero, x) | (x, Zero) => x,
            (Pos, Pos) => Pos,
            (Neg, Neg) => Neg,
            _ => Ambiguous,
        }
    }
}

impl Mul for QSign {
    type Output = QSign;

    /// Qualitative multiplication: sign product; zero annihilates even `?`.
    fn mul(self, rhs: QSign) -> QSign {
        use QSign::*;
        match (self, rhs) {
            (Zero, _) | (_, Zero) => Zero,
            (Ambiguous, _) | (_, Ambiguous) => Ambiguous,
            (Pos, Pos) | (Neg, Neg) => Pos,
            (Pos, Neg) | (Neg, Pos) => Neg,
        }
    }
}

impl fmt::Display for QSign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QSign::Neg => "-",
            QSign::Zero => "0",
            QSign::Pos => "+",
            QSign::Ambiguous => "?",
        })
    }
}

impl FromStr for QSign {
    type Err = QrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "-" | "neg" => Ok(QSign::Neg),
            "0" | "zero" => Ok(QSign::Zero),
            "+" | "pos" => Ok(QSign::Pos),
            "?" | "amb" => Ok(QSign::Ambiguous),
            other => Err(QrError::Parse(other.to_owned())),
        }
    }
}

/// Direction of a monotonic influence between two quantities.
///
/// `M+` (increasing) propagates the sign unchanged; `M−` (decreasing)
/// inverts it. These are the edge labels of qualitative influence graphs
/// used in topology-based error propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Monotonic {
    /// `M+`: the target moves in the same direction as the source.
    Increasing,
    /// `M−`: the target moves in the opposite direction.
    Decreasing,
}

impl Monotonic {
    /// Propagate a source sign through this influence.
    #[must_use]
    pub fn apply(self, s: QSign) -> QSign {
        match self {
            Monotonic::Increasing => s,
            Monotonic::Decreasing => -s,
        }
    }
}

impl fmt::Display for Monotonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Monotonic::Increasing => "M+",
            Monotonic::Decreasing => "M-",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_of_reals() {
        assert_eq!(QSign::of(3.2), QSign::Pos);
        assert_eq!(QSign::of(-0.1), QSign::Neg);
        assert_eq!(QSign::of(0.0), QSign::Zero);
        assert_eq!(QSign::of(f64::NAN), QSign::Ambiguous);
        assert_eq!(QSign::of(f64::INFINITY), QSign::Ambiguous);
    }

    #[test]
    fn addition_table() {
        use QSign::*;
        assert_eq!(Pos + Pos, Pos);
        assert_eq!(Neg + Neg, Neg);
        assert_eq!(Pos + Neg, Ambiguous);
        assert_eq!(Zero + Pos, Pos);
        assert_eq!(Zero + Zero, Zero);
        assert_eq!(Ambiguous + Zero, Ambiguous);
        assert_eq!(Ambiguous + Pos, Ambiguous);
    }

    #[test]
    fn multiplication_table() {
        use QSign::*;
        assert_eq!(Pos * Pos, Pos);
        assert_eq!(Pos * Neg, Neg);
        assert_eq!(Neg * Neg, Pos);
        assert_eq!(Zero * Ambiguous, Zero);
        assert_eq!(Ambiguous * Pos, Ambiguous);
    }

    #[test]
    fn addition_is_commutative_and_sound() {
        // Soundness: for all reals a, b: sign(a+b) is consistent with sign(a) ⊕ sign(b).
        let samples = [-2.0, -1.0, 0.0, 1.0, 2.0];
        for &a in &samples {
            for &b in &samples {
                let qa = QSign::of(a);
                let qb = QSign::of(b);
                assert_eq!(qa + qb, qb + qa);
                assert!(
                    QSign::of(a + b).consistent_with(qa + qb),
                    "abstraction unsound for {a}+{b}"
                );
                assert!(QSign::of(a * b).consistent_with(qa * qb));
            }
        }
    }

    #[test]
    fn negation_is_involutive() {
        for s in [QSign::Neg, QSign::Zero, QSign::Pos, QSign::Ambiguous] {
            assert_eq!(-(-s), s);
        }
    }

    #[test]
    fn monotonic_influences() {
        assert_eq!(Monotonic::Increasing.apply(QSign::Pos), QSign::Pos);
        assert_eq!(Monotonic::Decreasing.apply(QSign::Pos), QSign::Neg);
        assert_eq!(Monotonic::Decreasing.apply(QSign::Zero), QSign::Zero);
        assert_eq!(Monotonic::Decreasing.to_string(), "M-");
    }

    #[test]
    fn merge_is_information_join() {
        assert_eq!(QSign::Pos.merge(QSign::Pos), QSign::Pos);
        assert_eq!(QSign::Pos.merge(QSign::Neg), QSign::Ambiguous);
        assert_eq!(QSign::Zero.merge(QSign::Ambiguous), QSign::Ambiguous);
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["-", "0", "+", "?"] {
            let q: QSign = s.parse().unwrap();
            assert_eq!(q.to_string(), s);
        }
    }
}
