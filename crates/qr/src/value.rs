//! Qualitative values, trends, and states.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

use crate::algebra::QSign;
use crate::domain::QualDomain;

/// A value of a [`QualDomain`]: a level index bound to its domain.
///
/// Two values compare only within the same domain; ordering follows the
/// level order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualValue {
    domain: QualDomain,
    level: usize,
}

impl QualValue {
    /// Bind a level index to a domain. Indices are clamped to the domain.
    #[must_use]
    pub fn new(domain: QualDomain, level: usize) -> Self {
        let level = level.min(domain.len().saturating_sub(1));
        QualValue { domain, level }
    }

    /// The owning domain.
    #[must_use]
    pub fn domain(&self) -> &QualDomain {
        &self.domain
    }

    /// Zero-based level index.
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Name of the level.
    #[must_use]
    pub fn level_name(&self) -> &str {
        &self.domain.levels()[self.level]
    }

    /// True if this is the lowest level of its domain.
    #[must_use]
    pub fn is_min(&self) -> bool {
        self.level == 0
    }

    /// True if this is the highest level of its domain.
    #[must_use]
    pub fn is_max(&self) -> bool {
        self.level + 1 == self.domain.len()
    }

    /// The next level up, saturating at the top.
    #[must_use]
    pub fn up(&self) -> QualValue {
        QualValue::new(
            self.domain.clone(),
            (self.level + 1).min(self.domain.len() - 1),
        )
    }

    /// The next level down, saturating at the bottom.
    #[must_use]
    pub fn down(&self) -> QualValue {
        QualValue::new(self.domain.clone(), self.level.saturating_sub(1))
    }

    /// Qualitative deviation from a reference value of the same domain:
    /// the sign of `self − reference` in level steps.
    #[must_use]
    pub fn deviation_from(&self, reference: &QualValue) -> QSign {
        match self.level.cmp(&reference.level) {
            Ordering::Less => QSign::Neg,
            Ordering::Equal => QSign::Zero,
            Ordering::Greater => QSign::Pos,
        }
    }
}

impl PartialEq for QualValue {
    fn eq(&self, other: &Self) -> bool {
        self.domain.name() == other.domain.name() && self.level == other.level
    }
}

impl Eq for QualValue {}

impl PartialOrd for QualValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.domain.name() == other.domain.name() {
            Some(self.level.cmp(&other.level))
        } else {
            None
        }
    }
}

impl fmt::Display for QualValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.domain.name(), self.level_name())
    }
}

/// Qualitative trend (direction of change) of a quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum QTrend {
    /// Decreasing.
    Dec,
    /// Steady.
    #[default]
    Std,
    /// Increasing.
    Inc,
}

impl QTrend {
    /// Trend corresponding to the sign of a derivative sample.
    /// Ambiguous derivatives conservatively map to [`QTrend::Std`].
    #[must_use]
    pub fn from_sign(s: QSign) -> QTrend {
        match s {
            QSign::Neg => QTrend::Dec,
            QSign::Pos => QTrend::Inc,
            QSign::Zero | QSign::Ambiguous => QTrend::Std,
        }
    }

    /// The sign this trend abstracts.
    #[must_use]
    pub fn sign(self) -> QSign {
        match self {
            QTrend::Dec => QSign::Neg,
            QTrend::Std => QSign::Zero,
            QTrend::Inc => QSign::Pos,
        }
    }
}

impl fmt::Display for QTrend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QTrend::Dec => "↓",
            QTrend::Std => "→",
            QTrend::Inc => "↑",
        })
    }
}

/// A qualitative state: magnitude level plus trend, the basic unit of
/// qualitative simulation (QSIM-style `⟨qval, qdir⟩` pairs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QState {
    /// Magnitude of the quantity.
    pub value: QualValue,
    /// Direction of change.
    pub trend: QTrend,
}

impl QState {
    /// Pair a magnitude with a trend.
    #[must_use]
    pub fn new(value: QualValue, trend: QTrend) -> Self {
        QState { value, trend }
    }

    /// The qualitative successor states under continuity: a quantity can
    /// only move to an adjacent level, and only in the direction of its
    /// trend (QSIM transition rules for the closed-below interval
    /// convention).
    #[must_use]
    pub fn successors(&self) -> Vec<QState> {
        let mut out = vec![self.clone()];
        match self.trend {
            QTrend::Inc if !self.value.is_max() => {
                out.push(QState::new(self.value.up(), QTrend::Inc));
                out.push(QState::new(self.value.up(), QTrend::Std));
            }
            QTrend::Dec if !self.value.is_min() => {
                out.push(QState::new(self.value.down(), QTrend::Dec));
                out.push(QState::new(self.value.down(), QTrend::Std));
            }
            QTrend::Std => {
                out.push(QState::new(self.value.clone(), QTrend::Inc));
                out.push(QState::new(self.value.clone(), QTrend::Dec));
            }
            _ => {}
        }
        out
    }
}

impl fmt::Display for QState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{} {}⟩", self.value, self.trend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::QualDomain;

    fn dom() -> QualDomain {
        QualDomain::from_landmarks("level", &["low", "normal", "high"], &[0.2, 0.8]).unwrap()
    }

    #[test]
    fn value_ordering_within_domain() {
        let d = dom();
        let low = d.value("low").unwrap();
        let high = d.value("high").unwrap();
        assert!(low < high);
        assert_eq!(low.deviation_from(&high), QSign::Neg);
        assert_eq!(high.deviation_from(&low), QSign::Pos);
        assert_eq!(low.deviation_from(&low), QSign::Zero);
    }

    #[test]
    fn values_of_different_domains_are_incomparable() {
        let a = dom().value("low").unwrap();
        let other = QualDomain::symbolic("mode", &["x", "y"]).unwrap();
        let b = QualValue::new(other, 0);
        assert_eq!(a.partial_cmp(&b), None);
        assert_ne!(a, b);
    }

    #[test]
    fn up_down_saturate() {
        let d = dom();
        let top = d.value("high").unwrap();
        assert_eq!(top.up(), top);
        let bot = d.value("low").unwrap();
        assert_eq!(bot.down(), bot);
        assert_eq!(bot.up().level_name(), "normal");
    }

    #[test]
    fn constructor_clamps_out_of_range_levels() {
        let v = QualValue::new(dom(), 99);
        assert_eq!(v.level_name(), "high");
    }

    #[test]
    fn trend_sign_roundtrip() {
        for t in [QTrend::Dec, QTrend::Std, QTrend::Inc] {
            assert_eq!(QTrend::from_sign(t.sign()), t);
        }
        assert_eq!(QTrend::from_sign(QSign::Ambiguous), QTrend::Std);
    }

    #[test]
    fn successors_respect_continuity() {
        let d = dom();
        let s = QState::new(d.value("normal").unwrap(), QTrend::Inc);
        let succ = s.successors();
        // Can stay, or move up one level; never jump to `low`.
        assert!(succ.iter().all(|q| q.value.level_name() != "low"));
        assert!(succ.iter().any(|q| q.value.level_name() == "high"));

        let top = QState::new(d.value("high").unwrap(), QTrend::Inc);
        assert_eq!(top.successors().len(), 1, "saturated at the top landmark");
    }

    #[test]
    fn state_display() {
        let d = dom();
        let s = QState::new(d.value("high").unwrap(), QTrend::Inc);
        assert_eq!(s.to_string(), "⟨level=high ↑⟩");
    }
}
