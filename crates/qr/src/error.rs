//! Error type for the qualitative-reasoning kernel.

use std::fmt;

/// Errors produced by qualitative-domain construction and abstraction.
#[derive(Debug, Clone, PartialEq)]
pub enum QrError {
    /// The landmark sequence is not strictly increasing.
    UnorderedLandmarks {
        /// Index of the offending landmark.
        index: usize,
    },
    /// The number of level names does not match the landmark count + 1.
    LevelCountMismatch {
        /// Number of level names supplied.
        levels: usize,
        /// Number of landmarks supplied.
        landmarks: usize,
    },
    /// A numeric sample was not a finite number.
    NonFiniteSample(f64),
    /// A level name or index was not found in the domain.
    UnknownLevel(String),
    /// Parsing a qualitative value from text failed.
    Parse(String),
    /// A qualitative state machine referenced an undeclared state.
    UnknownState(String),
    /// A machine or domain was constructed empty where at least one entry is required.
    Empty(&'static str),
}

impl fmt::Display for QrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrError::UnorderedLandmarks { index } => {
                write!(
                    f,
                    "landmarks must be strictly increasing (violated at index {index})"
                )
            }
            QrError::LevelCountMismatch { levels, landmarks } => write!(
                f,
                "expected {} level names for {} landmarks, got {}",
                landmarks + 1,
                landmarks,
                levels
            ),
            QrError::NonFiniteSample(v) => write!(f, "sample {v} is not a finite number"),
            QrError::UnknownLevel(name) => write!(f, "unknown qualitative level `{name}`"),
            QrError::Parse(s) => write!(f, "cannot parse qualitative value from `{s}`"),
            QrError::UnknownState(s) => write!(f, "unknown machine state `{s}`"),
            QrError::Empty(what) => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for QrError {}
