//! Landmark-partitioned qualitative domains.
//!
//! A [`QualDomain`] partitions a continuous quantity (water level, CPU load,
//! message latency, …) into named, ordered intervals separated by
//! *landmarks*. Abstraction maps any finite sample to the level whose
//! interval contains it; landmark values themselves belong to the interval
//! above them (closed-below convention), so abstraction is total and
//! deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::error::QrError;
use crate::value::QualValue;

/// An ordered categorical domain over a continuous quantity.
///
/// # Example
///
/// ```
/// use cpsrisk_qr::domain::QualDomain;
///
/// let load = QualDomain::from_landmarks(
///     "cpu_load",
///     &["low", "medium", "high", "overloaded"],
///     &[0.3, 0.7, 0.95],
/// )?;
/// assert_eq!(load.abstract_value(0.1)?.level_name(), "low");
/// assert_eq!(load.abstract_value(0.95)?.level_name(), "overloaded");
/// # Ok::<(), cpsrisk_qr::QrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualDomain {
    name: String,
    levels: Arc<[String]>,
    landmarks: Arc<[f64]>,
}

impl QualDomain {
    /// Build a domain from `n+1` level names and `n` strictly increasing
    /// landmarks.
    ///
    /// # Errors
    ///
    /// * [`QrError::LevelCountMismatch`] if `levels.len() != landmarks.len() + 1`.
    /// * [`QrError::UnorderedLandmarks`] if the landmarks are not strictly increasing.
    /// * [`QrError::NonFiniteSample`] if a landmark is not finite.
    /// * [`QrError::Empty`] if no level name is given.
    pub fn from_landmarks(
        name: impl Into<String>,
        levels: &[&str],
        landmarks: &[f64],
    ) -> Result<Self, QrError> {
        if levels.is_empty() {
            return Err(QrError::Empty("level list"));
        }
        if levels.len() != landmarks.len() + 1 {
            return Err(QrError::LevelCountMismatch {
                levels: levels.len(),
                landmarks: landmarks.len(),
            });
        }
        for (i, w) in landmarks.windows(2).enumerate() {
            if w[0] >= w[1] || w[0].is_nan() || w[1].is_nan() {
                return Err(QrError::UnorderedLandmarks { index: i + 1 });
            }
        }
        if let Some(&bad) = landmarks.iter().find(|l| !l.is_finite()) {
            return Err(QrError::NonFiniteSample(bad));
        }
        Ok(QualDomain {
            name: name.into(),
            levels: levels.iter().map(|s| (*s).to_owned()).collect(),
            landmarks: landmarks.to_vec().into(),
        })
    }

    /// A purely symbolic domain with no numeric landmarks (e.g. an
    /// enumerated failure-mode domain). Abstraction from numbers is not
    /// available; levels are addressed by name or index.
    ///
    /// # Errors
    ///
    /// [`QrError::Empty`] if `levels` is empty.
    pub fn symbolic(name: impl Into<String>, levels: &[&str]) -> Result<Self, QrError> {
        if levels.is_empty() {
            return Err(QrError::Empty("level list"));
        }
        Ok(QualDomain {
            name: name.into(),
            levels: levels.iter().map(|s| (*s).to_owned()).collect(),
            landmarks: Vec::new().into(),
        })
    }

    /// Domain name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered level names.
    #[must_use]
    pub fn levels(&self) -> &[String] {
        &self.levels
    }

    /// Landmark values separating the levels (empty for symbolic domains).
    #[must_use]
    pub fn landmarks(&self) -> &[f64] {
        &self.landmarks
    }

    /// Number of levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if the domain has no levels (never true for constructed domains).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Abstract a numeric sample into its qualitative level.
    ///
    /// Landmark values map to the level *above* them: with landmarks
    /// `[0.2, 0.8]`, the sample `0.8` abstracts to the top level.
    ///
    /// # Errors
    ///
    /// [`QrError::NonFiniteSample`] if `x` is NaN or infinite.
    pub fn abstract_value(&self, x: f64) -> Result<QualValue, QrError> {
        if !x.is_finite() {
            return Err(QrError::NonFiniteSample(x));
        }
        let idx = self.landmarks.iter().take_while(|&&l| x >= l).count();
        Ok(QualValue::new(self.clone(), idx))
    }

    /// Look up a level index by name.
    ///
    /// # Errors
    ///
    /// [`QrError::UnknownLevel`] if no level has that name.
    pub fn level_index(&self, name: &str) -> Result<usize, QrError> {
        self.levels
            .iter()
            .position(|l| l == name)
            .ok_or_else(|| QrError::UnknownLevel(name.to_owned()))
    }

    /// Construct a value of this domain by level name.
    ///
    /// # Errors
    ///
    /// [`QrError::UnknownLevel`] if no level has that name.
    pub fn value(&self, level: &str) -> Result<QualValue, QrError> {
        Ok(QualValue::new(self.clone(), self.level_index(level)?))
    }

    /// The numeric interval `[lo, hi)` covered by a level index
    /// (unbounded ends are `-inf`/`+inf`). Returns `None` for out-of-range
    /// indices or symbolic domains.
    #[must_use]
    pub fn interval(&self, level: usize) -> Option<(f64, f64)> {
        if level >= self.levels.len() {
            return None;
        }
        let lo = if level == 0 {
            f64::NEG_INFINITY
        } else {
            self.landmarks[level - 1]
        };
        let hi = if level == self.landmarks.len() {
            f64::INFINITY
        } else {
            self.landmarks[level]
        };
        Some((lo, hi))
    }
}

impl fmt::Display for QualDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{}>", self.name, self.levels.join("|"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level_domain() -> QualDomain {
        QualDomain::from_landmarks("level", &["low", "normal", "high"], &[0.2, 0.8]).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(matches!(
            QualDomain::from_landmarks("d", &["a", "b"], &[1.0, 2.0]),
            Err(QrError::LevelCountMismatch { .. })
        ));
        assert!(matches!(
            QualDomain::from_landmarks("d", &["a", "b", "c"], &[2.0, 1.0]),
            Err(QrError::UnorderedLandmarks { index: 1 })
        ));
        assert!(matches!(
            QualDomain::from_landmarks("d", &[], &[]),
            Err(QrError::Empty(_))
        ));
        assert!(matches!(
            QualDomain::from_landmarks("d", &["a", "b"], &[f64::NAN]),
            Err(QrError::UnorderedLandmarks { .. }) | Err(QrError::NonFiniteSample(_))
        ));
    }

    #[test]
    fn abstraction_maps_to_correct_cluster() {
        let d = level_domain();
        assert_eq!(d.abstract_value(-5.0).unwrap().level(), 0);
        assert_eq!(d.abstract_value(0.19).unwrap().level(), 0);
        assert_eq!(d.abstract_value(0.2).unwrap().level(), 1);
        assert_eq!(d.abstract_value(0.5).unwrap().level(), 1);
        assert_eq!(d.abstract_value(0.8).unwrap().level(), 2);
        assert_eq!(d.abstract_value(100.0).unwrap().level(), 2);
    }

    #[test]
    fn abstraction_rejects_non_finite() {
        let d = level_domain();
        assert!(d.abstract_value(f64::NAN).is_err());
        assert!(d.abstract_value(f64::INFINITY).is_err());
    }

    #[test]
    fn intervals_cover_the_real_line() {
        let d = level_domain();
        assert_eq!(d.interval(0), Some((f64::NEG_INFINITY, 0.2)));
        assert_eq!(d.interval(1), Some((0.2, 0.8)));
        assert_eq!(d.interval(2), Some((0.8, f64::INFINITY)));
        assert_eq!(d.interval(3), None);
    }

    #[test]
    fn value_by_name() {
        let d = level_domain();
        assert_eq!(d.value("normal").unwrap().level(), 1);
        assert!(d.value("flooded").is_err());
    }

    #[test]
    fn symbolic_domain_has_no_landmarks() {
        let d =
            QualDomain::symbolic("failure_mode", &["ok", "stuck_open", "stuck_closed"]).unwrap();
        assert_eq!(d.len(), 3);
        assert!(d.landmarks().is_empty());
        assert_eq!(d.value("stuck_open").unwrap().level(), 1);
        assert!(QualDomain::symbolic("x", &[]).is_err());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(level_domain().to_string(), "level<low|normal|high>");
    }
}
