//! Qualitative traces: abstractions of numeric time series.
//!
//! The plant simulator produces numeric trajectories; requirement checking
//! and behavioural EPA work on their qualitative abstraction. A
//! [`QualTrace`] is the run-length-compressed sequence of qualitative states
//! a signal passes through, together with the sample indices at which each
//! episode starts.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::algebra::QSign;
use crate::domain::QualDomain;
use crate::error::QrError;
use crate::value::{QState, QTrend, QualValue};

/// One maximal episode of constant qualitative state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Qualitative state held during the episode.
    pub state: QState,
    /// Index of the first sample of the episode.
    pub start: usize,
    /// Number of consecutive samples in the episode.
    pub len: usize,
}

/// A qualitative abstraction of a sampled signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualTrace {
    domain: QualDomain,
    episodes: Vec<Episode>,
    samples: usize,
}

impl QualTrace {
    /// Abstract a sampled numeric signal over `domain`.
    ///
    /// Trends are computed from first differences; a difference of exactly
    /// zero is a steady trend. The first sample's trend is steady.
    ///
    /// # Errors
    ///
    /// * [`QrError::Empty`] if `samples` is empty.
    /// * [`QrError::NonFiniteSample`] if any sample is not finite.
    pub fn abstract_signal(domain: &QualDomain, samples: &[f64]) -> Result<Self, QrError> {
        if samples.is_empty() {
            return Err(QrError::Empty("sample list"));
        }
        let mut episodes: Vec<Episode> = Vec::new();
        let mut prev = None;
        for (i, &x) in samples.iter().enumerate() {
            let value = domain.abstract_value(x)?;
            let trend = match prev {
                None => QTrend::Std,
                Some(p) => QTrend::from_sign(QSign::of(x - p)),
            };
            prev = Some(x);
            let state = QState::new(value, trend);
            match episodes.last_mut() {
                Some(ep) if ep.state == state => ep.len += 1,
                _ => episodes.push(Episode {
                    state,
                    start: i,
                    len: 1,
                }),
            }
        }
        Ok(QualTrace {
            domain: domain.clone(),
            episodes,
            samples: samples.len(),
        })
    }

    /// The abstraction domain.
    #[must_use]
    pub fn domain(&self) -> &QualDomain {
        &self.domain
    }

    /// Run-length-compressed episodes, in time order.
    #[must_use]
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Number of raw samples abstracted.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// The qualitative state at a raw sample index, if within range.
    #[must_use]
    pub fn state_at(&self, sample: usize) -> Option<&QState> {
        self.episodes
            .iter()
            .find(|ep| sample >= ep.start && sample < ep.start + ep.len)
            .map(|ep| &ep.state)
    }

    /// True if the trace ever reaches the given level.
    #[must_use]
    pub fn ever_reaches(&self, level_name: &str) -> bool {
        self.episodes
            .iter()
            .any(|ep| ep.state.value.level_name() == level_name)
    }

    /// The sequence of distinct magnitude levels visited (trend changes
    /// within a level are merged). This is the landmark-crossing history.
    #[must_use]
    pub fn level_path(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for ep in &self.episodes {
            let name = ep.state.value.level_name();
            if out.last() != Some(&name) {
                out.push(name);
            }
        }
        out
    }

    /// First sample index at which the signal enters the given level, if ever.
    #[must_use]
    pub fn first_entry(&self, level_name: &str) -> Option<usize> {
        self.episodes
            .iter()
            .find(|ep| ep.state.value.level_name() == level_name)
            .map(|ep| ep.start)
    }

    /// The qualitative value sequence expanded back to one entry per sample
    /// (useful for aligning multiple traces in requirement monitors).
    #[must_use]
    pub fn per_sample_values(&self) -> Vec<QualValue> {
        let mut out = Vec::with_capacity(self.samples);
        for ep in &self.episodes {
            for _ in 0..ep.len {
                out.push(ep.state.value.clone());
            }
        }
        out
    }
}

impl fmt::Display for QualTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .episodes
            .iter()
            .map(|ep| format!("{}×{}", ep.state, ep.len))
            .collect();
        write!(f, "[{}]", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> QualDomain {
        QualDomain::from_landmarks("level", &["low", "normal", "high"], &[0.2, 0.8]).unwrap()
    }

    #[test]
    fn empty_signal_is_rejected() {
        assert!(matches!(
            QualTrace::abstract_signal(&dom(), &[]),
            Err(QrError::Empty(_))
        ));
    }

    #[test]
    fn rising_signal_crosses_landmarks_in_order() {
        let xs: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
        let t = QualTrace::abstract_signal(&dom(), &xs).unwrap();
        assert_eq!(t.level_path(), vec!["low", "normal", "high"]);
        assert!(t.ever_reaches("high"));
        assert_eq!(t.first_entry("high"), Some(8)); // x = 0.8 is the 9th sample
        assert_eq!(t.sample_count(), 11);
    }

    #[test]
    fn constant_signal_is_one_episode() {
        let t = QualTrace::abstract_signal(&dom(), &[0.5; 20]).unwrap();
        assert_eq!(t.episodes().len(), 1);
        assert_eq!(t.episodes()[0].len, 20);
        assert_eq!(t.episodes()[0].state.trend, QTrend::Std);
    }

    #[test]
    fn trend_changes_split_episodes_within_a_level() {
        // Up then down, staying inside `normal`.
        let t = QualTrace::abstract_signal(&dom(), &[0.4, 0.5, 0.6, 0.5, 0.4]).unwrap();
        assert_eq!(t.level_path(), vec!["normal"]);
        assert!(t.episodes().len() >= 2, "trend flip splits the episode");
    }

    #[test]
    fn state_at_addresses_raw_samples() {
        let t = QualTrace::abstract_signal(&dom(), &[0.1, 0.1, 0.5, 0.9]).unwrap();
        assert_eq!(t.state_at(0).unwrap().value.level_name(), "low");
        assert_eq!(t.state_at(3).unwrap().value.level_name(), "high");
        assert!(t.state_at(4).is_none());
    }

    #[test]
    fn per_sample_expansion_matches_length() {
        let xs = [0.1, 0.3, 0.9, 0.9, 0.1];
        let t = QualTrace::abstract_signal(&dom(), &xs).unwrap();
        let vals = t.per_sample_values();
        assert_eq!(vals.len(), xs.len());
        assert_eq!(vals[2].level_name(), "high");
    }

    #[test]
    fn non_finite_sample_is_an_error() {
        assert!(QualTrace::abstract_signal(&dom(), &[0.1, f64::NAN]).is_err());
    }
}
