//! The uniform five-level qualitative scale used across the framework.
//!
//! The O-RA risk standard and the paper use the same ordered categories for
//! every risk attribute: *very low, low, medium, high, very high*. The scale
//! is a bounded total order, so it supports `min`/`max` (qualitative
//! conjunction/disjunction), saturating shifts (used by sensitivity analysis)
//! and conversion to/from indices (used by the risk matrices).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::QrError;

/// A five-level ordered qualitative category: `VL < L < M < H < VH`.
///
/// # Example
///
/// ```
/// use cpsrisk_qr::Qual;
/// assert!(Qual::VeryHigh > Qual::Medium);
/// assert_eq!(Qual::Low.bump(2), Qual::High);
/// assert_eq!("VH".parse::<Qual>()?, Qual::VeryHigh);
/// # Ok::<(), cpsrisk_qr::QrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Qual {
    /// Very low.
    VeryLow,
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
    /// Very high.
    VeryHigh,
}

/// Convenience aliases matching the paper's table notation.
impl Qual {
    /// All levels in ascending order.
    pub const ALL: [Qual; 5] = [
        Qual::VeryLow,
        Qual::Low,
        Qual::Medium,
        Qual::High,
        Qual::VeryHigh,
    ];

    /// Zero-based index of the level on the scale (`VL` is 0, `VH` is 4).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Qual::VeryLow => 0,
            Qual::Low => 1,
            Qual::Medium => 2,
            Qual::High => 3,
            Qual::VeryHigh => 4,
        }
    }

    /// Level for a zero-based index, if within the scale.
    #[must_use]
    pub fn from_index(i: usize) -> Option<Qual> {
        Qual::ALL.get(i).copied()
    }

    /// Saturating shift up (`steps > 0`) or down (`steps < 0`) the scale.
    ///
    /// Used by qualitative sensitivity analysis to perturb a factor by one
    /// or more categories without leaving the scale.
    #[must_use]
    pub fn bump(self, steps: i32) -> Qual {
        let idx = (self.index() as i32 + steps).clamp(0, 4) as usize;
        Qual::from_index(idx).expect("clamped index is in range")
    }

    /// Short notation used in the paper's tables (`VL`, `L`, `M`, `H`, `VH`).
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            Qual::VeryLow => "VL",
            Qual::Low => "L",
            Qual::Medium => "M",
            Qual::High => "H",
            Qual::VeryHigh => "VH",
        }
    }

    /// Qualitative disjunction: the worse (larger) of the two levels.
    #[must_use]
    pub fn join(self, other: Qual) -> Qual {
        self.max(other)
    }

    /// Qualitative conjunction: the better (smaller) of the two levels.
    #[must_use]
    pub fn meet(self, other: Qual) -> Qual {
        self.min(other)
    }

    /// Distance between two levels in category steps.
    #[must_use]
    pub fn distance(self, other: Qual) -> usize {
        self.index().abs_diff(other.index())
    }
}

impl Default for Qual {
    /// The scale midpoint — the neutral prior for an unassessed factor.
    fn default() -> Self {
        Qual::Medium
    }
}

impl fmt::Display for Qual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

impl FromStr for Qual {
    type Err = QrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "VL" | "VERY LOW" | "VERY_LOW" | "VERYLOW" => Ok(Qual::VeryLow),
            "L" | "LOW" => Ok(Qual::Low),
            "M" | "MEDIUM" | "MED" => Ok(Qual::Medium),
            "H" | "HIGH" => Ok(Qual::High),
            "VH" | "VERY HIGH" | "VERY_HIGH" | "VERYHIGH" => Ok(Qual::VeryHigh),
            other => Err(QrError::Parse(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_totally_ordered() {
        for w in Qual::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn index_roundtrip() {
        for q in Qual::ALL {
            assert_eq!(Qual::from_index(q.index()), Some(q));
        }
        assert_eq!(Qual::from_index(5), None);
    }

    #[test]
    fn bump_saturates_at_both_ends() {
        assert_eq!(Qual::VeryLow.bump(-1), Qual::VeryLow);
        assert_eq!(Qual::VeryHigh.bump(3), Qual::VeryHigh);
        assert_eq!(Qual::Medium.bump(-2), Qual::VeryLow);
        assert_eq!(Qual::Medium.bump(0), Qual::Medium);
    }

    #[test]
    fn parse_accepts_paper_notation() {
        for q in Qual::ALL {
            assert_eq!(q.abbrev().parse::<Qual>().unwrap(), q);
        }
        assert_eq!("very high".parse::<Qual>().unwrap(), Qual::VeryHigh);
        assert!("gigantic".parse::<Qual>().is_err());
    }

    #[test]
    fn join_and_meet_are_lattice_ops() {
        assert_eq!(Qual::Low.join(Qual::High), Qual::High);
        assert_eq!(Qual::Low.meet(Qual::High), Qual::Low);
        for a in Qual::ALL {
            assert_eq!(a.join(a), a);
            assert_eq!(a.meet(a), a);
        }
    }

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(Qual::VeryLow.distance(Qual::VeryHigh), 4);
        assert_eq!(Qual::VeryHigh.distance(Qual::VeryLow), 4);
        assert_eq!(Qual::Medium.distance(Qual::Medium), 0);
    }

    #[test]
    fn display_matches_abbrev() {
        assert_eq!(Qual::VeryLow.to_string(), "VL");
        assert_eq!(format!("{}", Qual::High), "H");
    }
}
