#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Qualitative reasoning (QR) kernel for the `cpsrisk` framework.
//!
//! Qualitative modeling *partitions continuous domains into clusters of
//! identical or similar behaviour along landmarks* and represents them by a
//! discrete model at the granularity of those clusters (Forbus, *Qualitative
//! Process Theory*). This crate provides the discrete building blocks the
//! rest of the framework reasons over:
//!
//! * [`Qual`] — the uniform five-level ordered scale (`VL`..`VH`) used by the
//!   O-RA risk standard and throughout the paper,
//! * [`QSign`] — the classic sign algebra `{−, 0, +, ?}` with qualitative
//!   arithmetic,
//! * [`domain::QualDomain`] — landmark-partitioned continuous domains with
//!   abstraction from `f64` samples,
//! * [`value::QState`] — qualitative magnitude + trend pairs,
//! * [`trace::QualTrace`] — qualitative abstractions of numeric time series,
//! * [`statemachine::QualMachine`] — qualitative finite state machines used
//!   for component behaviour models in error-propagation analysis.
//!
//! # Example
//!
//! ```
//! use cpsrisk_qr::{Qual, domain::QualDomain};
//!
//! // A water level domain partitioned at the landmarks 0.2 and 0.8.
//! let dom = QualDomain::from_landmarks("level", &["low", "normal", "high"], &[0.2, 0.8])?;
//! assert_eq!(dom.abstract_value(0.5)?.level_name(), "normal");
//! assert!(Qual::High > Qual::Low);
//! # Ok::<(), cpsrisk_qr::QrError>(())
//! ```

pub mod algebra;
pub mod domain;
pub mod error;
pub mod scale;
pub mod statemachine;
pub mod trace;
pub mod value;

pub use algebra::QSign;
pub use domain::QualDomain;
pub use error::QrError;
pub use scale::Qual;
pub use statemachine::QualMachine;
pub use trace::QualTrace;
pub use value::{QState, QTrend, QualValue};
