//! Property-based tests for the QR kernel's abstraction invariants.

use proptest::prelude::*;

use cpsrisk_qr::{QSign, QualDomain, QualTrace};

fn domain() -> QualDomain {
    QualDomain::from_landmarks("x", &["a", "b", "c", "d"], &[-1.0, 0.0, 1.0]).unwrap()
}

proptest! {
    #[test]
    fn abstraction_is_monotone(x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let d = domain();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let vl = d.abstract_value(lo).unwrap();
        let vh = d.abstract_value(hi).unwrap();
        prop_assert!(vl.level() <= vh.level());
    }

    #[test]
    fn abstraction_is_idempotent_within_an_interval(x in -10.0f64..10.0) {
        // Any point of the interval of x's level abstracts to the same level.
        let d = domain();
        let v = d.abstract_value(x).unwrap();
        let (lo, hi) = d.interval(v.level()).unwrap();
        let mid = if lo.is_infinite() { hi - 1.0 } else if hi.is_infinite() { lo + 1.0 } else { (lo + hi) / 2.0 };
        prop_assert_eq!(d.abstract_value(mid).unwrap().level(), v.level());
    }

    #[test]
    fn trace_episodes_partition_the_samples(samples in prop::collection::vec(-5.0f64..5.0, 1..60)) {
        let d = domain();
        let t = QualTrace::abstract_signal(&d, &samples).unwrap();
        // Episode lengths sum to the sample count, start offsets chain.
        let total: usize = t.episodes().iter().map(|e| e.len).sum();
        prop_assert_eq!(total, samples.len());
        let mut expected_start = 0;
        for ep in t.episodes() {
            prop_assert_eq!(ep.start, expected_start);
            prop_assert!(ep.len > 0);
            expected_start += ep.len;
        }
        // Adjacent episodes hold different states (maximality of RLE).
        for w in t.episodes().windows(2) {
            prop_assert_ne!(&w[0].state, &w[1].state);
        }
        // Per-sample expansion matches lengths and the state_at lookup.
        let per = t.per_sample_values();
        prop_assert_eq!(per.len(), samples.len());
        for (i, v) in per.iter().enumerate() {
            prop_assert_eq!(&t.state_at(i).unwrap().value, v);
        }
    }

    #[test]
    fn trace_levels_are_sound_abstractions(samples in prop::collection::vec(-5.0f64..5.0, 1..40)) {
        let d = domain();
        let t = QualTrace::abstract_signal(&d, &samples).unwrap();
        for (i, &x) in samples.iter().enumerate() {
            let direct = d.abstract_value(x).unwrap();
            prop_assert_eq!(t.state_at(i).unwrap().value.level(), direct.level());
        }
    }

    #[test]
    fn sign_algebra_abstraction_soundness(a in -100i64..100, b in -100i64..100) {
        let (fa, fb) = (a as f64, b as f64);
        let qa = QSign::of(fa);
        let qb = QSign::of(fb);
        prop_assert!(QSign::of(fa + fb).consistent_with(qa + qb));
        prop_assert!(QSign::of(fa * fb).consistent_with(qa * qb));
        prop_assert!(QSign::of(-fa).consistent_with(-qa));
    }

    #[test]
    fn sign_multiplication_is_associative_and_commutative(
        xs in prop::collection::vec(0usize..4, 3..4)
    ) {
        let all = [QSign::Neg, QSign::Zero, QSign::Pos, QSign::Ambiguous];
        let (a, b, c) = (all[xs[0]], all[xs[1]], all[xs[2]]);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }
}
