//! End-to-end tests of the `cpsrisk` command-line front-end.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_cpsrisk"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn run_with_stdin(args: &[&str], input: &str) -> (String, String, bool) {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cpsrisk"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn table2_prints_the_paper_rows() {
    let (stdout, _, ok) = run(&["table2"]);
    assert!(ok);
    for label in ["S1", "S2", "S3", "S4", "S5", "S6", "S7"] {
        assert!(stdout.contains(label), "missing {label}");
    }
    assert_eq!(
        stdout.matches("Violated").count(),
        7,
        "4 R1 + 3 R2 verdicts"
    );
}

#[test]
fn assess_reports_hazards_and_a_recommendation() {
    let (stdout, _, ok) = run(&["assess"]);
    assert!(ok);
    assert!(stdout.contains("16 scenarios, 12 hazards"));
    assert!(stdout.contains("recommendation:"));
    assert!(stdout.contains("phase 1"));
}

#[test]
fn assess_json_is_parseable() {
    let (stdout, _, ok) = run(&["assess", "--json"]);
    assert!(ok);
    let parsed: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert!(parsed.as_array().is_some_and(|a| a.len() == 12));
}

#[test]
fn mitigated_assessment_blocks_the_workstation() {
    let (stdout, _, ok) = run(&["assess", "--mitigated"]);
    assert!(ok);
    assert!(stdout.contains("8 scenarios, 4 hazards"));
    assert!(!stdout.contains("f4"));
}

#[test]
fn simulate_reports_verdicts() {
    let (stdout, _, ok) = run(&["simulate", "f2,f3"]);
    assert!(ok);
    assert!(stdout.contains("R1 (no overflow):        VIOLATED"));
    assert!(stdout.contains("R2 (alert on overflow):  VIOLATED"));
    assert!(stdout.contains("overflow at t ="));
    let (nominal, _, ok2) = run(&["simulate", ""]);
    assert!(ok2);
    assert!(nominal.contains("satisfied"));
}

#[test]
fn solve_runs_a_program_file() {
    let dir = std::env::temp_dir().join("cpsrisk_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("p.lp");
    std::fs::write(&file, "{ a; b }. :- a, b.").unwrap();
    let (stdout, _, ok) = run(&["solve", file.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("3 model(s)"));
}

#[test]
fn solve_gate_rejects_programs_with_lint_errors() {
    let dir = std::env::temp_dir().join("cpsrisk_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("unsafe.lp");
    // Unsafe variable: lint error A003 must abort the solve.
    std::fs::write(&file, "q(a).\np(X, Y) :- q(X).").unwrap();
    let (_, stderr, ok) = run(&["solve", file.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("error[A003]"), "{stderr}");
    assert!(stderr.contains("lint errors"), "{stderr}");
}

#[test]
fn solve_gate_passes_warnings_to_stderr() {
    let dir = std::env::temp_dir().join("cpsrisk_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("warny.lp");
    // `ghost` is never defined: warning A001, but the program still solves.
    std::fs::write(&file, "a :- ghost.\n{ b }.").unwrap();
    let (stdout, stderr, ok) = run(&["solve", file.to_str().unwrap()]);
    assert!(ok, "warnings do not block: {stderr}");
    assert!(stderr.contains("warning[A001]"), "{stderr}");
    assert!(stdout.contains("2 model(s)"), "{stdout}");
}

#[test]
fn lint_command_checks_the_case_study() {
    let (stdout, _, ok) = run(&["lint"]);
    assert!(ok, "shipped case study must be lint-clean");
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
    assert!(stdout.contains("[M005]"), "advisory model findings shown");
    assert!(
        stdout.contains("[A008]"),
        "advisory encoding findings shown"
    );
}

#[test]
fn lint_command_checks_program_files() {
    let examples = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples");
    let (stdout, _, ok) = run(&[
        "lint",
        &format!("{examples}/listing1.lp"),
        &format!("{examples}/water_tank.lp"),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");

    let dir = std::env::temp_dir().join("cpsrisk_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("broken.lp");
    std::fs::write(&file, "p(a\n").unwrap();
    let (stdout, stderr, ok) = run(&["lint", file.to_str().unwrap()]);
    assert!(!ok);
    assert!(stdout.contains("error[A000]"), "{stdout}");
    assert!(stderr.contains("lint failed"), "{stderr}");
}

#[test]
fn lint_reads_stdin_and_prints_per_file_headers() {
    let (stdout, _, ok) = run_with_stdin(&["lint", "-"], "p(a). q(X) :- p(X).");
    assert!(ok, "{stdout}");
    assert!(stdout.contains("== <stdin> =="), "{stdout}");
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");

    let (stdout, stderr, ok) = run_with_stdin(&["lint", "-"], "p(a\n");
    assert!(!ok);
    assert!(stdout.contains("error[A000]"), "{stdout}");
    assert!(stderr.contains("lint failed"), "{stderr}");
}

#[test]
fn analyze_reports_on_example_programs() {
    let examples = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples");
    let (stdout, stderr, ok) = run(&[
        "analyze",
        &format!("{examples}/listing1.lp"),
        &format!("{examples}/water_tank.lp"),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("== "), "per-file headers: {stdout}");
    assert!(stdout.contains("solver fast path active"), "{stdout}");
    assert!(stdout.contains("divergence"), "{stdout}");
    assert!(stdout.contains("slice:"), "{stdout}");
}

#[test]
fn analyze_json_is_parseable() {
    let examples = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples");
    let (stdout, _, ok) = run(&["analyze", "--json", &format!("{examples}/listing1.lp")]);
    assert!(ok);
    let parsed: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    let reports = parsed.as_array().expect("array of reports");
    assert_eq!(reports.len(), 1);
    let deps = reports[0].get("deps").expect("deps section");
    assert!(deps
        .get("ground_tight")
        .and_then(serde_json::Value::as_bool)
        .is_some());
    let size = reports[0].get("size").expect("size section");
    assert!(size
        .get("divergence")
        .and_then(serde_json::Value::as_f64)
        .is_some());
}

#[test]
fn analyze_fails_on_error_findings_and_divergence() {
    let dir = std::env::temp_dir().join("cpsrisk_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("analyze_broken.lp");
    std::fs::write(&file, "p(a\n").unwrap();
    let (stdout, stderr, ok) = run(&["analyze", file.to_str().unwrap()]);
    assert!(!ok);
    assert!(stdout.contains("error[A000]"), "{stdout}");
    assert!(stderr.contains("error-severity"), "{stderr}");

    // The temporal workload sits inside the 10x CI gate but not inside 1x.
    let (_, stderr, ok) = run(&[
        "analyze",
        "--workload",
        "temporal",
        "--max-divergence",
        "10",
    ]);
    assert!(ok, "temporal within the CI gate: {stderr}");
    let (_, stderr, ok) = run(&["analyze", "--workload", "temporal", "--max-divergence", "1"]);
    assert!(!ok, "an impossible gate trips");
    assert!(stderr.contains("diverged"), "{stderr}");
}

#[test]
fn lint_deny_warnings_promotes_warnings_to_failures() {
    let dir = std::env::temp_dir().join("cpsrisk_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("warn_only.lp");
    std::fs::write(&file, "a :- ghost.\n{ b }.").unwrap();
    let (stdout, _, ok) = run(&["lint", file.to_str().unwrap()]);
    assert!(ok, "a warning alone passes: {stdout}");
    let (stdout, _, ok) = run(&["lint", "--deny-warnings", file.to_str().unwrap()]);
    assert!(!ok, "--deny-warnings rejects it: {stdout}");
    // A misspelled flag must not silently disable the denial.
    let (_, stderr, ok) = run(&["lint", "--deny-warning", file.to_str().unwrap()]);
    assert!(!ok, "unknown flags are rejected");
    assert!(stderr.contains("unknown lint flag"), "{stderr}");
}

#[test]
fn unknown_commands_fail_with_help() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn bad_fault_ids_are_rejected() {
    let (_, stderr, ok) = run(&["simulate", "f9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown fault"));
}

#[test]
fn bench_writes_a_validatable_report() {
    let out = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("cpsrisk_bench_cli_test.json");
    let out = out.to_str().unwrap();
    let (stdout, stderr, ok) = run(&["bench", "--n", "2", "--threads", "2", "--out", out]);
    assert!(ok, "bench runs: {stderr}");
    assert!(stdout.contains("chain(2):"), "{stdout}");
    assert!(stdout.contains("grounding: reference"), "{stdout}");
    assert!(stdout.contains("equivalence: ok"), "{stdout}");
    assert!(stdout.contains("determinism: ok"), "{stdout}");
    assert!(stdout.contains("solver engine speedup:"), "{stdout}");
    assert!(stdout.contains("amortized"), "{stdout}");
    assert!(stdout.contains("outcome check: ok"), "{stdout}");
    assert!(stdout.contains("order check: ok"), "{stdout}");
    assert!(stdout.contains("static"), "{stdout}");
    assert!(stdout.contains("stealing"), "{stdout}");
    assert!(stdout.contains("streaming sweep:"), "{stdout}");
    assert!(stdout.contains("stream check: ok"), "{stdout}");
    // The written report passes the built-in validator.
    let (stdout, stderr, ok) = run(&["bench", "--validate", out]);
    assert!(ok, "validate accepts the fresh report: {stderr}");
    assert!(stdout.contains("valid cpsrisk-bench/9 report"), "{stdout}");
    std::fs::remove_file(out).ok();
    // A grounding-bound workload skips the EPA-only sections.
    let (stdout, stderr, ok) = run(&["bench", "--workload", "temporal", "--n", "6", "--out", out]);
    assert!(ok, "temporal bench runs: {stderr}");
    assert!(stdout.contains("temporal(6):"), "{stdout}");
    assert!(!stdout.contains("amortized"), "{stdout}");
    std::fs::remove_file(out).ok();
    // The search-bound adversarial workload reports CDCL counters and
    // validates despite its (correct) empty model set.
    let (stdout, stderr, ok) = run(&[
        "bench",
        "--workload",
        "adversarial",
        "--n",
        "15",
        "--out",
        out,
    ]);
    assert!(ok, "adversarial bench runs: {stderr}");
    assert!(stdout.contains("adversarial(15):"), "{stdout}");
    assert!(stdout.contains("cdcl search:"), "{stdout}");
    assert!(stdout.contains("engine check: ok"), "{stdout}");
    let (stdout, stderr, ok) = run(&["bench", "--validate", out]);
    assert!(ok, "validate accepts the adversarial report: {stderr}");
    assert!(stdout.contains("valid cpsrisk-bench/9 report"), "{stdout}");
    std::fs::remove_file(out).ok();
    // The horizon workload reports the incremental sweep and validates.
    let (stdout, stderr, ok) = run(&["bench", "--workload", "horizon", "--n", "12", "--out", out]);
    assert!(ok, "horizon bench runs: {stderr}");
    assert!(stdout.contains("horizon(12):"), "{stdout}");
    assert!(stdout.contains("horizon sweep 8..=12:"), "{stdout}");
    assert!(stdout.contains("verdict check: ok"), "{stdout}");
    let (stdout, stderr, ok) = run(&["bench", "--validate", out]);
    assert!(ok, "validate accepts the horizon report: {stderr}");
    assert!(stdout.contains("valid cpsrisk-bench/9 report"), "{stdout}");
    std::fs::remove_file(out).ok();
    // Unknown flags and workloads are rejected.
    let (_, stderr, ok) = run(&["bench", "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown bench flag"), "{stderr}");
    let (_, stderr, ok) = run(&["bench", "--workload", "mesh"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"), "{stderr}");
    // The error names every valid workload.
    for name in [
        "chain",
        "grid",
        "temporal",
        "adversarial",
        "catalog",
        "horizon",
    ] {
        assert!(
            stderr.contains(name),
            "error should list `{name}`: {stderr}"
        );
    }
    let (_, stderr, ok) = run(&["bench", "--steal-batch", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--steal-batch must be >= 1"), "{stderr}");
}

#[test]
fn certified_solving_round_trips_through_check() {
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    // `solve --certify` writes a proof the `check` subcommand accepts.
    let lp = tmp.join("cpsrisk_cli_certify.lp");
    std::fs::write(&lp, "{ a; b }. c :- a, not b. :- a, b.").unwrap();
    let proof = tmp.join("cpsrisk_cli_solve.proof");
    let proof = proof.to_str().unwrap();
    let (stdout, stderr, ok) = run(&["solve", lp.to_str().unwrap(), "--certify", proof]);
    assert!(ok, "certified solve runs: {stderr}");
    assert!(stdout.contains("wrote certificate"), "{stdout}");
    let (stdout, stderr, ok) = run(&["check", proof]);
    assert!(ok, "checker accepts the certificate: {stderr}");
    assert!(stdout.contains("certificate OK"), "{stdout}");
    // A corrupted proof is rejected with a nonzero exit.
    let text = std::fs::read_to_string(proof).unwrap();
    let corrupt = tmp.join("cpsrisk_cli_corrupt.proof");
    std::fs::write(&corrupt, text.replace("\nmodel", "\nunsat\nmodel")).unwrap();
    let (_, stderr, ok) = run(&["check", corrupt.to_str().unwrap()]);
    assert!(!ok, "corrupted certificate must be rejected");
    assert!(stderr.contains("REJECTED"), "{stderr}");
    std::fs::remove_file(&lp).ok();
    std::fs::remove_file(proof).ok();
    std::fs::remove_file(corrupt).ok();
    // `bench --certify` emits a checkable proof next to the report.
    let out = tmp.join("cpsrisk_cli_certify_bench.json");
    let out = out.to_str().unwrap();
    let bench_proof = tmp.join("cpsrisk_cli_certify_bench.proof");
    let bench_proof = bench_proof.to_str().unwrap();
    let (stdout, stderr, ok) = run(&[
        "bench",
        "--workload",
        "adversarial",
        "--n",
        "9",
        "--certify",
        "--out",
        out,
        "--proof-out",
        bench_proof,
    ]);
    assert!(ok, "certified bench runs: {stderr}");
    assert!(stdout.contains("certify:"), "{stdout}");
    assert!(stdout.contains("certificate: ok"), "{stdout}");
    let (stdout, stderr, ok) = run(&["bench", "--validate", out]);
    assert!(ok, "validate accepts the certified report: {stderr}");
    assert!(stdout.contains("valid cpsrisk-bench/9 report"), "{stdout}");
    let (stdout, stderr, ok) = run(&["check", bench_proof]);
    assert!(ok, "checker accepts the bench certificate: {stderr}");
    assert!(stdout.contains("certificate OK"), "{stdout}");
    std::fs::remove_file(out).ok();
    std::fs::remove_file(bench_proof).ok();
    // --proof-out without --certify is rejected.
    let (_, stderr, ok) = run(&["bench", "--proof-out", bench_proof]);
    assert!(!ok);
    assert!(
        stderr.contains("--proof-out requires --certify"),
        "{stderr}"
    );
}
