//! Cross-engine consistency: the direct fixpoint engine, the ASP encoding,
//! the exhaustive choice-based enumeration, the behavioural analysis, the
//! plant simulation, and the FTA baseline all see the same world.

use std::collections::BTreeMap;

use cpsrisk::casestudy;
use cpsrisk::epa::behavioral::analyze_behavior;
use cpsrisk::epa::encode::analyze_exhaustive;
use cpsrisk::epa::{Scenario, ScenarioSpace, TopologyAnalysis};
use cpsrisk::fta::compare::compare_methods;
use cpsrisk::model::aspect::MergedModel;
use cpsrisk::model::{ElementKind, Relation, RelationKind, SystemModel};
use cpsrisk::qr::statemachine::Guard;
use cpsrisk::qr::QualMachine;
use cpsrisk::temporal::parse_ltl;

#[test]
fn exhaustive_asp_enumeration_equals_direct_sweep() {
    let problem = casestudy::water_tank_problem(&[]).expect("problem builds");
    let direct = TopologyAnalysis::new(&problem);

    let mut asp_outcomes = analyze_exhaustive(&problem, None).expect("asp enumerates");
    asp_outcomes.sort_by(|a, b| a.scenario.cmp(&b.scenario));
    let mut direct_outcomes: Vec<_> = ScenarioSpace::new(&problem, usize::MAX)
        .iter()
        .map(|s| direct.evaluate(&s))
        .collect();
    direct_outcomes.sort_by(|a, b| a.scenario.cmp(&b.scenario));

    assert_eq!(asp_outcomes.len(), direct_outcomes.len());
    for (a, d) in asp_outcomes.iter().zip(&direct_outcomes) {
        assert_eq!(a.scenario, d.scenario);
        assert_eq!(a.violated, d.violated, "scenario {}", a.scenario);
        assert_eq!(a.effective_modes, d.effective_modes);
    }
}

#[test]
fn refined_model_agrees_across_engines() {
    let problem = casestudy::water_tank_problem_refined(&[]).expect("problem builds");
    let direct = TopologyAnalysis::new(&problem);
    for scenario in ScenarioSpace::new(&problem, 2).iter() {
        let d = direct.evaluate(&scenario);
        let a = cpsrisk::epa::encode::analyze_fixed(&problem, &scenario).expect("asp runs");
        assert_eq!(d.violated, a.violated, "refined scenario {scenario}");
    }
}

#[test]
fn fta_baseline_underreports_exactly_the_propagated_hazards() {
    let problem = casestudy::water_tank_problem(&[]).expect("problem builds");
    let report = compare_methods(&problem, "r1", usize::MAX).expect("r1 exists");
    // Every miss involves f4 (the interaction/propagation fault) and no
    // direct valve fault.
    assert!(!report.missed_by_fta.is_empty());
    for missed in &report.missed_by_fta {
        assert!(
            missed.contains("f4"),
            "FTA only misses workstation-induced hazards"
        );
        assert!(!missed.contains("f2"));
    }
    assert!(
        report.extra_in_fta.is_empty(),
        "FTA never over-reports vs EPA"
    );
    assert!(report.fta_coverage() < 1.0);
}

/// Behavioural (Listing 2) analysis agrees with the qualitative trace of
/// the continuous plant for a valve→tank chain.
#[test]
fn behavioral_analysis_matches_plant_style_dynamics() {
    let mut system = SystemModel::new("chain");
    system
        .add_element("valve", "Valve", ElementKind::Equipment)
        .unwrap();
    system
        .add_element("tank", "Tank", ElementKind::Equipment)
        .unwrap();
    system
        .insert_relation(Relation::new("valve", "tank", RelationKind::Flow).with_label("water"))
        .unwrap();

    let mut valve = QualMachine::new("valve", "closed").unwrap();
    valve.add_state("closed", [("water", "off")]).unwrap();
    valve
        .add_fault_state("stuck_open", [("water", "on")])
        .unwrap();

    let mut tank = QualMachine::new("tank", "normal").unwrap();
    for s in ["normal", "high", "overflow"] {
        tank.add_state(s, [("level", s)]).unwrap();
    }
    tank.add_transition("normal", vec![Guard::new("water", "on")], "high")
        .unwrap();
    tank.add_transition("high", vec![Guard::new("water", "on")], "overflow")
        .unwrap();

    let mut behaviors = BTreeMap::new();
    behaviors.insert("valve".to_owned(), valve);
    behaviors.insert("tank".to_owned(), tank);
    let merged = MergedModel { system, behaviors };

    let r1 = (
        "r1".to_owned(),
        parse_ltl("G !state(tank, overflow)").unwrap(),
    );

    // Nominal: no fault, valve closed, tank stays normal.
    let ok = analyze_behavior(&merged, &BTreeMap::new(), std::slice::from_ref(&r1), 5).unwrap();
    assert!(ok.violated.is_empty());

    // Stuck-open valve: the tank overflows within the horizon, exactly as
    // the continuous plant does under F1+F2-style misactuation.
    let faulted: BTreeMap<String, String> = [("valve".to_owned(), "stuck_open".to_owned())].into();
    let bad = analyze_behavior(&merged, &faulted, &[r1], 5).unwrap();
    assert!(bad.violated.contains("r1"));
}

#[test]
fn scenario_monotonicity_adding_faults_never_heals() {
    // Worst-case qualitative semantics must be monotone: a superset of
    // faults violates at least as much.
    let problem = casestudy::water_tank_problem(&[]).expect("problem builds");
    let analysis = TopologyAnalysis::new(&problem);
    let all: Vec<Scenario> = ScenarioSpace::new(&problem, usize::MAX).iter().collect();
    for a in &all {
        for b in &all {
            if a.iter().all(|f| b.contains(f)) {
                let va = analysis.evaluate(a).violated;
                let vb = analysis.evaluate(b).violated;
                assert!(
                    va.is_subset(&vb),
                    "monotonicity violated: {a} ⊆ {b} but {va:?} ⊄ {vb:?}"
                );
            }
        }
    }
}

#[test]
fn mutation_injection_from_catalog_builds_a_solvable_problem() {
    use cpsrisk::epa::{inject_mutations, EpaProblem};
    use cpsrisk::model::TypeLibrary;
    use cpsrisk::threat::ThreatCatalog;

    let model = casestudy::water_tank_model().expect("model builds");
    let library = TypeLibrary::standard();
    let catalog = ThreatCatalog::curated();
    let mutations = inject_mutations(&model, &library, &catalog);
    assert!(
        mutations.len() >= 10,
        "library + catalog populate the fault universe"
    );

    let problem = EpaProblem::new(
        model,
        mutations,
        casestudy::water_tank_requirements(),
        vec![],
    )
    .expect("validates");
    // Bounded sweep stays tractable and finds the known hazards.
    let hazards = TopologyAnalysis::new(&problem).hazards(1);
    assert!(hazards.iter().any(|h| h
        .effective_modes
        .contains(&("output_valve".into(), "stuck_at_closed".into()))));
}
