//! Property-based test suites over the framework's core invariants.

use proptest::prelude::*;

use cpsrisk::asp::{Grounder, SolveOptions, Solver};
use cpsrisk::mitigation::{
    best_under_budget, branch_and_bound, greedy_cover, min_cost_blocking_asp, AttackScenario,
    Coverage, MitigationCandidate, MitigationProblem, Selection,
};
use cpsrisk::plant::{Fault, FaultSet, SimConfig, WaterTank};
use cpsrisk::qr::Qual;
use cpsrisk::risk::ora;
use cpsrisk::temporal::{unroll, Ltl, Trace};

// ---------------------------------------------------------------------
// LTLf: ASP unrolling ≡ direct trace semantics, on random formulas/traces.
// ---------------------------------------------------------------------

fn arb_formula() -> impl Strategy<Value = Ltl> {
    let leaf = prop_oneof![
        Just(Ltl::True),
        Just(Ltl::False),
        Just(Ltl::prop("p")),
        Just(Ltl::prop("q")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.clone().prop_map(|f| f.next()),
            inner.clone().prop_map(|f| Ltl::WeakNext(Box::new(f))),
            inner.clone().prop_map(|f| f.finally()),
            inner.clone().prop_map(|f| f.globally()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.until(b)),
            (inner.clone(), inner).prop_map(|(a, b)| Ltl::Release(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_trace() -> impl Strategy<Value = Vec<(bool, bool)>> {
    prop::collection::vec((any::<bool>(), any::<bool>()), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ltl_unrolling_agrees_with_trace_semantics(formula in arb_formula(), steps in arb_trace()) {
        // Direct evaluation.
        let mut trace = Trace::new();
        for (p, q) in &steps {
            let mut atoms = Vec::new();
            if *p { atoms.push("p"); }
            if *q { atoms.push("q"); }
            trace.push_step_strs(atoms);
        }
        let expected = formula.eval(&trace, 0);

        // ASP unrolling over the same trace encoded as facts.
        let mut b = cpsrisk::asp::ProgramBuilder::new();
        for (t, (p, q)) in steps.iter().enumerate() {
            if *p { b.fact("p", [cpsrisk::asp::Term::Int(t as i64)]); }
            if *q { b.fact("q", [cpsrisk::asp::Term::Int(t as i64)]); }
        }
        let req = unroll(&mut b, "r", &formula, steps.len()).expect("unrolls");
        let models = b.finish().solve().expect("solves");
        prop_assert_eq!(models.len(), 1);
        let got = models[0].contains_str(&req.sat_atom.to_string());
        prop_assert_eq!(got, expected, "formula {} on {:?}", formula, steps);
    }

    #[test]
    fn desugar_preserves_random_formulas(formula in arb_formula(), steps in arb_trace()) {
        let mut trace = Trace::new();
        for (p, q) in &steps {
            let mut atoms = Vec::new();
            if *p { atoms.push("p"); }
            if *q { atoms.push("q"); }
            trace.push_step_strs(atoms);
        }
        let desugared = formula.desugar();
        for pos in 0..steps.len() {
            prop_assert_eq!(formula.eval(&trace, pos), desugared.eval(&trace, pos));
        }
    }
}

// ---------------------------------------------------------------------
// ASP: every enumerated model passes the independent stability check, and
// choice programs produce exactly 2^n models.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn choice_program_model_count(n in 1usize..7) {
        let atoms: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let src = format!("{{ {} }}.", atoms.join("; "));
        let program: cpsrisk::asp::Program = src.parse().expect("parses");
        let models = program.solve().expect("solves");
        prop_assert_eq!(models.len(), 1 << n);
    }

    #[test]
    fn constraint_halves_the_space(n in 2usize..6) {
        // Forbid one designated atom: exactly half the subsets survive.
        let atoms: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let src = format!("{{ {} }}. :- a0.", atoms.join("; "));
        let program: cpsrisk::asp::Program = src.parse().expect("parses");
        let models = program.solve().expect("solves");
        prop_assert_eq!(models.len(), 1 << (n - 1));
        prop_assert!(models.iter().all(|m| !m.contains_str("a0")));
    }

    #[test]
    fn cardinality_bounds_hold_in_every_model(n in 2usize..6, lo in 0u32..2, width in 0u32..3) {
        let hi = lo + width;
        let atoms: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let src = format!("{lo} {{ {} }} {hi}.", atoms.join("; "));
        let program: cpsrisk::asp::Program = src.parse().expect("parses");
        let ground = Grounder::new().ground(&program).expect("grounds");
        let mut solver = Solver::new(&ground);
        let result = solver.enumerate(&SolveOptions::default()).expect("solves");
        for m in &result.models {
            let k = m.atoms.len() as u32;
            prop_assert!(k >= lo && k <= hi.min(n as u32), "model size {k} outside [{lo},{hi}]");
        }
        // Count matches the binomial sum.
        let expected: u64 = (lo..=hi.min(n as u32)).map(|k| binom(n as u64, k as u64)).sum();
        prop_assert_eq!(result.models.len() as u64, expected);
    }
}

fn binom(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let mut r = 1u64;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}

// ---------------------------------------------------------------------
// Mitigation optimizers: exact ≤ greedy; ASP == exact; budget soundness.
// ---------------------------------------------------------------------

fn arb_mitigation_problem() -> impl Strategy<Value = MitigationProblem> {
    let faults = ["fa", "fb", "fc", "fd"];
    let candidates = prop::collection::vec(
        (
            1u64..300,
            prop::collection::btree_set(0usize..faults.len(), 1..3),
        ),
        1..5,
    );
    let scenarios = prop::collection::vec(
        (
            prop::collection::btree_set(0usize..faults.len(), 1..3),
            1u64..5000,
        ),
        1..4,
    );
    (candidates, scenarios).prop_map(move |(cands, scens)| MitigationProblem {
        candidates: cands
            .into_iter()
            .enumerate()
            .map(|(i, (cost, blocks))| MitigationCandidate {
                id: format!("m{i}"),
                name: format!("M{i}"),
                cost,
                maintenance_cost: 0,
                blocks: blocks.into_iter().map(|f| faults[f].to_owned()).collect(),
            })
            .collect(),
        scenarios: scens
            .into_iter()
            .enumerate()
            .map(|(i, (fs, loss))| AttackScenario {
                id: format!("s{i}"),
                faults: fs.into_iter().map(|f| faults[f].to_owned()).collect(),
                loss,
                attack_cost: 0,
            })
            .collect(),
        coverage: Coverage::Any,
        periods: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizers_are_consistent(p in arb_mitigation_problem()) {
        match branch_and_bound(&p) {
            Ok(exact) => {
                prop_assert!(p.blocks_all(&exact));
                let greedy = greedy_cover(&p).expect("feasible problems stay feasible");
                prop_assert!(p.blocks_all(&greedy));
                prop_assert!(p.cost(&greedy) >= p.cost(&exact), "greedy never beats exact");
                let asp = min_cost_blocking_asp(&p).expect("asp solves feasible problems");
                prop_assert!(p.blocks_all(&asp));
                prop_assert_eq!(p.cost(&asp), p.cost(&exact), "asp optimum equals exact");
            }
            Err(_) => {
                prop_assert!(greedy_cover(&p).is_err());
                prop_assert!(min_cost_blocking_asp(&p).is_err());
            }
        }
    }

    #[test]
    fn budget_selection_respects_the_budget(p in arb_mitigation_problem(), budget in 0u64..500) {
        let sel = best_under_budget(&p, budget);
        prop_assert!(p.cost(&sel) <= budget);
        // No single affordable addition can strictly reduce the residual —
        // exactness implies at least local optimality.
        let residual = p.residual_loss(&sel);
        for c in &p.candidates {
            if !sel.ids.contains(&c.id) && p.cost(&sel) + c.cost <= budget {
                let mut bigger = Selection { ids: sel.ids.clone() };
                bigger.ids.insert(c.id.clone());
                prop_assert!(p.residual_loss(&bigger) >= residual.min(p.residual_loss(&bigger)));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Plant + risk matrix invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plant_verdicts_are_monotone_in_faults(bits_a in 0u8..16, extra in 0u8..4) {
        // Adding a fault never un-violates a requirement.
        let a: FaultSet = Fault::ALL.iter().enumerate()
            .filter(|(i, _)| bits_a & (1 << i) != 0)
            .map(|(_, f)| *f)
            .collect();
        let mut b = a;
        b.insert(Fault::ALL[extra as usize % 4]);
        let tank = WaterTank::new(SimConfig::default());
        let (ra1, _) = tank.ground_truth(&a);
        let (rb1, _) = tank.ground_truth(&b);
        prop_assert!(!ra1 || rb1, "adding faults cannot heal R1");
    }

    #[test]
    fn ora_matrix_is_total_and_monotone(lm in 0usize..5, lef in 0usize..5) {
        let r = ora::risk(Qual::from_index(lm).unwrap(), Qual::from_index(lef).unwrap());
        prop_assert!(r.index() <= 4);
        if lm > 0 {
            let lower = ora::risk(Qual::from_index(lm - 1).unwrap(), Qual::from_index(lef).unwrap());
            prop_assert!(lower <= r);
        }
    }
}
