//! The headline reproduction: Table II of the paper, regenerated three
//! independent ways — the ASP back-end, the direct topology engine, and
//! the continuous plant simulation — all of which must agree.

use cpsrisk::casestudy;
use cpsrisk::epa::encode::analyze_fixed;
use cpsrisk::epa::{Scenario, TopologyAnalysis};
use cpsrisk::plant::{Fault, FaultSet, SimConfig, WaterTank};

/// The paper's Table II verdicts: (label, violated R1, violated R2).
const EXPECTED: [(&str, bool, bool); 7] = [
    ("S1", false, false),
    ("S2", true, true),
    ("S3", false, false),
    ("S4", true, false),
    ("S5", true, true),
    ("S6", false, false),
    ("S7", true, true),
];

fn plant_faults(ids: &[String]) -> FaultSet {
    ids.iter()
        .map(|id| match id.as_str() {
            "f1" => Fault::F1,
            "f2" => Fault::F2,
            "f3" => Fault::F3,
            _ => Fault::F4,
        })
        .collect()
}

#[test]
fn table_ii_via_asp_matches_the_paper() {
    let rows = casestudy::table_ii().expect("analysis runs");
    assert_eq!(rows.len(), EXPECTED.len());
    for (row, (label, r1, r2)) in rows.iter().zip(EXPECTED) {
        assert_eq!(row.label, label);
        assert_eq!(
            (row.violated_r1, row.violated_r2),
            (r1, r2),
            "row {label} diverges from the paper"
        );
    }
}

#[test]
fn table_ii_via_direct_engine_matches_the_paper() {
    for (i, (label, mits, faults)) in casestudy::table_ii_scenarios().into_iter().enumerate() {
        let problem = casestudy::water_tank_problem(&mits).expect("problem builds");
        let outcome = TopologyAnalysis::new(&problem).evaluate(&Scenario::of(&faults));
        let (_, r1, r2) = EXPECTED[i];
        assert_eq!(
            (
                outcome.violated.contains("r1"),
                outcome.violated.contains("r2")
            ),
            (r1, r2),
            "direct engine diverges on {label}"
        );
    }
}

#[test]
fn table_ii_matches_the_physics() {
    // The qualitative analysis and the continuous simulation agree on every
    // row — the abstraction is exact for this plant.
    let tank = WaterTank::new(SimConfig::default());
    for row in casestudy::table_ii().expect("analysis runs") {
        let (r1, r2) = tank.ground_truth(&plant_faults(&row.faults));
        assert_eq!(
            (row.violated_r1, row.violated_r2),
            (r1, r2),
            "physics diverges on {}",
            row.label
        );
    }
}

#[test]
fn asp_and_direct_agree_on_every_fault_combination() {
    // Beyond the 7 published rows: all 16 scenarios, with and without
    // mitigations, through both engines.
    for mits in [vec![], vec!["m1"], vec!["m2"], vec!["m1", "m2"]] {
        let problem = casestudy::water_tank_problem(&mits).expect("problem builds");
        let direct = TopologyAnalysis::new(&problem);
        for scenario in cpsrisk::epa::ScenarioSpace::new(&problem, usize::MAX).iter() {
            let d = direct.evaluate(&scenario);
            let a = analyze_fixed(&problem, &scenario).expect("asp analysis runs");
            assert_eq!(d.violated, a.violated, "mits {mits:?} scenario {scenario}");
            assert_eq!(d.effective_modes, a.effective_modes);
        }
    }
}

#[test]
fn most_severe_combination_is_s5_per_the_paper() {
    // §VII: S5 (F2+F3) is the most critical consequence; S7 adds F1 with
    // the same violations but lower joint probability.
    let problem = casestudy::water_tank_problem(&["m1", "m2"]).expect("problem builds");
    let analysis = TopologyAnalysis::new(&problem);
    let s5 = analysis.evaluate(&Scenario::of(&["f2", "f3"]));
    let s7 = analysis.evaluate(&Scenario::of(&["f1", "f2", "f3"]));
    assert_eq!(s5.violated, s7.violated, "same violation footprint");
    assert_eq!(s5.violated.len(), 2, "both requirements violated");
}

#[test]
fn rendered_table_has_the_paper_layout() {
    let text = casestudy::render_table().expect("analysis runs");
    let lines: Vec<&str> = text.lines().collect();
    // Header + separator + 7 scenario rows.
    assert!(lines.len() >= 10);
    let s2 = lines.iter().find(|l| l.starts_with("S2")).unwrap();
    assert_eq!(s2.matches('*').count(), 1, "S2 activates only F4");
    assert_eq!(s2.matches("Violated").count(), 2);
    let s4 = lines.iter().find(|l| l.starts_with("S4")).unwrap();
    assert_eq!(s4.matches("Violated").count(), 1);
    assert_eq!(s4.matches("Active").count(), 2);
}
