//! End-to-end integration: the seven-step pipeline, hierarchical focuses,
//! temporal requirements over simulated traces, and report export.

use cpsrisk::casestudy;
use cpsrisk::hierarchy::{detailed_focus, mitigation_focus, topology_focus, PlantOracle};
use cpsrisk::pipeline::Assessment;
use cpsrisk::plant::{qualitative, Fault, FaultSet, SimConfig, WaterTank};
use cpsrisk::qr::Qual;
use cpsrisk::temporal::parse_ltl;

#[test]
fn full_pipeline_unmitigated_vs_mitigated() {
    let before = Assessment::new(casestudy::water_tank_problem(&[]).unwrap())
        .run()
        .unwrap();
    let after = Assessment::new(casestudy::water_tank_problem(&["m1", "m2"]).unwrap())
        .run()
        .unwrap();
    assert!(after.hazards.len() < before.hazards.len());
    // The top residual risk drops once the workstation attack is blocked.
    let top_before = before.hazards.first().map(|h| h.risk).unwrap();
    let top_after = after.hazards.first().map(|h| h.risk).unwrap();
    assert!(top_after <= top_before);
    assert_eq!(top_before, Qual::VeryHigh);
}

#[test]
fn recommendation_actually_blocks_what_it_claims() {
    let problem = casestudy::water_tank_problem(&[]).unwrap();
    let report = Assessment::new(problem.clone()).run().unwrap();
    let (selection, _) = report.recommendation.expect("recommends something");
    // Re-run with the recommended mitigations active: every hazard that
    // only relied on blocked faults disappears.
    let mut hardened = problem;
    for m in &selection.ids {
        // `Any` coverage in planning vs Listing-1 `All` in analysis: apply
        // the full recommended set, which satisfies both.
        hardened.activate_mitigation(m).unwrap();
    }
    // m1 alone blocks under Any-coverage planning; Listing-1 analysis needs
    // both m1 and m2 for f4 — activate the rest to align semantics.
    hardened.activate_mitigation("m1").unwrap();
    hardened.activate_mitigation("m2").unwrap();
    let after = Assessment::new(hardened).run().unwrap();
    assert!(after
        .hazards
        .iter()
        .all(|h| !h.outcome.scenario.contains("f4")));
}

#[test]
fn hierarchy_focuses_compose() {
    let problem = casestudy::water_tank_problem(&[]).unwrap();
    let f1 = topology_focus(&problem, usize::MAX);
    let f2 = detailed_focus(&problem, usize::MAX, &PlantOracle::new());
    let f3 = mitigation_focus(&problem, usize::MAX, &[100, 100]).unwrap();
    assert!(
        f2.hazards.len() <= f1.hazards.len(),
        "refinement only removes"
    );
    assert!(!f3.phases.is_empty());
}

#[test]
fn temporal_requirements_hold_on_simulated_traces() {
    // R1/R2 as LTLf, checked on the abstracted trajectories of all 16
    // fault combinations — consistent with the requirement-level verdicts.
    let r1 = parse_ltl("G !level(tank, overflow)").unwrap();
    let r2 = parse_ltl("G( level(tank, overflow) -> F alert(hmi) )").unwrap();
    let tank = WaterTank::new(SimConfig::default());
    for scenario in FaultSet::all_scenarios() {
        let run = tank.run(&scenario);
        let trace = qualitative::to_temporal_trace(&run, 1);
        assert_eq!(
            !r1.eval(&trace, 0),
            run.violates_r1(),
            "R1 mismatch for {scenario}"
        );
        // R2 on the full-resolution trace matches the discrete-event check.
        assert_eq!(
            !r2.eval(&trace, 0),
            run.violates_r2(),
            "R2 mismatch for {scenario}"
        );
    }
}

#[test]
fn f4_subsumes_the_physical_faults_in_simulation() {
    let tank = WaterTank::new(SimConfig::default());
    let f4 = tank.run(&FaultSet::from(Fault::F4));
    let all_physical = tank.run(&FaultSet::of(&[Fault::F1, Fault::F2, Fault::F3]));
    assert_eq!(f4.violates_r1(), all_physical.violates_r1());
    assert_eq!(f4.violates_r2(), all_physical.violates_r2());
}

#[test]
fn reports_export_to_json() {
    let report = Assessment::new(casestudy::water_tank_problem(&[]).unwrap())
        .run()
        .unwrap();
    let json = cpsrisk::report::to_json(&report.hazards).unwrap();
    assert!(json.contains("\"risk\""));
    assert!(json.contains("f4"));
    let table = casestudy::table_ii().unwrap();
    let json2 = cpsrisk::report::to_json(&table).unwrap();
    assert!(json2.contains("\"label\": \"S5\""));
}

#[test]
fn threat_actor_gates_technique_feasibility() {
    use cpsrisk::threat::{ThreatActor, ThreatCatalog};
    let catalog = ThreatCatalog::curated();
    let kiddie = ThreatActor::script_kiddie();
    let apt = ThreatActor::apt();
    let feasible = |actor: &ThreatActor| {
        catalog
            .techniques()
            .filter(|t| actor.can_execute(t.difficulty))
            .count()
    };
    assert!(feasible(&apt) > feasible(&kiddie));
    assert_eq!(
        feasible(&apt),
        catalog.techniques().count(),
        "APT executes everything"
    );
}

#[test]
fn rough_sets_classify_epa_verdicts_under_hidden_attributes() {
    // Build a decision table from the scenario sweep, but *hide* the f2
    // column — the verdict becomes rough exactly where f2 mattered.
    use cpsrisk::epa::{ScenarioSpace, TopologyAnalysis};
    use cpsrisk::risk::DecisionTable;

    let problem = casestudy::water_tank_problem(&[]).unwrap();
    let analysis = TopologyAnalysis::new(&problem);
    let mut table = DecisionTable::new(&["f1", "f3", "f4"]);
    for s in ScenarioSpace::new(&problem, usize::MAX).iter() {
        let out = analysis.evaluate(&s);
        let b = |f: &str| if s.contains(f) { "1" } else { "0" };
        table.add_row(
            &[b("f1"), b("f3"), b("f4")],
            if out.violated.contains("r1") {
                "hazard"
            } else {
                "safe"
            },
        );
    }
    let approx = table.approximate_all("hazard");
    assert!(!approx.is_crisp(), "hiding f2 makes the verdict rough");
    // Certain hazards remain: every f4=1 class is purely hazardous.
    assert!(!approx.lower.is_empty());
    assert!(!approx.boundary().is_empty());
}
