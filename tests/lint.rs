//! Cross-layer lint assertions: the paper's shipped artifacts must stay
//! lint-clean (no errors, no warnings — advisory infos are allowed), and
//! the pipeline must carry advisory findings through to its report.

use cpsrisk::asp::diag::{has_errors, has_warnings};
use cpsrisk::asp::lint::lint_source;
use cpsrisk::casestudy;
use cpsrisk::epa::encode::{encode, EncodeMode};
use cpsrisk::model::lint_model;
use cpsrisk::pipeline::Assessment;

/// Listing 1 of the paper, verbatim (also the `cpsrisk_asp` crate docs).
const LISTING_1: &str = "component(ew). fault(f4). mitigation(f4, m2). \
    potential_fault(C, F) :- component(C), fault(F), \
    mitigation(F, M), not active_mitigation(C, M).";

#[test]
fn paper_listing_1_is_lint_clean() {
    let diags = lint_source(LISTING_1);
    assert!(!has_errors(&diags) && !has_warnings(&diags), "{diags:?}");
}

#[test]
fn water_tank_model_is_lint_clean() {
    let model = casestudy::water_tank_model().unwrap();
    let diags = lint_model(&model);
    assert!(!has_errors(&diags) && !has_warnings(&diags), "{diags:?}");
    // The advisory findings are exactly the unannotated active elements.
    assert!(diags.iter().all(|d| d.code == "M005"), "{diags:?}");
}

#[test]
fn water_tank_encoding_is_lint_clean() {
    let problem = casestudy::water_tank_problem(&[]).unwrap();
    let program = encode(&problem, &EncodeMode::Exhaustive { max_faults: None });
    let diags = lint_source(&program.to_string());
    assert!(!has_errors(&diags) && !has_warnings(&diags), "{diags:?}");
}

#[test]
fn mitigated_encoding_is_lint_clean_without_findings() {
    // With active mitigations the encoding defines `active_mitigation`,
    // so even the advisory A008 disappears.
    let problem = casestudy::water_tank_problem(&["m1", "m2"]).unwrap();
    let program = encode(&problem, &EncodeMode::Exhaustive { max_faults: None });
    let diags = lint_source(&program.to_string());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn shipped_example_programs_are_lint_clean() {
    for name in ["listing1.lp", "water_tank.lp"] {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/");
        let src = std::fs::read_to_string(format!("{path}{name}")).unwrap();
        let diags = lint_source(&src);
        assert!(
            !has_errors(&diags) && !has_warnings(&diags),
            "{name}: {diags:?}"
        );
    }
}

#[test]
fn misspelled_listing_1_gets_a_did_you_mean_with_position() {
    let src = "component(ew). fault(f4). mitigation(f4, m2).\n\
               potential_fault(C, F) :- component(C), fault(F),\n\
               \x20   mitigaton(F, M), not active_mitigation(C, M).";
    let diags = lint_source(src);
    let d = diags.iter().find(|d| d.code == "A001").expect("A001 fires");
    assert_eq!(d.suggestion.as_deref(), Some("did you mean `mitigation`?"));
    let span = d.span.expect("span");
    assert_eq!((span.line, span.column), (3, 5));
}

#[test]
fn pipeline_report_carries_advisory_lint_findings() {
    let problem = casestudy::water_tank_problem(&[]).unwrap();
    let report = Assessment::new(problem).run().unwrap();
    assert!(
        !report.lint.is_empty(),
        "advisory model findings ride along"
    );
    assert!(report.lint.iter().all(|d| !d.is_error() && !d.is_warning()));
    // The report (with its lint findings) round-trips through serde.
    let json = serde_json::to_string(&report).unwrap();
    let back: cpsrisk::pipeline::AssessmentReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.lint, report.lint);
}
